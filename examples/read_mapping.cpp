// read_mapping: map FASTQ short reads onto a reference with fitting
// (semi-global) alignment — seed with the k-mer index for speed, place the
// whole read with fitting_align, report per-read positions.
//
// Demonstrates the FASTQ substrate, the seed-and-extend prefilter, and the
// fitting mode, cooperating: heuristics narrow the window, exact DP decides.
//
// Usage: ./examples/read_mapping [reference_len] [reads]
//   defaults: 50000 25
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "align/fitting.hpp"
#include "align/seed_extend.hpp"
#include "seq/fastq.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"

using namespace swr;

int main(int argc, char** argv) {
  const std::size_t ref_len = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50'000;
  const std::size_t n_reads = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 25;
  const std::size_t read_len = 72;
  const align::Scoring sc = align::Scoring::paper_default();

  // Reference + reads sampled from it with sequencing-style errors.
  seq::RandomSequenceGenerator gen(8080);
  const seq::Sequence reference = gen.uniform(seq::dna(), ref_len, "ref");
  std::uniform_int_distribution<std::size_t> pos_dist(0, ref_len - read_len);
  std::vector<seq::FastqRecord> reads;
  std::vector<std::size_t> truth;
  for (std::size_t r = 0; r < n_reads; ++r) {
    const std::size_t at = pos_dist(gen.engine());
    truth.push_back(at);
    seq::FastqRecord rec;
    rec.sequence =
        seq::point_mutate(reference.subsequence(at, read_len), 0.02, gen.engine());
    rec.sequence.set_name("read" + std::to_string(r));
    for (std::size_t i = 0; i < rec.sequence.size(); ++i) {
      rec.qualities.push_back(static_cast<std::uint8_t>(30 + (i % 10)));
    }
    reads.push_back(std::move(rec));
  }
  // Round-trip the reads through FASTQ text, as a mapper would receive them.
  std::stringstream fq;
  seq::write_fastq(fq, reads);
  reads = seq::read_fastq(fq, seq::dna());
  std::printf("reference %zu BP, %zu reads of %zu BP (2%% error, Phred ~30)\n\n", ref_len,
              reads.size(), read_len);

  std::size_t mapped = 0;
  std::size_t correct = 0;
  for (std::size_t r = 0; r < reads.size(); ++r) {
    const seq::Sequence& read = reads[r].sequence;
    // Seed: find the candidate window cheaply.
    align::SeedExtendOptions seed_opt;
    seed_opt.k = 15;
    const auto hits = align::seed_extend_search(reference, read, sc, seed_opt);
    if (hits.empty()) continue;
    // Window around the best seed diagonal, then exact fitting placement.
    const std::size_t diag = hits[0].begin.i - hits[0].begin.j;
    const std::size_t w_begin = diag > 20 ? diag - 20 : 0;
    const std::size_t w_len = read_len + 40;
    const seq::Sequence window = reference.subsequence(w_begin, w_len);
    const align::LocalAlignment fit = align::fitting_align(window, read, sc);
    ++mapped;
    const std::size_t map_pos = w_begin + fit.begin.i - 1;
    const bool ok = map_pos + 3 >= truth[r] && map_pos <= truth[r] + 3;
    correct += ok ? 1 : 0;
    if (r < 8) {
      std::printf("%-8s mapped at %6zu (truth %6zu) score %3d q~%.0f %s\n",
                  read.name().c_str(), map_pos, truth[r], fit.score,
                  reads[r].mean_quality(), ok ? "" : "<- off");
    }
  }
  std::printf("...\nmapped %zu/%zu reads, %zu placed at the true position\n", mapped,
              reads.size(), correct);
  return (mapped == reads.size() && correct >= reads.size() * 9 / 10) ? 0 : 1;
}
