// database_scan: SAMBA-style search of a multi-record sequence database
// (paper Table 1's query-vs-database workload) with top-k hit reporting
// and on-demand alignment retrieval.
//
// Usage: ./examples/database_scan [records] [record_len] [fasta_path]
//   defaults: 40 2000 (synthetic, written to a temp FASTA and read back —
//   demonstrating the FASTA substrate on the way)
#include <cstdio>
#include <cstdlib>

#include "align/evalue.hpp"
#include "host/batch.hpp"
#include "seq/fasta.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"

using namespace swr;

int main(int argc, char** argv) {
  const std::size_t n_records = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40;
  const std::size_t rec_len = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2'000;
  const align::Scoring sc = align::Scoring::paper_default();

  // Build a synthetic database: every record random, three of them with a
  // diverged copy of the query spliced in.
  seq::RandomSequenceGenerator gen(31337);
  const seq::Sequence query = gen.uniform(seq::dna(), 80, "query");
  std::vector<seq::Sequence> records;
  for (std::size_t r = 0; r < n_records; ++r) {
    seq::Sequence rec = gen.uniform(seq::dna(), rec_len, "synthetic_" + std::to_string(r));
    if (r % 13 == 5) {
      seq::Sequence with_hit = rec.subsequence(0, rec_len / 2);
      with_hit.append(seq::point_mutate(query, 0.02 * static_cast<double>(r % 5 + 1),
                                        gen.engine()));
      with_hit.append(rec.subsequence(rec_len / 2, rec_len));
      with_hit.set_name(rec.name() + "_with_hit");
      rec = std::move(with_hit);
    }
    records.push_back(std::move(rec));
  }

  // Round-trip through FASTA, as a real tool would.
  const std::string path = argc > 3 ? argv[3] : "/tmp/swr_scan_db.fa";
  seq::write_fasta_file(path, records);
  records = seq::read_fasta_file(path, seq::dna());
  std::printf("database: %zu records (~%zu BP) from %s\n", records.size(),
              records.size() * rec_len, path.c_str());

  core::SmithWatermanAccelerator acc(core::xc2vp70(), 80, sc);
  host::ScanOptions opt;
  opt.top_k = 5;
  opt.min_score = 25;
  const host::ScanResult scan = host::scan_database(acc, query, records, opt);

  std::printf("\nscanned %zu records, %llu cell updates, modelled board time %.3f ms\n",
              scan.records_scanned, static_cast<unsigned long long>(scan.cell_updates),
              scan.board_seconds * 1e3);
  // Karlin-Altschul statistics turn raw scores into E-values against the
  // whole search space.
  const align::KarlinParams kp = align::solve_karlin_uniform(sc, seq::dna().size());
  std::uint64_t total_db = 0;
  for (const seq::Sequence& rec : records) total_db += rec.size();

  std::printf("\ntop %zu hits (score >= %d):\n", opt.top_k, opt.min_score);
  std::printf("%4s %-24s %7s %8s %12s %14s\n", "#", "record", "score", "bits", "E-value",
              "end (i,j)");
  for (std::size_t k = 0; k < scan.hits.size(); ++k) {
    const host::Hit& h = scan.hits[k];
    std::printf("%4zu %-24s %7d %8.1f %12.2e (%6zu,%4zu)\n", k + 1,
                records[h.record].name().c_str(), h.result.score,
                align::bit_score(h.result.score, kp),
                align::e_value(h.result.score, query.size(), total_db, kp), h.result.end.i,
                h.result.end.j);
  }

  if (!scan.hits.empty()) {
    std::printf("\nretrieving the best hit's alignment through the host pipeline...\n");
    const host::PipelineResult pr =
        host::retrieve_hit(acc, host::PciConfig{}, query, records, scan.hits[0]);
    std::printf("score %d, record positions %zu..%zu, query %zu..%zu, identity %.1f%%\n",
                pr.alignment.score, pr.alignment.begin.i, pr.alignment.end.i,
                pr.alignment.begin.j, pr.alignment.end.j,
                align::cigar_identity(pr.alignment.cigar) * 100.0);
    std::printf("cigar: %s\n", pr.alignment.cigar.to_string().c_str());
  }
  return 0;
}
