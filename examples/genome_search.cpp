// genome_search: scan a large synthetic database for a query on the
// accelerator — the paper's headline use case (100 BP query, multi-MBP
// database) with a known planted hit as ground truth.
//
// Usage: ./examples/genome_search [db_len] [query_len]
//   defaults: 500000 100
//
// Shows: planted-workload generation, a single accelerator job over a
// database that exceeds the array (coordinates recovered from Bs/Bc),
// verification against the software kernel, and the time budget.
#include <cstdio>
#include <cstdlib>

#include "align/sw_linear.hpp"
#include "core/accelerator.hpp"
#include "seq/workload.hpp"

using namespace swr;

int main(int argc, char** argv) {
  const std::size_t db_len = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500'000;
  const std::size_t query_len = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100;
  const align::Scoring sc = align::Scoring::paper_default();

  std::printf("generating %zu BP database with a %.0f%%-diverged copy of the %zu BP query "
              "planted at offset %zu...\n",
              db_len, 5.0, query_len, db_len / 3);
  seq::PlantedWorkloadSpec spec;
  spec.query_len = query_len;
  spec.database_len = db_len;
  spec.plant_offset = db_len / 3;
  spec.plant_substitution_rate = 0.05;
  spec.seed = 7;
  const seq::PlantedWorkload wl = seq::make_planted_workload(spec);

  core::SmithWatermanAccelerator acc(core::xc2vp70(), 100, sc);
  std::printf("accelerator: %zu PEs @ %.1f MHz on %s\n", acc.num_pes(), acc.freq_mhz(),
              acc.device().name.c_str());

  const core::JobResult job = acc.run(wl.query, wl.database);
  std::printf("\nhit: score %d ending at database position %zu (query position %zu)\n",
              job.best.score, job.best.end.i, job.best.end.j);
  std::printf("ground truth: planted copy occupies [%zu, %zu) -> %s\n", wl.plant_begin,
              wl.plant_end,
              (job.best.end.i >= wl.plant_begin && job.best.end.i <= wl.plant_end + 5)
                  ? "hit is on the plant"
                  : "hit is elsewhere (unexpected)");

  const align::LocalScoreResult sw = align::sw_linear(wl.database, wl.query, sc);
  std::printf("software check: %s (score %d at (%zu,%zu))\n",
              job.best == sw ? "identical" : "MISMATCH", sw.score, sw.end.i, sw.end.j);

  std::printf("\naccelerator job: %llu cycles in %llu pass(es) -> %.3f ms at the modelled "
              "clock (%.2f GCUPS)\n",
              static_cast<unsigned long long>(job.stats.total_cycles),
              static_cast<unsigned long long>(job.stats.passes), job.seconds * 1e3, job.gcups);
  std::printf("board SRAM used: %zu bytes; datapath saturations: %llu\n",
              job.stats.sram_peak_bytes,
              static_cast<unsigned long long>(job.stats.saturations));
  return job.best == sw ? 0 : 1;
}
