// design_space: explore the synthesis model — how many PEs fit each FPGA,
// at what clock, and what that buys on a reference workload. The tool a
// user would run before choosing a board (paper figure 8's "there is
// space to add much more elements").
//
// Usage: ./examples/design_space [query_len] [db_len]
//   defaults: 500 1000000
#include <cstdio>
#include <cstdlib>

#include "core/device.hpp"
#include "core/performance_model.hpp"
#include "core/resource_model.hpp"

using namespace swr;
using namespace swr::core;

int main(int argc, char** argv) {
  const std::size_t query_len = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500;
  const std::size_t db_len = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1'000'000;

  std::printf("reference workload: %zu BP query vs %zu BP database\n\n", query_len, db_len);
  std::printf("%-10s | %-12s %8s %9s %7s | %7s %10s %9s\n", "device", "PE variant", "max PEs",
              "freq MHz", "slices", "passes", "time (ms)", "GCUPS");
  for (int i = 0; i < 88; ++i) std::putchar('-');
  std::putchar('\n');

  struct Variant {
    const char* name;
    PeFeatures pe;
  };
  const Variant variants[] = {
      {"score-only", {16, 32, false, false}},
      {"coords", {16, 32, true, false}},
      {"coords+aff", {16, 32, true, true}},
  };

  for (const FpgaDevice& dev : device_catalog()) {
    for (const Variant& v : variants) {
      const std::size_t n = max_elements(dev, v.pe);
      if (n == 0) continue;
      const ResourceEstimate e = estimate_resources(dev, n, v.pe);
      const CyclePrediction p = predict_cycles(query_len, db_len, n, true);
      const double secs = cycles_to_seconds(p.total_cycles, e.freq_mhz);
      std::printf("%-10s | %-12s %8zu %9.1f %6.0f%% | %7llu %10.2f %9.2f\n", dev.name.c_str(),
                  v.name, n, e.freq_mhz, e.slice_util * 100,
                  static_cast<unsigned long long>(p.passes), secs * 1e3,
                  static_cast<double>(query_len) * static_cast<double>(db_len) / secs / 1e9);
    }
  }
  std::printf("\nnotes: 'coords' is the paper's PE (Bs/Cl/Bc tracking); 'score-only' is the\n"
              "related-work baseline; 'coords+aff' adds the Gotoh affine-gap layers. Fewer,\n"
              "larger PEs trade area for the coordinate/gap features — the passes column\n"
              "shows the partitioning cost when the query exceeds the array.\n");
  return 0;
}
