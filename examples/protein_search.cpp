// protein_search: protein alignment with BLOSUM62 and affine gaps — the
// related-work workloads ([21] SAMBA and [23] PROSIDIS searched amino-acid
// databases; [2]/[32] used an affine gap model) on the affine variant of
// the coordinate-tracking array.
//
// Usage: ./examples/protein_search [db_len]
//   default: 20000
#include <cstdio>
#include <cstdlib>

#include "align/gotoh.hpp"
#include "core/accelerator.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"

using namespace swr;

int main(int argc, char** argv) {
  const std::size_t db_len = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;

  align::AffineScoring sc;
  sc.matrix = &align::blosum62();
  sc.gap_open = -10;
  sc.gap_extend = -1;

  // A 60-residue peptide query (PROSIDIS-style) planted in a random
  // protein database.
  seq::RandomSequenceGenerator gen(2718);
  const seq::Sequence query = gen.uniform(seq::protein(), 60, "peptide");
  seq::Sequence db = gen.uniform(seq::protein(), db_len / 2, "protein_db");
  const std::size_t plant_at = db.size();
  db.append(seq::point_mutate(query, 0.10, gen.engine()));
  db.append(gen.uniform(seq::protein(), db_len - db.size()));

  std::printf("query: %zu aa; database: %zu aa; BLOSUM62, gap open %d extend %d\n",
              query.size(), db.size(), sc.gap_open, sc.gap_extend);

  // The affine accelerator: [32]'s gap model + this paper's coordinates.
  core::AffineAccelerator acc(core::xc2vp70(), 60, sc);
  const core::JobResult job = acc.run(query, db);
  std::printf("\naffine accelerator (%zu PEs @ %.1f MHz): score %d at (db %zu, query %zu)\n",
              acc.num_pes(), acc.freq_mhz(), job.best.score, job.best.end.i, job.best.end.j);
  std::printf("planted homolog at db offset %zu -> %s\n", plant_at,
              (job.best.end.i >= plant_at && job.best.end.i <= plant_at + query.size() + 5)
                  ? "hit is on the plant"
                  : "hit is elsewhere (unexpected)");

  const align::LocalScoreResult sw = align::gotoh_local_score(db.codes(), query.codes(), sc);
  std::printf("Gotoh software check: %s (score %d)\n",
              job.best == sw ? "identical" : "MISMATCH", sw.score);

  // Full local alignment (software Gotoh with traceback) for display.
  const align::LocalAlignment al = align::gotoh_local_align(db, query, sc);
  std::printf("\nalignment: %zu columns, %.1f%% identity, cigar %s\n", al.cigar.columns(),
              align::cigar_identity(al.cigar) * 100.0, al.cigar.to_string().c_str());
  std::printf("modelled board time: %.3f ms (%.2f GCUPS)\n", job.seconds * 1e3, job.gcups);
  return job.best == sw ? 0 : 1;
}
