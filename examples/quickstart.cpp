// Quickstart: the library in one file.
//
// Walks the paper's own running examples through the public API:
//   1. score an alignment (figure 1),
//   2. build & print the similarity matrix, best local alignment with
//      traceback (figure 2),
//   3. the same comparison on the cycle-accurate FPGA model — score AND
//      coordinates in linear space (the paper's contribution),
//   4. full alignment retrieval through the host pipeline (§2.3).
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "align/local_linear.hpp"
#include "align/render.hpp"
#include "align/sw_full.hpp"
#include "core/accelerator.hpp"
#include "host/pipeline.hpp"

using namespace swr;

int main() {
  const align::Scoring sc = align::Scoring::paper_default();  // +1 / -1 / -2

  // --- 1. Sequences and scoring (figure 1) -------------------------------
  const seq::Sequence s = seq::Sequence::dna("TATGGAC", "s");
  const seq::Sequence t = seq::Sequence::dna("TAGTGACT", "t");
  std::printf("comparing s=%s with t=%s (match %+d, mismatch %+d, gap %+d)\n\n",
              s.to_string().c_str(), t.to_string().c_str(), sc.match, sc.mismatch, sc.gap);

  // --- 2. The similarity matrix and best local alignment (figure 2) ------
  const align::SimilarityMatrix m = align::sw_matrix(s, t, sc);
  const align::LocalAlignment best = align::sw_align(s, t, sc);
  std::printf("similarity matrix with predecessor arrows and traceback (paper figure 2;\n"
              "'\\' diagonal, '^' up, '<' left, '*' on the best path):\n%s\n",
              align::render_matrix_with_arrows(m, s, t, sc, &best).c_str());
  std::printf("best local alignment: score %d, s[%zu..%zu] vs t[%zu..%zu], cigar %s\n",
              best.score, best.begin.i, best.end.i, best.begin.j, best.end.j,
              best.cigar.to_string().c_str());
  std::printf("%s\n", align::format_alignment(best.cigar, s, t, best.begin).c_str());

  // --- 3. The same job on the reconfigurable accelerator ------------------
  // 100 processing elements synthesized (in the model) for the paper's
  // Xilinx xc2vp70. Convention: the query lives in the PEs (columns), the
  // database streams through (rows).
  core::SmithWatermanAccelerator acc(core::xc2vp70(), 100, sc);
  const core::JobResult job = acc.run(/*query=*/s, /*db=*/t);
  std::printf("accelerator (%zu PEs @ %.1f MHz): score %d at (db row %zu, query col %zu)\n",
              acc.num_pes(), acc.freq_mhz(), job.best.score, job.best.end.i, job.best.end.j);
  std::printf("  %llu cycles, %llu passes, modelled time %.2f us\n",
              static_cast<unsigned long long>(job.stats.total_cycles),
              static_cast<unsigned long long>(job.stats.passes), job.seconds * 1e6);

  // --- 4. Full retrieval through the host pipeline (paper §2.3) ----------
  host::HostPipeline pipe(acc, host::PciConfig{});
  const host::PipelineResult r = pipe.align(/*query=*/s, /*db=*/t);
  std::printf("\nhost pipeline (forward pass -> reverse pass -> Hirschberg):\n");
  std::printf("  alignment db[%zu..%zu] vs query[%zu..%zu], score %d\n", r.alignment.begin.i,
              r.alignment.end.i, r.alignment.begin.j, r.alignment.end.j, r.alignment.score);
  std::printf("  bytes to board: %llu, bytes back: %llu (the paper's 'few bytes over PCI')\n",
              static_cast<unsigned long long>(r.bytes_to_board),
              static_cast<unsigned long long>(r.bytes_from_board));
  return 0;
}
