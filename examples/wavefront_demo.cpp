// wavefront_demo: the §2.4 CPU-parallel wavefront (figure 3) — the
// software sibling of the systolic array, useful when no board is around.
//
// Usage: ./examples/wavefront_demo [len] [threads]
//   defaults: 4000 4
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "align/sw_linear.hpp"
#include "par/wavefront.hpp"
#include "seq/workload.hpp"

using namespace swr;

int main(int argc, char** argv) {
  const std::size_t len = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4'000;
  const std::size_t threads = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;
  const align::Scoring sc = align::Scoring::paper_default();

  seq::MutationModel mm;
  mm.substitution_rate = 0.05;
  mm.insertion_rate = 0.02;
  mm.deletion_rate = 0.02;
  const seq::HomologPair pair = seq::make_homolog_pair(len, mm, 11);
  std::printf("matrix: %zu x %zu, %zu worker threads (column blocks P1..P%zu)\n", pair.a.size(),
              pair.b.size(), threads, threads);

  const auto t0 = std::chrono::steady_clock::now();
  par::WavefrontConfig cfg;
  cfg.threads = threads;
  cfg.row_block = 512;
  const align::LocalScoreResult par_r = par::wavefront_sw(pair.a, pair.b, sc, cfg);
  const double par_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const auto t1 = std::chrono::steady_clock::now();
  const align::LocalScoreResult seq_r = align::sw_linear(pair.a, pair.b, sc);
  const double seq_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();

  const double cells = static_cast<double>(pair.a.size()) * static_cast<double>(pair.b.size());
  std::printf("wavefront : score %d at (%zu,%zu)  %.3f s  %.1f MCUPS\n", par_r.score,
              par_r.end.i, par_r.end.j, par_s, cells / par_s / 1e6);
  std::printf("sequential: score %d at (%zu,%zu)  %.3f s  %.1f MCUPS\n", seq_r.score,
              seq_r.end.i, seq_r.end.j, seq_s, cells / seq_s / 1e6);
  std::printf("results %s, speedup %.2fx\n", par_r == seq_r ? "identical" : "MISMATCH",
              seq_s / par_s);
  return par_r == seq_r ? 0 : 1;
}
