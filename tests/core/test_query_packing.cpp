// Query packing: several queries resident at once, one database pass.
#include <gtest/gtest.h>

#include "align/sw_linear.hpp"
#include "core/accelerator.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::core;

const align::Scoring kSc = align::Scoring::paper_default();

TEST(QueryPacking, EachQueryMatchesItsSoloRun) {
  const seq::Sequence db = swr::test::random_dna(500, 1);
  std::vector<seq::Sequence> queries;
  for (std::uint64_t s = 0; s < 4; ++s) {
    queries.push_back(swr::test::random_dna(10 + 5 * s, 100 + s));
  }
  ArrayController<ScorePe> ctl(80, 16, kSc, 1 << 20, true, false);
  const auto batch = ctl.run_batch(queries, db);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t k = 0; k < queries.size(); ++k) {
    EXPECT_EQ(batch[k], align::sw_linear(db, queries[k], kSc)) << "query " << k;
  }
}

TEST(QueryPacking, BarriersIsolateNeighbours) {
  // Adjacent queries crafted so a path crossing the barrier would score
  // higher than either side alone: the barrier must prevent it.
  const seq::Sequence db = seq::Sequence::dna("ACGTACGTAC");
  const std::vector<seq::Sequence> queries = {seq::Sequence::dna("ACGTA"),
                                              seq::Sequence::dna("CGTAC")};
  ArrayController<ScorePe> ctl(16, 16, kSc, 1 << 20, true, false);
  const auto batch = ctl.run_batch(queries, db);
  EXPECT_EQ(batch[0], align::sw_linear(db, queries[0], kSc));
  EXPECT_EQ(batch[1], align::sw_linear(db, queries[1], kSc));
  EXPECT_EQ(batch[0].score, 5);
  EXPECT_EQ(batch[1].score, 5);
}

TEST(QueryPacking, OnePassForTheWholeBatch) {
  const seq::Sequence db = swr::test::random_dna(300, 2);
  std::vector<seq::Sequence> queries(5, swr::test::random_dna(8, 3));
  ArrayController<ScorePe> ctl(64, 16, kSc, 1 << 20, true, false);
  (void)ctl.run_batch(queries, db);
  EXPECT_EQ(ctl.run_stats().passes, 1u);

  // Versus solo runs: the batch streams the database once instead of 5x.
  std::uint64_t solo_cycles = 0;
  for (const seq::Sequence& q : queries) {
    (void)ctl.run(q, db);
    solo_cycles += ctl.run_stats().total_cycles;
  }
  (void)ctl.run_batch(queries, db);
  EXPECT_LT(ctl.run_stats().total_cycles, solo_cycles / 3);
}

TEST(QueryPacking, OverflowAndEmptyHandling) {
  ArrayController<ScorePe> ctl(10, 16, kSc, 1 << 20, true, false);
  const seq::Sequence db = swr::test::random_dna(50, 4);
  // 6 + 1 barrier + 6 = 13 > 10 PEs.
  const std::vector<seq::Sequence> too_big = {swr::test::random_dna(6, 5),
                                              swr::test::random_dna(6, 6)};
  EXPECT_THROW((void)ctl.run_batch(too_big, db), std::invalid_argument);
  EXPECT_TRUE(ctl.run_batch({}, db).empty());
  const auto vs_empty_db =
      ctl.run_batch({swr::test::random_dna(4, 7)}, seq::Sequence::dna(""));
  ASSERT_EQ(vs_empty_db.size(), 1u);
  EXPECT_EQ(vs_empty_db[0].score, 0);
}

TEST(QueryPacking, EmptyQueryInBatchIsHarmless) {
  const seq::Sequence db = swr::test::random_dna(100, 8);
  const std::vector<seq::Sequence> queries = {seq::Sequence::dna(""),
                                              swr::test::random_dna(12, 9)};
  ArrayController<ScorePe> ctl(20, 16, kSc, 1 << 20, true, false);
  const auto batch = ctl.run_batch(queries, db);
  EXPECT_EQ(batch[0].score, 0);
  EXPECT_EQ(batch[1], align::sw_linear(db, queries[1], kSc));
}

TEST(QueryPacking, PackedMixedSizesFuzz) {
  std::mt19937_64 rng(99);
  for (int iter = 0; iter < 10; ++iter) {
    std::uniform_int_distribution<std::size_t> qn(1, 5);
    std::uniform_int_distribution<std::size_t> qlen(1, 12);
    std::uniform_int_distribution<std::size_t> dblen(1, 150);
    std::vector<seq::Sequence> queries;
    const std::size_t nq = qn(rng);
    for (std::size_t k = 0; k < nq; ++k) {
      queries.push_back(swr::test::random_dna(qlen(rng), rng()));
    }
    const seq::Sequence db = swr::test::random_dna(dblen(rng), rng());
    ArrayController<ScorePe> ctl(80, 16, kSc, 1 << 20, true, false);
    const auto batch = ctl.run_batch(queries, db);
    for (std::size_t k = 0; k < nq; ++k) {
      EXPECT_EQ(batch[k], align::sw_linear(db, queries[k], kSc))
          << "iter " << iter << " query " << k;
    }
  }
}

}  // namespace
