// Schedule tests: the anti-diagonal wavefront of figures 4-5 — which PE
// computes which matrix cell at which cycle — observed on the cycle-level
// model through the controller's per-cycle probe.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "align/sw_full.hpp"
#include "core/controller.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::core;

struct Emission {
  std::uint64_t cycle;
  std::size_t pe;
  align::Score score;
};

TEST(SystolicSchedule, AntiDiagonalWavefront) {
  // Query ACGAT resident, database CTTAG streamed — the exact example of
  // figure 4. Record every PE output event.
  const seq::Sequence query = seq::Sequence::dna("ACGAT");
  const seq::Sequence db = seq::Sequence::dna("CTTAG");
  const align::Scoring sc = align::Scoring::paper_default();

  ArrayController<ScorePe> ctl(5, 16, sc, 1 << 20, /*charge_query_load=*/false,
                               /*shuffle=*/false);
  std::vector<Emission> emissions;
  ctl.set_observer([&](const SystolicArray<ScorePe>& arr, std::uint64_t cycle) {
    for (std::size_t j = 0; j < arr.size(); ++j) {
      if (arr.pe(j).out().valid) emissions.push_back({cycle, j, arr.pe(j).out().score});
    }
  });
  (void)ctl.run(query, db);

  // Every valid emission from PE j at (relative) cycle t corresponds to
  // cell (i = t - j, j+1); PEs on one anti-diagonal fire the same cycle.
  ASSERT_FALSE(emissions.empty());
  const std::uint64_t t0 = emissions.front().cycle;  // PE 0, row 1
  const align::SimilarityMatrix m = align::sw_matrix(db, query, sc);
  std::size_t checked = 0;
  for (const Emission& e : emissions) {
    const std::uint64_t rel = e.cycle - t0;
    ASSERT_GE(rel, e.pe);
    const std::size_t i = static_cast<std::size_t>(rel - e.pe) + 1;  // row
    if (i > db.size()) continue;  // pipeline flush bubbles
    EXPECT_EQ(e.score, m(i, e.pe + 1)) << "cycle " << e.cycle << " pe " << e.pe;
    ++checked;
  }
  EXPECT_EQ(checked, db.size() * query.size());  // every cell exactly once
}

TEST(SystolicSchedule, MaximumParallelismOnLongDiagonals) {
  // With |db| >= N, some cycle must have all N PEs emitting at once —
  // figure 3(c)'s full-parallelism phase.
  const seq::Sequence query = swr::test::random_dna(8, 1);
  const seq::Sequence db = swr::test::random_dna(32, 2);
  ArrayController<ScorePe> ctl(8, 16, align::Scoring::paper_default(), 1 << 20, false, false);
  std::size_t max_active = 0;
  ctl.set_observer([&](const SystolicArray<ScorePe>& arr, std::uint64_t) {
    std::size_t active = 0;
    for (std::size_t j = 0; j < arr.size(); ++j) {
      if (arr.pe(j).out().valid) ++active;
    }
    max_active = std::max(max_active, active);
  });
  (void)ctl.run(query, db);
  EXPECT_EQ(max_active, 8u);
}

TEST(SystolicSchedule, TotalValidEmissionsEqualCellCount) {
  const seq::Sequence query = swr::test::random_dna(6, 3);
  const seq::Sequence db = swr::test::random_dna(17, 4);
  ArrayController<ScorePe> ctl(6, 16, align::Scoring::paper_default(), 1 << 20, false, false);
  std::uint64_t emissions = 0;
  ctl.set_observer([&](const SystolicArray<ScorePe>& arr, std::uint64_t) {
    for (std::size_t j = 0; j < arr.size(); ++j) {
      if (arr.pe(j).out().valid) ++emissions;
    }
  });
  (void)ctl.run(query, db);
  EXPECT_EQ(emissions, static_cast<std::uint64_t>(query.size()) * db.size());
}

// Observable per-PE architectural state, for the active-set probe below.
struct PeState {
  align::Score score;
  seq::Code base;
  bool valid;
  align::Score bs;
  std::uint64_t bc, cl;
  friend bool operator==(const PeState&, const PeState&) = default;
};

TEST(SystolicSchedule, ActiveSetCoversEveryObservableStateChange) {
  // Generalisation of the old fixed-vs-shuffled order test: under the
  // event scheduler, any PE whose architectural state (output link,
  // Bs/Bc/Cl registers) changes across a clock edge must have been in
  // that edge's active set — evaluation may be SKIPPED only where state
  // provably holds. Probed over a full single-pass job so idle load,
  // compute, drain-load and drain-shift phases are all covered (the
  // inter-pass reset is a reset line, not a clock edge; multi-pass
  // equivalence is pinned by the SchedParity lockstep suite).
  const seq::Sequence query = swr::test::random_dna(7, 7);
  const seq::Sequence db = swr::test::random_dna(23, 8);
  ArrayController<ScorePe> ctl(8, 16, align::Scoring::paper_default(), 1 << 20, true, false,
                               hw::SchedMode::Event);

  const auto snap = [](const ScorePe& pe) {
    return PeState{pe.out().score, pe.out().base, pe.out().valid,
                   pe.reg_bs(),    pe.reg_bc(),   pe.reg_cl()};
  };

  std::vector<PeState> prev(8);
  bool have_prev = false;
  std::uint64_t changes = 0;
  ctl.set_observer([&](const SystolicArray<ScorePe>& arr, std::uint64_t cycle) {
    for (std::size_t j = 0; j < arr.size(); ++j) {
      const PeState now = snap(arr.pe(j));
      if (have_prev && !(now == prev[j])) {
        EXPECT_TRUE(arr.evaluated_last_cycle(j))
            << "pe " << j << " changed without evaluating at cycle " << cycle;
        ++changes;
      }
      prev[j] = now;
    }
    have_prev = true;
  });
  (void)ctl.run(query, db);
  EXPECT_GT(changes, 0u);  // the probe saw real activity
}

TEST(SystolicSchedule, EventSchedulerSkipsIdlePes) {
  // The flip side: on a short stream most PEs never wake up, and the
  // evaluation count must reflect that (the whole point of the event
  // scheduler). Dense charges N per clock by definition.
  const seq::Sequence query = swr::test::random_dna(32, 9);
  const seq::Sequence db = swr::test::random_dna(4, 10);
  ArrayController<ScorePe> ev(32, 16, align::Scoring::paper_default(), 1 << 20, false, false,
                              hw::SchedMode::Event);
  ArrayController<ScorePe> dn(32, 16, align::Scoring::paper_default(), 1 << 20, false, false,
                              hw::SchedMode::Dense);
  EXPECT_EQ(ev.run(query, db), dn.run(query, db));
  EXPECT_EQ(ev.run_stats().total_cycles, dn.run_stats().total_cycles);
  EXPECT_EQ(dn.array().evaluations(),
            32u * dn.run_stats().total_cycles);  // dense: N per clock
  EXPECT_LT(ev.array().evaluations(), dn.array().evaluations() / 2);
}

TEST(SystolicSchedule, BaseStreamPropagatesUnchanged) {
  // The database base must arrive at PE j exactly j cycles after PE 0,
  // unmodified (figure 4's flowing sequence).
  const seq::Sequence query = swr::test::random_dna(4, 5);
  const seq::Sequence db = swr::test::random_dna(10, 6);
  ArrayController<ScorePe> ctl(4, 16, align::Scoring::paper_default(), 1 << 20, false, false);
  std::map<std::size_t, std::vector<seq::Code>> seen;  // pe -> bases in order
  ctl.set_observer([&](const SystolicArray<ScorePe>& arr, std::uint64_t) {
    for (std::size_t j = 0; j < arr.size(); ++j) {
      if (arr.pe(j).out().valid) seen[j].push_back(arr.pe(j).out().base);
    }
  });
  (void)ctl.run(query, db);
  for (std::size_t j = 0; j < 4; ++j) {
    ASSERT_EQ(seen[j].size(), db.size()) << "pe " << j;
    for (std::size_t i = 0; i < db.size(); ++i) {
      EXPECT_EQ(seen[j][i], db[i]) << "pe " << j << " pos " << i;
    }
  }
}

}  // namespace
