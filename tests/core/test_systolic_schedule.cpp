// Schedule tests: the anti-diagonal wavefront of figures 4-5 — which PE
// computes which matrix cell at which cycle — observed on the cycle-level
// model through the controller's per-cycle probe.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "align/sw_full.hpp"
#include "core/controller.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::core;

struct Emission {
  std::uint64_t cycle;
  std::size_t pe;
  align::Score score;
};

TEST(SystolicSchedule, AntiDiagonalWavefront) {
  // Query ACGAT resident, database CTTAG streamed — the exact example of
  // figure 4. Record every PE output event.
  const seq::Sequence query = seq::Sequence::dna("ACGAT");
  const seq::Sequence db = seq::Sequence::dna("CTTAG");
  const align::Scoring sc = align::Scoring::paper_default();

  ArrayController<ScorePe> ctl(5, 16, sc, 1 << 20, /*charge_query_load=*/false,
                               /*shuffle=*/false);
  std::vector<Emission> emissions;
  ctl.set_observer([&](const SystolicArray<ScorePe>& arr, std::uint64_t cycle) {
    for (std::size_t j = 0; j < arr.size(); ++j) {
      if (arr.pe(j).out().valid) emissions.push_back({cycle, j, arr.pe(j).out().score});
    }
  });
  (void)ctl.run(query, db);

  // Every valid emission from PE j at (relative) cycle t corresponds to
  // cell (i = t - j, j+1); PEs on one anti-diagonal fire the same cycle.
  ASSERT_FALSE(emissions.empty());
  const std::uint64_t t0 = emissions.front().cycle;  // PE 0, row 1
  const align::SimilarityMatrix m = align::sw_matrix(db, query, sc);
  std::size_t checked = 0;
  for (const Emission& e : emissions) {
    const std::uint64_t rel = e.cycle - t0;
    ASSERT_GE(rel, e.pe);
    const std::size_t i = static_cast<std::size_t>(rel - e.pe) + 1;  // row
    if (i > db.size()) continue;  // pipeline flush bubbles
    EXPECT_EQ(e.score, m(i, e.pe + 1)) << "cycle " << e.cycle << " pe " << e.pe;
    ++checked;
  }
  EXPECT_EQ(checked, db.size() * query.size());  // every cell exactly once
}

TEST(SystolicSchedule, MaximumParallelismOnLongDiagonals) {
  // With |db| >= N, some cycle must have all N PEs emitting at once —
  // figure 3(c)'s full-parallelism phase.
  const seq::Sequence query = swr::test::random_dna(8, 1);
  const seq::Sequence db = swr::test::random_dna(32, 2);
  ArrayController<ScorePe> ctl(8, 16, align::Scoring::paper_default(), 1 << 20, false, false);
  std::size_t max_active = 0;
  ctl.set_observer([&](const SystolicArray<ScorePe>& arr, std::uint64_t) {
    std::size_t active = 0;
    for (std::size_t j = 0; j < arr.size(); ++j) {
      if (arr.pe(j).out().valid) ++active;
    }
    max_active = std::max(max_active, active);
  });
  (void)ctl.run(query, db);
  EXPECT_EQ(max_active, 8u);
}

TEST(SystolicSchedule, TotalValidEmissionsEqualCellCount) {
  const seq::Sequence query = swr::test::random_dna(6, 3);
  const seq::Sequence db = swr::test::random_dna(17, 4);
  ArrayController<ScorePe> ctl(6, 16, align::Scoring::paper_default(), 1 << 20, false, false);
  std::uint64_t emissions = 0;
  ctl.set_observer([&](const SystolicArray<ScorePe>& arr, std::uint64_t) {
    for (std::size_t j = 0; j < arr.size(); ++j) {
      if (arr.pe(j).out().valid) ++emissions;
    }
  });
  (void)ctl.run(query, db);
  EXPECT_EQ(emissions, static_cast<std::uint64_t>(query.size()) * db.size());
}

TEST(SystolicSchedule, BaseStreamPropagatesUnchanged) {
  // The database base must arrive at PE j exactly j cycles after PE 0,
  // unmodified (figure 4's flowing sequence).
  const seq::Sequence query = swr::test::random_dna(4, 5);
  const seq::Sequence db = swr::test::random_dna(10, 6);
  ArrayController<ScorePe> ctl(4, 16, align::Scoring::paper_default(), 1 << 20, false, false);
  std::map<std::size_t, std::vector<seq::Code>> seen;  // pe -> bases in order
  ctl.set_observer([&](const SystolicArray<ScorePe>& arr, std::uint64_t) {
    for (std::size_t j = 0; j < arr.size(); ++j) {
      if (arr.pe(j).out().valid) seen[j].push_back(arr.pe(j).out().base);
    }
  });
  (void)ctl.run(query, db);
  for (std::size_t j = 0; j < 4; ++j) {
    ASSERT_EQ(seen[j].size(), db.size()) << "pe " << j;
    for (std::size_t i = 0; i < db.size(); ++i) {
      EXPECT_EQ(seen[j][i], db[i]) << "pe " << j << " pos " << i;
    }
  }
}

}  // namespace
