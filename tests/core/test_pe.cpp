// Unit tests of the figure-6 PE datapath, driven cycle by cycle.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "core/pe.hpp"

namespace {

using namespace swr;
using namespace swr::core;

struct PeHarness {
  hw::SatArith sat{16};
  align::Scoring sc = align::Scoring::paper_default();
  ScorePe pe;

  PeHarness() { pe.load_query_base(seq::dna().code('A'), true); }

  // One compute cycle with the given inputs; returns the PE output link
  // after the clock edge.
  PeLink clock(seq::Code base, align::Score c, bool valid = true) {
    pe.evaluate(ArrayMode::Compute, PeLink{base, c, 0, valid}, DrainSlot{}, PeContext{sat, sc});
    pe.commit();
    return pe.out();
  }
};

TEST(ScorePe, MatchTakesDiagonalPlusCo) {
  PeHarness h;
  // First cell: A=B=C=0, match 'A' -> D = max(0, 0+1, 0-2) = 1.
  const PeLink out = h.clock(seq::dna().code('A'), 0);
  EXPECT_TRUE(out.valid);
  EXPECT_EQ(out.score, 1);
  EXPECT_EQ(out.base, seq::dna().code('A'));
  EXPECT_EQ(h.pe.reg_b(), 1);   // D becomes the upper cell
  EXPECT_EQ(h.pe.reg_a(), 0);   // C becomes the diagonal
  EXPECT_EQ(h.pe.reg_bs(), 1);  // column best updated
  EXPECT_EQ(h.pe.reg_bc(), 1u); // at row 1
  EXPECT_EQ(h.pe.reg_cl(), 1u);
}

TEST(ScorePe, MismatchUsesSuAndClampsAtZero) {
  PeHarness h;
  const PeLink out = h.clock(seq::dna().code('T'), 0);
  // D = max(0, 0-1, 0-2) = 0.
  EXPECT_EQ(out.score, 0);
  EXPECT_EQ(h.pe.reg_bs(), 0);  // zero never recorded as a best
  EXPECT_EQ(h.pe.reg_bc(), 0u);
}

TEST(ScorePe, GapPathUsesMaxOfUpperAndLeft) {
  PeHarness h;
  (void)h.clock(seq::dna().code('A'), 0);  // B register now 1
  // Mismatch with C=5: D = max(0, A+Su, max(B=1, C=5) - 2) = 3.
  const PeLink out = h.clock(seq::dna().code('T'), 5);
  EXPECT_EQ(out.score, 3);
}

TEST(ScorePe, BubbleCyclesHoldState) {
  PeHarness h;
  (void)h.clock(seq::dna().code('A'), 0);
  const align::Score bs = h.pe.reg_bs();
  const std::uint64_t cl = h.pe.reg_cl();
  const PeLink out = h.clock(seq::dna().code('A'), 0, /*valid=*/false);
  EXPECT_FALSE(out.valid);
  EXPECT_EQ(h.pe.reg_bs(), bs);
  EXPECT_EQ(h.pe.reg_cl(), cl);  // Cl only counts valid cycles
}

TEST(ScorePe, BsKeepsFirstMaximum) {
  // Strictly-greater update: a later equal score must not move Bc.
  PeHarness h;
  (void)h.clock(seq::dna().code('A'), 0);  // row 1: D=1, Bs=1, Bc=1
  (void)h.clock(seq::dna().code('T'), 2);  // row 2: D = max(0, 0-1, max(1,2)-2) = 0
  (void)h.clock(seq::dna().code('A'), 0);  // row 3: D = max(0, 2+1?...)
  // Regardless of later equal scores, Bc stays at the first row where the
  // current Bs value was set.
  const std::uint64_t bc = h.pe.reg_bc();
  const align::Score bs = h.pe.reg_bs();
  (void)h.clock(seq::dna().code('T'), bs + 2);  // left gap gives exactly bs again
  EXPECT_EQ(h.pe.reg_bs(), bs);
  EXPECT_EQ(h.pe.reg_bc(), bc);
}

TEST(ScorePe, SaturatesAtConfiguredWidth) {
  hw::SatArith sat(4);  // range [-8, 7]
  align::Scoring sc = align::Scoring::paper_default();
  ScorePe pe;
  pe.load_query_base(seq::dna().code('A'), true);
  PeLink in{seq::dna().code('A'), 0, 0, true};
  // Repeated matches with a growing left input would exceed 7.
  for (int k = 0; k < 20; ++k) {
    pe.evaluate(ArrayMode::Compute, in, DrainSlot{}, PeContext{sat, sc});
    pe.commit();
    in.score = pe.out().score;
  }
  EXPECT_EQ(pe.out().score, 7);  // pinned at the positive rail
  EXPECT_GT(sat.saturation_count(), 0u);
}

TEST(ScorePe, DrainLoadAndShift) {
  PeHarness h;
  (void)h.clock(seq::dna().code('A'), 0);  // Bs=1, Bc=1
  h.pe.evaluate(ArrayMode::DrainLoad, PeLink{}, DrainSlot{}, PeContext{h.sat, h.sc});
  h.pe.commit();
  EXPECT_EQ(h.pe.drain_slot().bs, 1);
  EXPECT_EQ(h.pe.drain_slot().bc, 1u);
  // Shift: the neighbour's slot replaces ours.
  h.pe.evaluate(ArrayMode::DrainShift, PeLink{}, DrainSlot{42, 7}, PeContext{h.sat, h.sc});
  h.pe.commit();
  EXPECT_EQ(h.pe.drain_slot().bs, 42);
  EXPECT_EQ(h.pe.drain_slot().bc, 7u);
}

TEST(ScorePe, IdleHoldsEverything) {
  PeHarness h;
  (void)h.clock(seq::dna().code('A'), 0);
  const align::Score a = h.pe.reg_a();
  const align::Score b = h.pe.reg_b();
  h.pe.evaluate(ArrayMode::Idle, PeLink{seq::dna().code('T'), 9, 0, true}, DrainSlot{},
                PeContext{h.sat, h.sc});
  h.pe.commit();
  EXPECT_EQ(h.pe.reg_a(), a);
  EXPECT_EQ(h.pe.reg_b(), b);
  EXPECT_FALSE(h.pe.out().valid);
}

TEST(ScorePe, ResetClearsStateButKeepsQueryBase) {
  PeHarness h;
  (void)h.clock(seq::dna().code('A'), 3);
  h.pe.reset();
  EXPECT_EQ(h.pe.reg_a(), 0);
  EXPECT_EQ(h.pe.reg_b(), 0);
  EXPECT_EQ(h.pe.reg_bs(), 0);
  EXPECT_EQ(h.pe.reg_cl(), 0u);
  EXPECT_TRUE(h.pe.active());
  // Still matches 'A' after reset: SP survived.
  const PeLink out = h.clock(seq::dna().code('A'), 0);
  EXPECT_EQ(out.score, 1);
}

TEST(ScorePe, SinglePeColumnMatchesDpColumn) {
  // A lone PE owns one matrix column. Stream 200 random database bases
  // through it (left border C = 0) and check every emitted cell against
  // the full-matrix oracle's first column — plus Bs/Bc against the column
  // argmax under the first-maximum rule.
  std::mt19937_64 rng(424242);
  std::uniform_int_distribution<int> base(0, 3);
  for (const char qc : std::string("ACGT")) {
    PeHarness h;
    h.pe.reset();
    h.pe.load_query_base(seq::dna().code(qc), true);
    std::vector<seq::Code> db;
    for (int k = 0; k < 200; ++k) db.push_back(static_cast<seq::Code>(base(rng)));

    align::Score up = 0;  // D(i-1, 1)
    align::Score diag = 0;
    align::Score best = 0;
    std::uint64_t best_row = 0;
    for (std::size_t i = 1; i <= db.size(); ++i) {
      const PeLink out = h.clock(db[i - 1], 0);
      const align::Score sub =
          (db[i - 1] == seq::dna().code(qc)) ? h.sc.match : h.sc.mismatch;
      const align::Score expected = std::max(
          {align::Score{0}, static_cast<align::Score>(diag + sub),
           static_cast<align::Score>(std::max(up, align::Score{0}) + h.sc.gap)});
      ASSERT_EQ(out.score, expected) << "query " << qc << " row " << i;
      diag = 0;  // C is always 0 on the border
      up = expected;
      if (expected > best) {
        best = expected;
        best_row = i;
      }
    }
    EXPECT_EQ(h.pe.reg_bs(), best) << "query " << qc;
    EXPECT_EQ(h.pe.reg_bc(), best_row) << "query " << qc;
  }
}

}  // namespace
