// CPUID-based SIMD tier detection and the SWR_SIMD / --simd policy
// resolution: parsing, clamping, env override precedence.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "align/sw_striped.hpp"
#include "core/cpu_features.hpp"

namespace {

using namespace swr::core;

// Restores the prior SWR_SIMD value (or its absence) on scope exit so
// these tests cannot leak policy into other tests in the binary.
class ScopedSimdEnv {
 public:
  explicit ScopedSimdEnv(const char* value) {
    const char* prev = std::getenv("SWR_SIMD");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    if (value != nullptr) {
      ::setenv("SWR_SIMD", value, 1);
    } else {
      ::unsetenv("SWR_SIMD");
    }
  }
  ~ScopedSimdEnv() {
    if (had_prev_) {
      ::setenv("SWR_SIMD", prev_.c_str(), 1);
    } else {
      ::unsetenv("SWR_SIMD");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

TEST(CpuFeatures, ParseAcceptsEveryCanonicalName) {
  EXPECT_EQ(parse_simd_isa("scalar"), SimdIsa::Scalar);
  EXPECT_EQ(parse_simd_isa("swar16"), SimdIsa::Swar16);
  EXPECT_EQ(parse_simd_isa("swar8"), SimdIsa::Swar8);
  EXPECT_EQ(parse_simd_isa("sse41"), SimdIsa::Sse41);
  EXPECT_EQ(parse_simd_isa("avx2"), SimdIsa::Avx2);
  EXPECT_EQ(parse_simd_isa("auto"), std::nullopt);
  EXPECT_EQ(parse_simd_isa(""), std::nullopt);
}

TEST(CpuFeatures, ParseRejectsUnknownWithListedChoices) {
  try {
    (void)parse_simd_isa("sse42");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sse42"), std::string::npos) << msg;
    EXPECT_NE(msg.find("choices: auto|scalar|swar16|swar8|sse41|avx2"), std::string::npos) << msg;
  }
}

TEST(CpuFeatures, NameRoundTripsThroughParse) {
  for (const SimdIsa isa : {SimdIsa::Scalar, SimdIsa::Swar16, SimdIsa::Swar8, SimdIsa::Sse41,
                            SimdIsa::Avx2}) {
    EXPECT_EQ(parse_simd_isa(simd_isa_name(isa)), isa);
  }
}

TEST(CpuFeatures, PortableTiersAlwaysSupported) {
  EXPECT_TRUE(cpu_supports(SimdIsa::Scalar));
  EXPECT_TRUE(cpu_supports(SimdIsa::Swar16));
  EXPECT_TRUE(cpu_supports(SimdIsa::Swar8));
}

TEST(CpuFeatures, SupportIsMonotonicInWidth) {
  // A CPU with AVX2 always has SSE4.1; detection must agree, and must
  // never report a striped tier the binary has no code for.
  if (cpu_supports(SimdIsa::Avx2)) EXPECT_TRUE(cpu_supports(SimdIsa::Sse41));
  if (!swr::align::sw_striped_compiled()) {
    EXPECT_FALSE(cpu_supports(SimdIsa::Sse41));
    EXPECT_FALSE(cpu_supports(SimdIsa::Avx2));
  }
}

TEST(CpuFeatures, DetectedIsWidestSupported) {
  const SimdIsa d = detected_simd_isa();
  EXPECT_TRUE(cpu_supports(d));
  EXPECT_GE(static_cast<unsigned>(d), static_cast<unsigned>(SimdIsa::Swar8));
  if (cpu_supports(SimdIsa::Avx2)) EXPECT_EQ(d, SimdIsa::Avx2);
  else if (cpu_supports(SimdIsa::Sse41)) EXPECT_EQ(d, SimdIsa::Sse41);
  else EXPECT_EQ(d, SimdIsa::Swar8);
}

TEST(CpuFeatures, ClampHonoursSupportedRequests) {
  std::string warning = "stale";
  EXPECT_EQ(clamp_simd_isa(SimdIsa::Swar8, SimdIsa::Avx2, &warning), SimdIsa::Swar8);
  EXPECT_TRUE(warning.empty());  // no degrade -> warning cleared
  EXPECT_EQ(clamp_simd_isa(SimdIsa::Sse41, SimdIsa::Sse41, &warning), SimdIsa::Sse41);
  EXPECT_TRUE(warning.empty());
}

TEST(CpuFeatures, ClampDegradesUnsupportedRequestWithWarning) {
  std::string warning;
  EXPECT_EQ(clamp_simd_isa(SimdIsa::Avx2, SimdIsa::Swar8, &warning), SimdIsa::Swar8);
  EXPECT_NE(warning.find("avx2"), std::string::npos) << warning;
  EXPECT_NE(warning.find("swar8"), std::string::npos) << warning;
  EXPECT_NE(warning.find("degrading"), std::string::npos) << warning;
  // Null warning pointer is fine.
  EXPECT_EQ(clamp_simd_isa(SimdIsa::Avx2, SimdIsa::Sse41), SimdIsa::Sse41);
}

TEST(CpuFeatures, EffectiveNeverExceedsMachine) {
  for (const SimdIsa req : {SimdIsa::Scalar, SimdIsa::Swar16, SimdIsa::Swar8, SimdIsa::Sse41,
                            SimdIsa::Avx2}) {
    const SimdIsa got = effective_simd_isa(req);
    EXPECT_TRUE(cpu_supports(got));
    EXPECT_LE(static_cast<unsigned>(got), static_cast<unsigned>(req));
  }
}

TEST(CpuFeatures, EnvOverrideWinsOverDetection) {
  {
    ScopedSimdEnv env("scalar");
    EXPECT_EQ(simd_isa_env_override(), SimdIsa::Scalar);
    EXPECT_EQ(auto_simd_isa(), SimdIsa::Scalar);
  }
  {
    ScopedSimdEnv env("swar8");
    EXPECT_EQ(auto_simd_isa(), SimdIsa::Swar8);
  }
}

TEST(CpuFeatures, EnvAutoAndUnsetFallBackToDetection) {
  {
    ScopedSimdEnv env("auto");
    EXPECT_EQ(simd_isa_env_override(), std::nullopt);
    EXPECT_EQ(auto_simd_isa(), detected_simd_isa());
  }
  {
    ScopedSimdEnv env(nullptr);
    EXPECT_EQ(simd_isa_env_override(), std::nullopt);
    EXPECT_EQ(auto_simd_isa(), detected_simd_isa());
  }
}

TEST(CpuFeatures, BadEnvValueIsIgnoredNotFatal) {
  ScopedSimdEnv env("avx512-or-bust");
  EXPECT_EQ(simd_isa_env_override(), std::nullopt);  // warns once on stderr, never throws
  EXPECT_EQ(auto_simd_isa(), detected_simd_isa());
}

TEST(CpuFeatures, EnvRequestAboveMachineDegrades) {
  ScopedSimdEnv env("avx2");
  const SimdIsa got = auto_simd_isa();
  EXPECT_TRUE(cpu_supports(got));
  EXPECT_LE(static_cast<unsigned>(got), static_cast<unsigned>(SimdIsa::Avx2));
}

// Restores the prior SWR_KERNEL value on scope exit (same contract as
// ScopedSimdEnv).
class ScopedKernelEnv {
 public:
  explicit ScopedKernelEnv(const char* value) {
    const char* prev = std::getenv("SWR_KERNEL");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    if (value != nullptr) {
      ::setenv("SWR_KERNEL", value, 1);
    } else {
      ::unsetenv("SWR_KERNEL");
    }
  }
  ~ScopedKernelEnv() {
    if (had_prev_) {
      ::setenv("SWR_KERNEL", prev_.c_str(), 1);
    } else {
      ::unsetenv("SWR_KERNEL");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

TEST(KernelShapeParse, AcceptsEveryCanonicalName) {
  EXPECT_EQ(parse_kernel_shape("auto"), KernelShape::Auto);
  EXPECT_EQ(parse_kernel_shape(""), KernelShape::Auto);
  EXPECT_EQ(parse_kernel_shape("striped"), KernelShape::Striped);
  EXPECT_EQ(parse_kernel_shape("interseq"), KernelShape::InterSeq);
}

TEST(KernelShapeParse, RejectsUnknownWithListedChoices) {
  try {
    (void)parse_kernel_shape("diagonal");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("diagonal"), std::string::npos) << msg;
    EXPECT_NE(msg.find("choices: auto|striped|interseq"), std::string::npos) << msg;
  }
}

TEST(KernelShapeParse, NameRoundTripsThroughParse) {
  for (const KernelShape s : {KernelShape::Auto, KernelShape::Striped, KernelShape::InterSeq}) {
    EXPECT_EQ(parse_kernel_shape(kernel_shape_name(s)), s);
  }
}

TEST(KernelShapeEnv, OverrideParsesAndAutoIsAbsent) {
  {
    ScopedKernelEnv env("interseq");
    EXPECT_EQ(kernel_shape_env_override(), KernelShape::InterSeq);
  }
  {
    ScopedKernelEnv env("striped");
    EXPECT_EQ(kernel_shape_env_override(), KernelShape::Striped);
  }
  {
    ScopedKernelEnv env("auto");
    EXPECT_EQ(kernel_shape_env_override(), std::nullopt);
  }
  {
    ScopedKernelEnv env(nullptr);
    EXPECT_EQ(kernel_shape_env_override(), std::nullopt);
  }
}

TEST(KernelShapeEnv, BadValueIsIgnoredNotFatal) {
  ScopedKernelEnv env("systolic");
  EXPECT_EQ(kernel_shape_env_override(), std::nullopt);  // warns once, never throws
}

}  // namespace
