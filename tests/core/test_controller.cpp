// Controller-level functional equivalence: the cycle-accurate accelerator
// against the software oracle, across sizes, partitioning, evaluation
// order, widths and scoring schemes.
#include <gtest/gtest.h>

#include <tuple>

#include "align/sw_full.hpp"
#include "align/sw_linear.hpp"
#include "core/accelerator.hpp"
#include "core/performance_model.hpp"
#include "seq/workload.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::core;

const align::Scoring kSc = align::Scoring::paper_default();

TEST(Controller, Figure2Example) {
  ArrayController<ScorePe> ctl(7, 16, kSc, 1 << 20, true, false);
  const seq::Sequence query = seq::Sequence::dna("TATGGAC");
  const seq::Sequence db = seq::Sequence::dna("TAGTGACT");
  const align::LocalScoreResult hw = ctl.run(query, db);
  EXPECT_EQ(hw, align::sw_linear(db, query, kSc));
}

TEST(Controller, EmptyInputs) {
  ArrayController<ScorePe> ctl(4, 16, kSc, 1 << 20, true, false);
  EXPECT_EQ(ctl.run(seq::Sequence::dna(""), seq::Sequence::dna("ACGT")).score, 0);
  EXPECT_EQ(ctl.run(seq::Sequence::dna("ACGT"), seq::Sequence::dna("")).score, 0);
}

TEST(Controller, AlphabetMismatchRejected) {
  ArrayController<ScorePe> ctl(4, 16, kSc, 1 << 20, true, false);
  EXPECT_THROW((void)ctl.run(seq::Sequence::dna("ACGT"), seq::Sequence::protein("ARND")),
               std::invalid_argument);
}

// The central property: hardware == software, including coordinates, for
// every combination of query/database size and array size (exercising
// no-partitioning, exact-fit, and multi-pass with partial final chunks).
class ControllerEquivalence
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t, std::uint64_t>> {
};

TEST_P(ControllerEquivalence, MatchesSoftwareOracle) {
  const auto [m, n, npes, seed] = GetParam();
  const seq::Sequence query = swr::test::random_dna(m, seed * 7 + 1);
  const seq::Sequence db = swr::test::random_dna(n, seed * 11 + 2);
  ArrayController<ScorePe> ctl(npes, 16, kSc, 4 << 20, true, false);
  const align::LocalScoreResult hw = ctl.run(query, db);
  const align::LocalScoreResult sw = align::sw_linear(db, query, kSc);
  EXPECT_EQ(hw, sw) << "m=" << m << " n=" << n << " npes=" << npes;
  EXPECT_EQ(ctl.run_stats().passes, (m + npes - 1) / npes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ControllerEquivalence,
    testing::Combine(testing::Values<std::size_t>(1, 3, 8, 16, 23, 64),
                     testing::Values<std::size_t>(1, 9, 40, 120),
                     testing::Values<std::size_t>(1, 4, 8, 16),
                     testing::Values<std::uint64_t>(1, 2)));

TEST(Controller, ShuffledEvaluationOrderGivesIdenticalResults) {
  // Two-phase design: randomising module evaluation order every cycle
  // must not change anything.
  const seq::Sequence query = swr::test::random_dna(30, 5);
  const seq::Sequence db = swr::test::random_dna(70, 6);
  ArrayController<ScorePe> fixed(8, 16, kSc, 1 << 20, true, false);
  ArrayController<ScorePe> shuffled(8, 16, kSc, 1 << 20, true, true);
  EXPECT_EQ(fixed.run(query, db), shuffled.run(query, db));
}

TEST(Controller, MeasuredCyclesMatchAnalyticModel) {
  for (const auto& [m, n, npes] : std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>{
           {5, 20, 8}, {8, 20, 8}, {17, 33, 8}, {100, 250, 32}}) {
    const seq::Sequence query = swr::test::random_dna(m, 50);
    const seq::Sequence db = swr::test::random_dna(n, 51);
    ArrayController<ScorePe> ctl(npes, 16, kSc, 4 << 20, true, false);
    (void)ctl.run(query, db);
    const RunStats& st = ctl.run_stats();
    const CyclePrediction p = predict_cycles(m, n, npes, true);
    EXPECT_EQ(st.passes, p.passes);
    EXPECT_EQ(st.load_cycles, p.load_cycles);
    EXPECT_EQ(st.compute_cycles, p.compute_cycles);
    EXPECT_EQ(st.drain_cycles, p.drain_cycles);
    EXPECT_EQ(st.total_cycles, p.total_cycles);
  }
}

TEST(Controller, RepeatedRunsAreIndependent) {
  // State from a previous job must not leak into the next.
  ArrayController<ScorePe> ctl(8, 16, kSc, 1 << 20, true, false);
  const seq::Sequence q1 = swr::test::random_dna(12, 60);
  const seq::Sequence d1 = swr::test::random_dna(40, 61);
  const seq::Sequence q2 = swr::test::random_dna(20, 62);
  const seq::Sequence d2 = swr::test::random_dna(33, 63);
  const align::LocalScoreResult first = ctl.run(q1, d1);
  (void)ctl.run(q2, d2);
  EXPECT_EQ(ctl.run(q1, d1), first);
}

TEST(Controller, NarrowWidthSaturatesAndReportsIt) {
  // A 4-bit datapath cannot represent the score of a 40-base perfect
  // match; the run must saturate (visible in stats) and pin at the rail.
  const seq::Sequence q = swr::test::random_dna(40, 70);
  ArrayController<ScorePe> ctl(40, 4, kSc, 1 << 20, true, false);
  const align::LocalScoreResult hw = ctl.run(q, q);
  EXPECT_EQ(hw.score, 7);  // 4-bit positive rail
  EXPECT_GT(ctl.run_stats().saturations, 0u);

  // The same workload at 16 bits is exact and saturation-free.
  ArrayController<ScorePe> wide(40, 16, kSc, 1 << 20, true, false);
  const align::LocalScoreResult exact = wide.run(q, q);
  EXPECT_EQ(exact.score, 40);
  EXPECT_EQ(wide.run_stats().saturations, 0u);
}

TEST(Controller, SramOverflowIsLoudForOversizedJobs) {
  // 1 KB board SRAM cannot hold a 4 KB database.
  ArrayController<ScorePe> ctl(8, 16, kSc, 1024, true, false);
  const seq::Sequence q = swr::test::random_dna(8, 80);
  const seq::Sequence db = swr::test::random_dna(4096, 81);
  EXPECT_THROW((void)ctl.run(q, db), std::length_error);
}

TEST(Controller, PartitionedRunUsesBoundarySram) {
  // Multi-pass jobs must allocate the boundary ping-pong buffers.
  ArrayController<ScorePe> ctl(8, 16, kSc, 1 << 20, true, false);
  const seq::Sequence q = swr::test::random_dna(20, 90);
  const seq::Sequence db = swr::test::random_dna(50, 91);
  (void)ctl.run(q, db);
  EXPECT_GT(ctl.run_stats().sram_peak_bytes, db.size());
  // Single-pass jobs only hold the database.
  const seq::Sequence q2 = swr::test::random_dna(8, 92);
  (void)ctl.run(q2, db);
  EXPECT_EQ(ctl.run_stats().sram_peak_bytes, db.size());
}

TEST(Controller, PlantedWorkloadCoordinatesAreGroundTruth) {
  seq::PlantedWorkloadSpec spec;
  spec.query_len = 64;
  spec.database_len = 3000;
  spec.plant_offset = 1200;
  spec.plant_substitution_rate = 0.03;
  spec.seed = 17;
  const seq::PlantedWorkload wl = seq::make_planted_workload(spec);
  ArrayController<ScorePe> ctl(32, 16, kSc, 1 << 20, true, false);  // forces 2 passes
  const align::LocalScoreResult hw = ctl.run(wl.query, wl.database);
  EXPECT_EQ(hw, align::sw_linear(wl.database, wl.query, kSc));
  EXPECT_GE(hw.end.i, wl.plant_begin);
  EXPECT_LE(hw.end.i, wl.plant_end + 5);
}

TEST(Controller, ProteinSubstitutionMatrixScoring) {
  // The PE's Co/Su mux generalised to a substitution table ([21] SAMBA
  // searched amino-acid databases): hardware must equal software under
  // BLOSUM62 too, including multi-pass partitioning.
  align::Scoring sc;
  sc.matrix = &align::blosum62();
  sc.gap = -8;
  const seq::Sequence query = swr::test::random_protein(37, 301);
  const seq::Sequence db = swr::test::random_protein(150, 302);
  ArrayController<ScorePe> ctl(16, 16, sc, 1 << 20, true, false);  // 3 passes
  EXPECT_EQ(ctl.run(query, db), align::sw_linear(db, query, sc));
}

TEST(Accelerator, FacadeChecksDeviceCapacity) {
  EXPECT_THROW(SmithWatermanAccelerator(xc2vp70(), 100000, kSc), std::invalid_argument);
  SmithWatermanAccelerator acc(xc2vp70(), 100, kSc);
  EXPECT_EQ(acc.num_pes(), 100u);
  EXPECT_GT(acc.freq_mhz(), 50.0);
  EXPECT_LT(acc.freq_mhz(), 200.0);
}

TEST(Accelerator, RunProducesTimingAndGcups) {
  SmithWatermanAccelerator acc(xc2vp70(), 16, kSc);
  const seq::Sequence q = swr::test::random_dna(16, 95);
  const seq::Sequence db = swr::test::random_dna(200, 96);
  const JobResult r = acc.run(q, db);
  EXPECT_EQ(r.best, align::sw_linear(db, q, kSc));
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.gcups, 0.0);
  EXPECT_NEAR(r.seconds, acc.predict_seconds(q.size(), db.size()), 1e-12);
}

TEST(Accelerator, ReversePassFindsBeginCoordinates) {
  SmithWatermanAccelerator acc(xc2vp70(), 16, kSc);
  const seq::Sequence q = seq::Sequence::dna("TATGGAC");
  const seq::Sequence db = seq::Sequence::dna("TAGTGACT");
  const JobResult fwd = acc.run(q, db);
  ASSERT_EQ(fwd.best.score, 3);
  const JobResult rev = acc.run_reverse(q, db, fwd.best.end);
  EXPECT_EQ(rev.best.score, fwd.best.score);
  // begin = end - rev.end + 1 => (5,5) for the GAC/GAC alignment.
  EXPECT_EQ(fwd.best.end.i - rev.best.end.i + 1, 5u);
  EXPECT_EQ(fwd.best.end.j - rev.best.end.j + 1, 5u);
}

}  // namespace
