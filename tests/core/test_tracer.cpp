#include <gtest/gtest.h>

#include <sstream>

#include "core/tracer.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::core;

TEST(ArrayTracer, ProducesVcdForARun) {
  ArrayController<ScorePe> ctl(4, 16, align::Scoring::paper_default(), 1 << 20, false, false);
  std::ostringstream vcd;
  ArrayTracer tracer(vcd);
  tracer.attach(ctl);
  const seq::Sequence q = swr::test::random_dna(4, 1);
  const seq::Sequence db = swr::test::random_dna(12, 2);
  (void)ctl.run(q, db);
  EXPECT_GT(tracer.samples(), 12u);
  const std::string text = vcd.str();
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(text.find("pe0_D"), std::string::npos);
  EXPECT_NE(text.find("pe3_Bc"), std::string::npos);
  EXPECT_NE(text.find("#1"), std::string::npos);  // at least one sampled cycle
}

TEST(ArrayTracer, SignalLimitCapsProbes) {
  ArrayController<ScorePe> ctl(8, 16, align::Scoring::paper_default(), 1 << 20, false, false);
  std::ostringstream vcd;
  ArrayTracer tracer(vcd, /*signal_limit=*/2);
  tracer.attach(ctl);
  (void)ctl.run(swr::test::random_dna(8, 3), swr::test::random_dna(10, 4));
  const std::string text = vcd.str();
  EXPECT_NE(text.find("pe1_D"), std::string::npos);
  EXPECT_EQ(text.find("pe2_D"), std::string::npos);
}

TEST(ArrayTracer, DoubleAttachRejected) {
  ArrayController<ScorePe> ctl(2, 16, align::Scoring::paper_default(), 1 << 20, false, false);
  std::ostringstream vcd;
  ArrayTracer tracer(vcd);
  tracer.attach(ctl);
  EXPECT_THROW(tracer.attach(ctl), std::logic_error);
}

}  // namespace
