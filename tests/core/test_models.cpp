// Resource / frequency / performance model tests, incl. the Table-2
// calibration targets.
#include <gtest/gtest.h>

#include "core/device.hpp"
#include "core/performance_model.hpp"
#include "core/resource_model.hpp"

namespace {

using namespace swr::core;

const PeFeatures kPaperPe{16, 32, true, false};

TEST(DeviceCatalog, ContainsThePaperParts) {
  EXPECT_NO_THROW((void)device("xc2vp70"));
  EXPECT_NO_THROW((void)device("xc2v6000"));
  EXPECT_NO_THROW((void)device("xcv2000e"));
  EXPECT_THROW((void)device("xc9999"), std::invalid_argument);
  EXPECT_EQ(xc2vp70().slices, 33088u);
}

TEST(ResourceModel, Table2CalibrationFor100Elements) {
  // Paper Table 2 for the 100-element xc2vp70 prototype: ~25 % flip-flops,
  // ~65 % LUTs, under 70 % of the slices, 7 % IOBs, 1 GCLK. The model must
  // land in those bands.
  const ResourceEstimate e = estimate_resources(xc2vp70(), 100, kPaperPe);
  EXPECT_TRUE(e.fits);
  EXPECT_NEAR(e.ff_util, 0.25, 0.05);
  EXPECT_NEAR(e.lut_util, 0.65, 0.05);
  EXPECT_LT(e.slice_util, 0.70);
  EXPECT_GT(e.slice_util, 0.55);
  EXPECT_NEAR(e.iob_util, 0.07, 0.02);
  EXPECT_EQ(e.gclks, 1u);
}

TEST(ResourceModel, ResourcesGrowLinearlyWithElements) {
  const ResourceEstimate e50 = estimate_resources(xc2vp70(), 50, kPaperPe);
  const ResourceEstimate e100 = estimate_resources(xc2vp70(), 100, kPaperPe);
  const ResourceEstimate e150 = estimate_resources(xc2vp70(), 150, kPaperPe);
  EXPECT_EQ(e100.flipflops - e50.flipflops, e150.flipflops - e100.flipflops);
  EXPECT_EQ(e100.luts - e50.luts, e150.luts - e100.luts);
}

TEST(ResourceModel, FrequencyDegradesWithUtilisation) {
  const ResourceEstimate small = estimate_resources(xc2vp70(), 10, kPaperPe);
  const ResourceEstimate large = estimate_resources(xc2vp70(), 150, kPaperPe);
  EXPECT_GT(small.freq_mhz, large.freq_mhz);
  EXPECT_LT(small.freq_mhz, xc2vp70().datapath_fmax_mhz);
}

TEST(ResourceModel, MaxElementsIsTightOnEveryDevice) {
  for (const FpgaDevice& dev : device_catalog()) {
    const std::size_t n = max_elements(dev, kPaperPe);
    ASSERT_GT(n, 0u) << dev.name;
    EXPECT_TRUE(estimate_resources(dev, n, kPaperPe).fits) << dev.name;
    EXPECT_FALSE(estimate_resources(dev, n + 1, kPaperPe).fits) << dev.name;
  }
}

TEST(ResourceModel, CoordinateTrackingAblation) {
  // Dropping the Bs/Cl/Bc machinery (a score-only accelerator, like most
  // related work) must shrink the PE and let more elements fit.
  PeFeatures score_only = kPaperPe;
  score_only.coordinate_tracking = false;
  EXPECT_LT(pe_flipflops(score_only), pe_flipflops(kPaperPe));
  EXPECT_LT(pe_luts(score_only), pe_luts(kPaperPe));
  EXPECT_GT(max_elements(xc2vp70(), score_only), max_elements(xc2vp70(), kPaperPe));
}

TEST(ResourceModel, NarrowerDatapathFitsMoreElements) {
  PeFeatures narrow = kPaperPe;
  narrow.score_bits = 12;  // SAMBA-style 12-bit PEs
  narrow.cycle_bits = 24;
  EXPECT_GT(max_elements(xc2vp70(), narrow), max_elements(xc2vp70(), kPaperPe));
}

TEST(ResourceModel, ZeroPesRejected) {
  EXPECT_THROW((void)estimate_resources(xc2vp70(), 0, kPaperPe), std::invalid_argument);
}

TEST(PerformanceModel, CycleFormula) {
  // m=100, n=10e6, N=100: 1 pass, load 100, stream n+N-1, drain N.
  const CyclePrediction p = predict_cycles(100, 10'000'000, 100, true);
  EXPECT_EQ(p.passes, 1u);
  EXPECT_EQ(p.load_cycles, 100u);
  EXPECT_EQ(p.compute_cycles, 10'000'099u);
  EXPECT_EQ(p.drain_cycles, 100u);
  EXPECT_EQ(p.total_cycles, 10'000'299u);
}

TEST(PerformanceModel, MultiPass) {
  const CyclePrediction p = predict_cycles(250, 1000, 100, true);
  EXPECT_EQ(p.passes, 3u);
  EXPECT_EQ(p.load_cycles, 250u);
  EXPECT_EQ(p.compute_cycles, 3u * 1099u);
  EXPECT_EQ(p.drain_cycles, 300u);
}

TEST(PerformanceModel, EmptyJobIsFree) {
  EXPECT_EQ(predict_cycles(0, 1000, 100, true).total_cycles, 0u);
  EXPECT_EQ(predict_cycles(10, 0, 100, true).total_cycles, 0u);
}

TEST(PerformanceModel, SecondsAndGcups) {
  EXPECT_DOUBLE_EQ(cycles_to_seconds(1'000'000, 100.0), 0.01);
  EXPECT_DOUBLE_EQ(gcups(2'000'000'000, 1.0), 2.0);
  EXPECT_THROW((void)cycles_to_seconds(1, 0.0), std::invalid_argument);
  EXPECT_THROW((void)gcups(1, 0.0), std::invalid_argument);
}

TEST(QueryLoadModel, RegisterShiftMatchesPlainPrediction) {
  const QueryLoadModel reg{};  // register shifting (default)
  const double s = job_seconds(200, 100'000, 100, 100.0, reg);
  EXPECT_DOUBLE_EQ(s, cycles_to_seconds(predict_cycles(200, 100'000, 100, true).total_cycles,
                                        100.0));
}

TEST(QueryLoadModel, ReconfigRemovesLoadCyclesButAddsStalls) {
  QueryLoadModel jbits;
  jbits.dynamic_reconfig = true;
  jbits.reconfig_seconds_per_pass = 2e-3;
  const double s = job_seconds(200, 100'000, 100, 100.0, jbits);
  const CyclePrediction p = predict_cycles(200, 100'000, 100, false);
  EXPECT_DOUBLE_EQ(s, cycles_to_seconds(p.total_cycles, 100.0) + 2 * 2e-3);
}

TEST(QueryLoadModel, ReconfigLosesOnManyPasses) {
  // The paper's §4 point about [13]: milliseconds of reconfiguration per
  // chunk swamp the cycles it saves once long queries force many passes.
  QueryLoadModel reg{};
  QueryLoadModel jbits;
  jbits.dynamic_reconfig = true;
  const double reg_s = job_seconds(10'000, 100'000, 100, 100.0, reg);
  const double jbits_s = job_seconds(10'000, 100'000, 100, 100.0, jbits);
  EXPECT_GT(jbits_s, reg_s);
  // But for a single short pass against a huge database it is harmless.
  const double reg_1 = job_seconds(100, 50'000'000, 100, 100.0, reg);
  const double jbits_1 = job_seconds(100, 50'000'000, 100, 100.0, jbits);
  EXPECT_NEAR(jbits_1 / reg_1, 1.0, 0.01);
}

TEST(QueryLoadModel, Validation) {
  QueryLoadModel bad;
  bad.reconfig_seconds_per_pass = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(ResourceModel, MultiBasePeTradesRegistersForColumns) {
  // [12]: more bases per element = more registers per element (state
  // replicates) but the shared datapath means LUTs grow slower than
  // columns served.
  PeFeatures b1 = kPaperPe;
  PeFeatures b4 = kPaperPe;
  b4.bases_per_pe = 4;
  // Registers grow much faster than LUTs: the column state replicates,
  // the datapath is shared.
  const double ff_ratio =
      static_cast<double>(pe_flipflops(b4)) / static_cast<double>(pe_flipflops(b1));
  const double lut_ratio = static_cast<double>(pe_luts(b4)) / static_cast<double>(pe_luts(b1));
  EXPECT_GT(ff_ratio, 2.0);
  EXPECT_LT(lut_ratio, 1.5);
  EXPECT_GT(ff_ratio, lut_ratio);
  // Columns of query served per device: multi-base wins on capacity...
  const std::size_t cols1 = max_elements(xc2vp70(), b1) * 1;
  const std::size_t cols4 = max_elements(xc2vp70(), b4) * 4;
  EXPECT_GT(cols4, cols1);
}

TEST(PerformanceModel, MultiBaseReducesToPlainAtOneBase) {
  const CyclePrediction a = predict_cycles(230, 5000, 32, true);
  const CyclePrediction b = predict_cycles_multibase(230, 5000, 32, 1, true);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.passes, b.passes);
}

TEST(PerformanceModel, MultiBaseTradesPassesForCycleRate) {
  // 4 bases per PE: 4x fewer passes for long queries, but 4x cycles per
  // pass — roughly a wash on throughput, the win is query capacity.
  const CyclePrediction plain = predict_cycles(800, 100'000, 100, false);
  const CyclePrediction multi = predict_cycles_multibase(800, 100'000, 100, 4, false);
  EXPECT_EQ(plain.passes, 8u);
  EXPECT_EQ(multi.passes, 2u);
  EXPECT_NEAR(static_cast<double>(multi.total_cycles) /
                  static_cast<double>(plain.total_cycles),
              1.0, 0.05);
  EXPECT_THROW((void)predict_cycles_multibase(1, 1, 0, 1, false), std::invalid_argument);
  EXPECT_THROW((void)predict_cycles_multibase(1, 1, 1, 0, false), std::invalid_argument);
}

TEST(PowerModel, ScalesWithAreaAndClock) {
  const ResourceEstimate small = estimate_resources(xc2vp70(), 25, kPaperPe);
  const ResourceEstimate large = estimate_resources(xc2vp70(), 150, kPaperPe);
  const PowerEstimate ps = estimate_power(small);
  const PowerEstimate pl = estimate_power(large);
  EXPECT_GT(pl.static_watts, ps.static_watts);
  EXPECT_GT(pl.dynamic_watts, ps.dynamic_watts);
  EXPECT_GT(pl.total_watts(), 0.0);
  // Energy of a fixed job: bigger array burns more watts but finishes
  // sooner; sanity-check the arithmetic only.
  EXPECT_DOUBLE_EQ(pl.job_joules(2.0), pl.total_watts() * 2.0);
}

TEST(ResourceModel, JbitsLoadingShrinksThePe) {
  PeFeatures jbits = kPaperPe;
  jbits.jbits_loading = true;
  EXPECT_LT(pe_flipflops(jbits), pe_flipflops(kPaperPe));
  EXPECT_LT(pe_luts(jbits), pe_luts(kPaperPe));
  EXPECT_GT(max_elements(xc2vp70(), jbits), max_elements(xc2vp70(), kPaperPe));
}

TEST(PerformanceModel, HeadlineShapeHolds) {
  // Paper §6 shape: a 100-element array at the modelled clock finishes the
  // 100 BP x 10 MBP job in well under a second, versus minutes in the
  // paper's software measurement.
  const ResourceEstimate e = estimate_resources(xc2vp70(), 100, kPaperPe);
  const CyclePrediction p = predict_cycles(100, 10'000'000, 100, true);
  const double secs = cycles_to_seconds(p.total_cycles, e.freq_mhz);
  EXPECT_LT(secs, 1.0);
  EXPECT_GT(secs, 0.01);
  // The paper's own software figure: 191.323 s on a P4 3 GHz. Our model's
  // speedup against that datum lands in the hundreds, like the reported
  // 246.9.
  const double paper_software_seconds = 191.323;
  const double speedup = paper_software_seconds / secs;
  EXPECT_GT(speedup, 100.0);
}

}  // namespace
