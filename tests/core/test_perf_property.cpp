// Property suite: the analytic cycle model against the measured simulator,
// over randomly drawn job shapes and both scheduling policies. The paper's
// table-3 extrapolations lean on predict_cycles; this is the evidence that
// the formula and the clocked model never drift apart — including
// multi-pass partitioning, narrow datapaths and the event scheduler.
#include <gtest/gtest.h>

#include <random>

#include "align/sw_linear.hpp"
#include "core/controller.hpp"
#include "core/performance_model.hpp"
#include "hw/sched.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::core;

const align::Scoring kSc = align::Scoring::paper_default();

struct JobShape {
  std::size_t m, n, npes;
  unsigned score_bits;
  bool charge_load;
  hw::SchedMode sched;
};

JobShape draw(std::mt19937& rng) {
  std::uniform_int_distribution<std::size_t> mlen(1, 96);
  std::uniform_int_distribution<std::size_t> nlen(1, 140);
  std::uniform_int_distribution<std::size_t> pes(1, 48);
  std::uniform_int_distribution<int> bits(0, 1);
  std::uniform_int_distribution<int> coin(0, 1);
  return JobShape{mlen(rng),
                  nlen(rng),
                  pes(rng),
                  bits(rng) == 0 ? 8u : 16u,
                  coin(rng) == 1,
                  coin(rng) == 1 ? hw::SchedMode::Event : hw::SchedMode::Dense};
}

TEST(PerfProperty, MeasuredCyclesMatchPredictionOnRandomShapes) {
  std::mt19937 rng(20260808);
  for (int trial = 0; trial < 60; ++trial) {
    const JobShape s = draw(rng);
    const seq::Sequence query = swr::test::random_dna(s.m, 1000 + trial * 2);
    const seq::Sequence db = swr::test::random_dna(s.n, 1001 + trial * 2);
    ArrayController<ScorePe> ctl(s.npes, s.score_bits, kSc, 8 << 20, s.charge_load,
                                 /*shuffle=*/false, s.sched);
    (void)ctl.run(query, db);
    const RunStats& st = ctl.run_stats();
    const CyclePrediction p = predict_cycles(s.m, s.n, s.npes, s.charge_load);
    const auto label = [&] {
      return "m=" + std::to_string(s.m) + " n=" + std::to_string(s.n) +
             " npes=" + std::to_string(s.npes) + " bits=" + std::to_string(s.score_bits) +
             " charge=" + std::to_string(s.charge_load) + " sched=" +
             hw::sched_mode_name(s.sched);
    }();
    EXPECT_EQ(st.passes, p.passes) << label;
    EXPECT_EQ(st.load_cycles, p.load_cycles) << label;
    EXPECT_EQ(st.compute_cycles, p.compute_cycles) << label;
    EXPECT_EQ(st.drain_cycles, p.drain_cycles) << label;
    EXPECT_EQ(st.total_cycles, p.total_cycles) << label;
  }
}

TEST(PerfProperty, MultiPassShapesAgreeAndScoresStayExact) {
  // Force heavy partitioning (m >> N) and check the score alongside the
  // cycle identity, both schedulers on the same drawn workload.
  std::mt19937 rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    std::uniform_int_distribution<std::size_t> mlen(40, 120);
    std::uniform_int_distribution<std::size_t> nlen(10, 80);
    std::uniform_int_distribution<std::size_t> pes(3, 16);
    const std::size_t m = mlen(rng), n = nlen(rng), npes = pes(rng);
    const seq::Sequence query = swr::test::random_dna(m, 2000 + trial);
    const seq::Sequence db = swr::test::random_dna(n, 2100 + trial);
    const align::LocalScoreResult oracle = align::sw_linear(db, query, kSc);
    const CyclePrediction p = predict_cycles(m, n, npes, true);
    ASSERT_GT(p.passes, 1u);
    for (const hw::SchedMode sched : {hw::SchedMode::Dense, hw::SchedMode::Event}) {
      ArrayController<ScorePe> ctl(npes, 16, kSc, 8 << 20, true, false, sched);
      EXPECT_EQ(ctl.run(query, db), oracle);
      EXPECT_EQ(ctl.run_stats().total_cycles, p.total_cycles)
          << "m=" << m << " n=" << n << " npes=" << npes << " sched="
          << hw::sched_mode_name(sched);
    }
  }
}

TEST(PerfProperty, EventActivityIsBoundedByWavefrontWidth) {
  // The event scheduler's total PE-evaluations must never exceed dense's,
  // and per compute cycle the active set is at most min(n, N) + 1 wide
  // (wavefront + advancing edge). Drawn shapes keep the bound honest.
  std::mt19937 rng(7);
  for (int trial = 0; trial < 12; ++trial) {
    std::uniform_int_distribution<std::size_t> mlen(1, 40);
    std::uniform_int_distribution<std::size_t> nlen(1, 60);
    std::uniform_int_distribution<std::size_t> pes(1, 40);
    const std::size_t m = mlen(rng), n = nlen(rng), npes = pes(rng);
    const seq::Sequence query = swr::test::random_dna(m, 3000 + trial);
    const seq::Sequence db = swr::test::random_dna(n, 3100 + trial);

    ArrayController<ScorePe> ctl(npes, 16, kSc, 8 << 20, true, false, hw::SchedMode::Event);
    std::size_t max_active = 0;
    ctl.set_observer([&](const SystolicArray<ScorePe>& arr, std::uint64_t) {
      std::size_t active = 0;
      for (std::size_t j = 0; j < arr.size(); ++j) {
        if (arr.evaluated_last_cycle(j)) ++active;
      }
      max_active = std::max(max_active, active);
    });
    (void)ctl.run(query, db);

    const std::uint64_t dense_evals =
        static_cast<std::uint64_t>(npes) * ctl.run_stats().total_cycles;
    EXPECT_LE(ctl.array().evaluations(), dense_evals);
    // DrainLoad clocks all N once per pass; every other phase obeys the
    // wavefront bound.
    EXPECT_LE(max_active, npes);
  }
}

}  // namespace
