// NUMA topology layer (core/topology.hpp): fake-spec parsing round-trips,
// malformed specs rejected with the named error, request parsing, auto
// resolution (including the single-node degrade that must never throw),
// the shared proportional-shares arithmetic, worker placement against
// asymmetric fake topologies, and the thread pin/name helpers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/topology.hpp"

namespace {

using namespace swr::core;

/// Scoped SWR_NUMA_FAKE override; restores the previous value on exit so
/// tests cannot leak topology into each other.
class FakeEnvGuard {
 public:
  explicit FakeEnvGuard(const char* value) {
    const char* prev = std::getenv("SWR_NUMA_FAKE");
    if (prev != nullptr) saved_ = prev;
    if (value != nullptr) {
      ::setenv("SWR_NUMA_FAKE", value, 1);
    } else {
      ::unsetenv("SWR_NUMA_FAKE");
    }
  }
  ~FakeEnvGuard() {
    if (saved_.has_value()) {
      ::setenv("SWR_NUMA_FAKE", saved_->c_str(), 1);
    } else {
      ::unsetenv("SWR_NUMA_FAKE");
    }
  }
  FakeEnvGuard(const FakeEnvGuard&) = delete;
  FakeEnvGuard& operator=(const FakeEnvGuard&) = delete;

 private:
  std::optional<std::string> saved_;
};

TEST(Topology, NxMSugarExpandsDense) {
  const Topology topo = parse_fake_topology("2x4");
  ASSERT_EQ(topo.node_count(), 2u);
  EXPECT_TRUE(topo.fake);
  EXPECT_TRUE(topo.multi_node());
  EXPECT_EQ(topo.total_cpus(), 8u);
  EXPECT_EQ(topo.nodes[0].id, 0u);
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<unsigned>{0, 1, 2, 3}));
  EXPECT_EQ(topo.nodes[1].id, 1u);
  EXPECT_EQ(topo.nodes[1].cpus, (std::vector<unsigned>{4, 5, 6, 7}));
}

TEST(Topology, CpulistFormParsesRangesAndSingles) {
  const Topology topo = parse_fake_topology("0-2,8/3-5");
  ASSERT_EQ(topo.node_count(), 2u);
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<unsigned>{0, 1, 2, 8}));
  EXPECT_EQ(topo.nodes[1].cpus, (std::vector<unsigned>{3, 4, 5}));
  EXPECT_EQ(topo.total_cpus(), 7u);
}

TEST(Topology, SpecRoundTrips) {
  for (const char* spec : {"2x4", "1x1", "4x2", "0-2,8/3-5", "0/1/2-3", "5,7,9/0-4"}) {
    const Topology a = parse_fake_topology(spec);
    const std::string canon = topology_spec(a);
    const Topology b = parse_fake_topology(canon);
    ASSERT_EQ(a.node_count(), b.node_count()) << spec;
    for (std::size_t n = 0; n < a.nodes.size(); ++n) {
      EXPECT_EQ(a.nodes[n].cpus, b.nodes[n].cpus) << spec << " node " << n;
    }
    // Canonical form is a fixed point.
    EXPECT_EQ(topology_spec(b), canon) << spec;
  }
}

TEST(Topology, MalformedSpecsThrowNamedError) {
  for (const char* bad : {"", "0x4", "2x0", "x4", "2x", "3-1/4", "0-2,/3", "0-2/", "/0-2",
                          "a-b/c", "0-2/2-4", "2x4x8", "0--2/3"}) {
    EXPECT_THROW(parse_fake_topology(bad), TopologyError) << "spec: \"" << bad << '"';
  }
}

TEST(Topology, ErrorMessageNamesTheSpec) {
  try {
    parse_fake_topology("0-2/2-4");
    FAIL() << "duplicate cpu accepted";
  } catch (const TopologyError& e) {
    EXPECT_NE(std::string(e.what()).find("0-2/2-4"), std::string::npos) << e.what();
  }
}

TEST(Topology, ProbeNeverThrowsAndCoversAllCpus) {
  const Topology topo = probe_system_topology();
  ASSERT_GE(topo.node_count(), 1u);
  EXPECT_FALSE(topo.fake);
  EXPECT_GE(topo.total_cpus(), 1u);
  for (const NumaNode& n : topo.nodes) EXPECT_FALSE(n.cpus.empty());
}

TEST(Topology, ParseNumaRequestModes) {
  EXPECT_EQ(parse_numa_request("off").mode, NumaMode::Off);
  EXPECT_EQ(parse_numa_request("auto").mode, NumaMode::Auto);
  EXPECT_EQ(parse_numa_request("").mode, NumaMode::Auto);
  const NumaRequest fake = parse_numa_request("fake:2x2");
  EXPECT_EQ(fake.mode, NumaMode::Fake);
  EXPECT_EQ(fake.fake_spec, "2x2");
  // Fake specs are validated eagerly: a bad CLI value fails at parse time.
  EXPECT_THROW(parse_numa_request("fake:2x0"), TopologyError);
  EXPECT_THROW(parse_numa_request("fake:"), TopologyError);
  EXPECT_THROW(parse_numa_request("on"), TopologyError);
  try {
    parse_numa_request("bogus");
    FAIL() << "unknown mode accepted";
  } catch (const TopologyError& e) {
    // The error lists the accepted choices.
    EXPECT_NE(std::string(e.what()).find(numa_mode_choices()), std::string::npos) << e.what();
  }
}

TEST(Topology, ModeNamesAreCanonical) {
  EXPECT_STREQ(numa_mode_name(NumaMode::Off), "off");
  EXPECT_STREQ(numa_mode_name(NumaMode::Auto), "auto");
  EXPECT_STREQ(numa_mode_name(NumaMode::Fake), "fake");
}

TEST(Topology, ResolveOffIsAlwaysDisabled) {
  const FakeEnvGuard env("2x2");  // even a multi-node override must not re-enable it
  NumaRequest req;
  req.mode = NumaMode::Off;
  EXPECT_FALSE(resolve_numa_topology(req).has_value());
}

TEST(Topology, ResolveFakeUsesTheSpec) {
  NumaRequest req;
  req.mode = NumaMode::Fake;
  req.fake_spec = "0-2,8/3-5";
  const std::optional<Topology> topo = resolve_numa_topology(req);
  ASSERT_TRUE(topo.has_value());
  EXPECT_TRUE(topo->fake);
  ASSERT_EQ(topo->node_count(), 2u);
  EXPECT_EQ(topo->nodes[0].cpus.size(), 4u);
  EXPECT_EQ(topo->nodes[1].cpus.size(), 3u);
}

TEST(Topology, AutoDegradesToDisabledOnSingleNode) {
  // A single-node topology (here forced via the env override) turns
  // placement off: auto warns once on stderr but never errors.
  const FakeEnvGuard env("1x8");
  NumaRequest req;
  req.mode = NumaMode::Auto;
  EXPECT_FALSE(resolve_numa_topology(req).has_value());
}

TEST(Topology, AutoActivatesOnMultiNode) {
  const FakeEnvGuard env("2x2");
  NumaRequest req;
  req.mode = NumaMode::Auto;
  const std::optional<Topology> topo = resolve_numa_topology(req);
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->node_count(), 2u);
}

TEST(Topology, MalformedEnvFallsBackInsteadOfThrowing) {
  // A bad ambient SWR_NUMA_FAKE must not kill a scan: auto warns and falls
  // back to the probe.
  const FakeEnvGuard env("2x0");
  NumaRequest req;
  req.mode = NumaMode::Auto;
  EXPECT_NO_THROW((void)resolve_numa_topology(req));
}

TEST(Topology, ProportionalSharesExactAndOrdered) {
  // Even split.
  EXPECT_EQ(proportional_shares(8, {4, 4}), (std::vector<std::size_t>{4, 4}));
  // Largest-remainder rounding, ties to the lower index: 10 over 3:1 is
  // 7.5/2.5 — both remainders .5, the extra unit lands on index 0.
  EXPECT_EQ(proportional_shares(10, {3, 1}), (std::vector<std::size_t>{8, 2}));
  // Fewer units than nodes: the heavier node wins.
  EXPECT_EQ(proportional_shares(1, {2, 6}), (std::vector<std::size_t>{0, 1}));
  // Zero total and zero weights stay well-defined.
  EXPECT_EQ(proportional_shares(0, {3, 5}), (std::vector<std::size_t>{0, 0}));
  EXPECT_EQ(proportional_shares(7, {0, 4}), (std::vector<std::size_t>{0, 7}));
  // Sum is always exact.
  const std::vector<std::size_t> shares = proportional_shares(13, {5, 3, 1});
  std::size_t sum = 0;
  for (const std::size_t s : shares) sum += s;
  EXPECT_EQ(sum, 13u);
}

TEST(Topology, PlaceWorkersProportionalNodeMajor) {
  const Topology topo = parse_fake_topology("0-5/6-7");  // 6-cpu and 2-cpu nodes
  const std::vector<WorkerPlacement> placed = place_workers(topo, 4);
  ASSERT_EQ(placed.size(), 4u);
  // 4 workers over 6:2 cpus -> 3 on node 0, 1 on node 1, node-major order.
  EXPECT_EQ(placed[0].node, 0u);
  EXPECT_EQ(placed[1].node, 0u);
  EXPECT_EQ(placed[2].node, 0u);
  EXPECT_EQ(placed[3].node, 1u);
  // Every worker's mask is its node's full cpu list.
  EXPECT_EQ(placed[0].cpus, topo.nodes[0].cpus);
  EXPECT_EQ(placed[3].cpus, topo.nodes[1].cpus);
}

TEST(Topology, PlaceWorkersFewerThanNodes) {
  const Topology topo = parse_fake_topology("2x4");
  const std::vector<WorkerPlacement> placed = place_workers(topo, 1);
  ASSERT_EQ(placed.size(), 1u);
  EXPECT_EQ(placed[0].node, 0u);  // ties to the lower index
}

TEST(Topology, PinAndNameAreBestEffortNoexcept) {
  // Run in a scratch thread so the test binary's main thread keeps its
  // affinity. Pinning to cpu 0 must succeed on any Linux box; a mask of
  // cpus the machine does not have reports failure instead of throwing.
  std::thread([] {
    set_current_thread_name("swr-topotest");
    EXPECT_TRUE(pin_current_thread({0}));
    EXPECT_FALSE(pin_current_thread({}));
    EXPECT_FALSE(pin_current_thread({4096, 4097}));
  }).join();
}

}  // namespace
