// The [12]-style multi-base (time-multiplexed) array against the software
// oracle and its analytic cycle model.
#include <gtest/gtest.h>

#include <tuple>

#include "align/sw_linear.hpp"
#include "core/multibase.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::core;

const align::Scoring kSc = align::Scoring::paper_default();

TEST(MultiBase, OneBasePerPeBehavesLikeThePlainArray) {
  const seq::Sequence q = swr::test::random_dna(12, 1);
  const seq::Sequence db = swr::test::random_dna(60, 2);
  MultiBaseController ctl(12, 1, 16, kSc, 1 << 20, true);
  EXPECT_EQ(ctl.run(q, db), align::sw_linear(db, q, kSc));
}

class MultiBaseEquivalence
    : public testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(MultiBaseEquivalence, MatchesSoftwareOracle) {
  const auto [m, n, npes, bases, seed] = GetParam();
  const seq::Sequence query = swr::test::random_dna(m, seed * 23 + 5);
  const seq::Sequence db = swr::test::random_dna(n, seed * 29 + 6);
  MultiBaseController ctl(npes, bases, 16, kSc, 4 << 20, true);
  EXPECT_EQ(ctl.run(query, db), align::sw_linear(db, query, kSc))
      << "m=" << m << " n=" << n << " npes=" << npes << " bases=" << bases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiBaseEquivalence,
    testing::Combine(testing::Values<std::size_t>(1, 7, 16, 23, 50),
                     testing::Values<std::size_t>(1, 11, 64),
                     testing::Values<std::size_t>(1, 3, 8),
                     testing::Values<std::size_t>(1, 2, 4),
                     testing::Values<std::uint64_t>(1, 2)));

TEST(MultiBase, MeasuredCyclesMatchAnalyticModel) {
  for (const auto& [m, n, npes, bases] :
       std::vector<std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>>{
           {8, 30, 4, 2}, {20, 50, 4, 3}, {50, 40, 8, 4}, {9, 25, 3, 3}}) {
    const seq::Sequence query = swr::test::random_dna(m, 70);
    const seq::Sequence db = swr::test::random_dna(n, 71);
    MultiBaseController ctl(npes, bases, 16, kSc, 4 << 20, true);
    (void)ctl.run(query, db);
    const RunStats& st = ctl.run_stats();
    const CyclePrediction p = predict_cycles_multibase(m, n, npes, bases, true);
    EXPECT_EQ(st.passes, p.passes) << m << " " << n << " " << npes << " " << bases;
    EXPECT_EQ(st.load_cycles, p.load_cycles);
    EXPECT_EQ(st.compute_cycles, p.compute_cycles);
    EXPECT_EQ(st.drain_cycles, p.drain_cycles);
    EXPECT_EQ(st.total_cycles, p.total_cycles);
  }
}

TEST(MultiBase, FewerPassesThanSingleBase) {
  // 8 PEs x 4 bases = 32 columns/pass: a 64-base query needs 2 passes
  // instead of 8.
  const seq::Sequence q = swr::test::random_dna(64, 80);
  const seq::Sequence db = swr::test::random_dna(100, 81);
  MultiBaseController multi(8, 4, 16, kSc, 1 << 20, true);
  (void)multi.run(q, db);
  EXPECT_EQ(multi.run_stats().passes, 2u);
}

TEST(MultiBase, PartitionedBoundaryReplayIsExact) {
  // Query far longer than one pass: boundary columns must chain exactly.
  const seq::Sequence q = swr::test::random_dna(70, 90);
  const seq::Sequence db = swr::test::random_dna(90, 91);
  MultiBaseController ctl(4, 4, 16, kSc, 1 << 20, true);  // 16 cols/pass -> 5 passes
  EXPECT_EQ(ctl.run(q, db), align::sw_linear(db, q, kSc));
  EXPECT_EQ(ctl.run_stats().passes, 5u);
}

TEST(MultiBase, Validation) {
  EXPECT_THROW(MultiBaseController(0, 2, 16, kSc, 1 << 20, true), std::invalid_argument);
  EXPECT_THROW(MultiBaseController(2, 0, 16, kSc, 1 << 20, true), std::invalid_argument);
  MultiBaseController ctl(2, 2, 16, kSc, 1 << 20, true);
  EXPECT_THROW((void)ctl.run(seq::Sequence::dna("AC"), seq::Sequence::protein("AR")),
               std::invalid_argument);
  EXPECT_EQ(ctl.run(seq::Sequence::dna(""), seq::Sequence::dna("ACG")).score, 0);
}

}  // namespace
