// Scheduler parity: the event-driven (activity-set) scheduler against the
// dense evaluate-all oracle, cycle by cycle on every architectural
// observation point — PE outputs, Bs/Bc/Cl registers, drain_out — plus
// results, RunStats and batch runs. Event mode earns its speedup by
// clocking fewer PEs; these tests pin down that it changes nothing the
// architecture can see.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "align/sw_linear.hpp"
#include "core/controller.hpp"
#include "hw/sched.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::core;

const align::Scoring kSc = align::Scoring::paper_default();

// One probed clock edge: everything the VCD tracer and the schedule tests
// can observe about the array, flattened for comparison.
struct CycleProbe {
  std::uint64_t cycle = 0;
  std::vector<align::Score> out_score;
  std::vector<seq::Code> out_base;
  std::vector<bool> out_valid;
  std::vector<align::Score> bs;
  std::vector<std::uint64_t> bc;
  std::vector<std::uint64_t> cl;
  align::Score drain_bs = 0;
  std::uint64_t drain_bc = 0;

  friend bool operator==(const CycleProbe&, const CycleProbe&) = default;
};

template <typename Pe>
CycleProbe probe(const SystolicArray<Pe>& arr, std::uint64_t cycle) {
  CycleProbe p;
  p.cycle = cycle;
  for (std::size_t j = 0; j < arr.size(); ++j) {
    const Pe& pe = arr.pe(j);
    p.out_score.push_back(pe.out().score);
    p.out_base.push_back(pe.out().base);
    p.out_valid.push_back(pe.out().valid);
    p.bs.push_back(pe.reg_bs());
    p.bc.push_back(pe.reg_bc());
    if constexpr (std::is_same_v<Pe, ScorePe>) p.cl.push_back(pe.reg_cl());
  }
  p.drain_bs = arr.drain_out().bs;
  p.drain_bc = arr.drain_out().bc;
  return p;
}

template <typename Pe, typename Scoring>
struct Trace {
  align::LocalScoreResult best;
  RunStats stats;
  std::uint64_t evaluations = 0;
  std::vector<CycleProbe> probes;
};

template <typename Pe, typename Scoring>
Trace<Pe, Scoring> run_traced(hw::SchedMode sched, const Scoring& sc, std::size_t npes,
                              const seq::Sequence& query, const seq::Sequence& db) {
  ArrayController<Pe> ctl(npes, 16, sc, 4 << 20, /*charge_query_load=*/true,
                          /*shuffle=*/false, sched);
  Trace<Pe, Scoring> t;
  ctl.set_observer([&t](const SystolicArray<Pe>& arr, std::uint64_t cycle) {
    t.probes.push_back(probe(arr, cycle));
  });
  t.best = ctl.run(query, db);
  t.stats = ctl.run_stats();
  t.evaluations = ctl.array().evaluations();
  return t;
}

class SchedParity
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(SchedParity, CycleStreamsAreBitIdentical) {
  const auto [m, n, npes] = GetParam();
  const seq::Sequence query = swr::test::random_dna(m, m * 31 + n);
  const seq::Sequence db = swr::test::random_dna(n, n * 37 + npes);

  const auto dense = run_traced<ScorePe>(hw::SchedMode::Dense, kSc, npes, query, db);
  const auto event = run_traced<ScorePe>(hw::SchedMode::Event, kSc, npes, query, db);

  EXPECT_EQ(dense.best, event.best);
  EXPECT_EQ(dense.best, align::sw_linear(db, query, kSc));
  EXPECT_EQ(dense.stats.total_cycles, event.stats.total_cycles);
  EXPECT_EQ(dense.stats.compute_cycles, event.stats.compute_cycles);
  EXPECT_EQ(dense.stats.drain_cycles, event.stats.drain_cycles);
  EXPECT_EQ(dense.stats.load_cycles, event.stats.load_cycles);
  EXPECT_EQ(dense.stats.passes, event.stats.passes);
  EXPECT_EQ(dense.stats.saturations, event.stats.saturations);

  ASSERT_EQ(dense.probes.size(), event.probes.size());
  for (std::size_t i = 0; i < dense.probes.size(); ++i) {
    ASSERT_EQ(dense.probes[i], event.probes[i]) << "cycle index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedParity,
    testing::Values(
        // (m query, n database, N array): single-pass, exact fit, multi-pass
        // with a partial tail, short streams (n < N, the event win case),
        // degenerate 1-PE and 1-base shapes.
        std::make_tuple<std::size_t, std::size_t, std::size_t>(5, 5, 5),
        std::make_tuple<std::size_t, std::size_t, std::size_t>(8, 40, 8),
        std::make_tuple<std::size_t, std::size_t, std::size_t>(23, 17, 8),
        std::make_tuple<std::size_t, std::size_t, std::size_t>(40, 3, 32),
        std::make_tuple<std::size_t, std::size_t, std::size_t>(7, 50, 16),
        std::make_tuple<std::size_t, std::size_t, std::size_t>(1, 12, 4),
        std::make_tuple<std::size_t, std::size_t, std::size_t>(12, 1, 4),
        std::make_tuple<std::size_t, std::size_t, std::size_t>(3, 9, 1),
        std::make_tuple<std::size_t, std::size_t, std::size_t>(64, 120, 16)));

TEST(SchedParity, AffineArrayMatchesToo) {
  align::AffineScoring sc;
  sc.match = 2;
  sc.mismatch = -1;
  sc.gap_open = -2;
  sc.gap_extend = -1;
  const seq::Sequence query = swr::test::random_dna(37, 401);
  const seq::Sequence db = swr::test::random_dna(90, 402);
  const auto dense = run_traced<AffinePe>(hw::SchedMode::Dense, sc, 16, query, db);
  const auto event = run_traced<AffinePe>(hw::SchedMode::Event, sc, 16, query, db);
  EXPECT_EQ(dense.best, event.best);
  EXPECT_EQ(dense.stats.total_cycles, event.stats.total_cycles);
  ASSERT_EQ(dense.probes.size(), event.probes.size());
  for (std::size_t i = 0; i < dense.probes.size(); ++i) {
    ASSERT_EQ(dense.probes[i], event.probes[i]) << "cycle index " << i;
  }
}

TEST(SchedParity, PackedBatchIsBitIdentical) {
  const seq::Sequence db = swr::test::random_dna(60, 410);
  std::vector<seq::Sequence> queries;
  for (std::size_t k = 0; k < 3; ++k) queries.push_back(swr::test::random_dna(6 + k, 411 + k));

  ArrayController<ScorePe> dense(24, 16, kSc, 1 << 20, true, false, hw::SchedMode::Dense);
  ArrayController<ScorePe> event(24, 16, kSc, 1 << 20, true, false, hw::SchedMode::Event);
  const auto dres = dense.run_batch(queries, db);
  const auto eres = event.run_batch(queries, db);
  ASSERT_EQ(dres.size(), eres.size());
  for (std::size_t k = 0; k < dres.size(); ++k) EXPECT_EQ(dres[k], eres[k]) << "query " << k;
  EXPECT_EQ(dense.run_stats().total_cycles, event.run_stats().total_cycles);
}

TEST(SchedParity, BackToBackJobsDoNotLeakSchedulerState) {
  // The event bookkeeping (active span, drain snapshot/cursor) must reset
  // with the array: replaying a job after a different one is identical.
  ArrayController<ScorePe> ctl(8, 16, kSc, 1 << 20, true, false, hw::SchedMode::Event);
  const seq::Sequence q1 = swr::test::random_dna(12, 420);
  const seq::Sequence d1 = swr::test::random_dna(40, 421);
  const seq::Sequence q2 = swr::test::random_dna(20, 422);
  const seq::Sequence d2 = swr::test::random_dna(5, 423);
  const align::LocalScoreResult first = ctl.run(q1, d1);
  const std::uint64_t cycles_first = ctl.run_stats().total_cycles;
  (void)ctl.run(q2, d2);
  EXPECT_EQ(ctl.run(q1, d1), first);
  EXPECT_EQ(ctl.run_stats().total_cycles, cycles_first);
}

TEST(SchedParity, EventDoesStrictlyLessWorkOnShortStreams) {
  // A 3-base stream through a 64-PE array keeps at most 3 PEs busy; the
  // event scheduler must clock far fewer PE-evaluations than dense while
  // the cycle COUNT (architectural time) stays identical.
  const seq::Sequence query = swr::test::random_dna(64, 430);
  const seq::Sequence db = swr::test::random_dna(3, 431);
  const auto dense = run_traced<ScorePe>(hw::SchedMode::Dense, kSc, 64, query, db);
  const auto event = run_traced<ScorePe>(hw::SchedMode::Event, kSc, 64, query, db);
  EXPECT_EQ(dense.stats.total_cycles, event.stats.total_cycles);
  EXPECT_LT(event.evaluations, dense.evaluations / 4);
}

TEST(SchedParity, SchedModeIsReported) {
  ArrayController<ScorePe> dense(4, 16, kSc, 1 << 20, true, false, hw::SchedMode::Dense);
  ArrayController<ScorePe> event(4, 16, kSc, 1 << 20, true, false, hw::SchedMode::Event);
  EXPECT_EQ(dense.sched_mode(), hw::SchedMode::Dense);
  EXPECT_EQ(event.sched_mode(), hw::SchedMode::Event);
}

TEST(SchedEnv, ParseAndNames) {
  EXPECT_EQ(hw::parse_sched_mode(""), std::nullopt);
  EXPECT_EQ(hw::parse_sched_mode("auto"), std::nullopt);
  EXPECT_EQ(hw::parse_sched_mode("dense"), hw::SchedMode::Dense);
  EXPECT_EQ(hw::parse_sched_mode("event"), hw::SchedMode::Event);
  EXPECT_THROW((void)hw::parse_sched_mode("bogus"), std::invalid_argument);
  EXPECT_STREQ(hw::sched_mode_name(hw::SchedMode::Dense), "dense");
  EXPECT_STREQ(hw::sched_mode_name(hw::SchedMode::Event), "event");
}

}  // namespace
