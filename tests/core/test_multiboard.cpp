#include <gtest/gtest.h>

#include "align/sw_linear.hpp"
#include "core/multiboard.hpp"
#include "seq/workload.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::core;

const align::Scoring kSc = align::Scoring::paper_default();

TEST(MaxAlignmentRows, Bound) {
  // match 1, gap -2: at most m + m/2 rows.
  EXPECT_EQ(max_alignment_rows(100, kSc), 150u);
  align::Scoring heavy = kSc;
  heavy.match = 4;
  heavy.gap = -1;
  EXPECT_EQ(max_alignment_rows(10, heavy), 50u);
}

TEST(MultiBoard, MatchesSingleBoardAcrossFleetSizes) {
  const seq::Sequence q = swr::test::random_dna(24, 5);
  const seq::Sequence db = swr::test::random_dna(2000, 6);
  const align::LocalScoreResult oracle = align::sw_linear(db, q, kSc);
  for (const std::size_t nb : {1u, 2u, 3u, 5u, 8u}) {
    BoardFleet fleet = make_board_fleet(xc2vp70(), nb, 24, kSc);
    const MultiBoardResult r = multiboard_run(fleet, q, db);
    EXPECT_EQ(r.best, oracle) << nb << " boards";
    EXPECT_EQ(r.board_jobs.size(), nb);
  }
}

TEST(MultiBoard, HitStraddlingASliceBoundaryIsStillFound) {
  // Plant the homolog right across the 2-board split point.
  const std::size_t db_len = 3000;
  seq::PlantedWorkloadSpec spec;
  spec.query_len = 80;
  spec.database_len = db_len;
  spec.plant_offset = db_len / 2 - 40;  // straddles the midpoint
  spec.plant_substitution_rate = 0.02;
  spec.seed = 8;
  const seq::PlantedWorkload wl = seq::make_planted_workload(spec);
  BoardFleet fleet = make_board_fleet(xc2vp70(), 2, 80, kSc);
  const MultiBoardResult r = multiboard_run(fleet, wl.query, wl.database);
  EXPECT_EQ(r.best, align::sw_linear(wl.database, wl.query, kSc));
  EXPECT_GE(r.best.end.i, wl.plant_begin);
  EXPECT_LE(r.best.end.i, wl.plant_end + 5);
}

TEST(MultiBoard, ParallelTimeIsMaxNotSum) {
  const seq::Sequence q = swr::test::random_dna(16, 9);
  const seq::Sequence db = swr::test::random_dna(4000, 10);
  BoardFleet fleet = make_board_fleet(xc2vp70(), 4, 16, kSc);
  const MultiBoardResult r = multiboard_run(fleet, q, db);
  double max_board = 0.0;
  double sum_board = 0.0;
  for (const JobResult& j : r.board_jobs) {
    max_board = std::max(max_board, j.seconds);
    sum_board += j.seconds;
  }
  EXPECT_DOUBLE_EQ(r.seconds, max_board);
  EXPECT_LT(r.seconds, sum_board);
  // Splitting the database shortens the (modelled) wall time.
  BoardFleet one = make_board_fleet(xc2vp70(), 1, 16, kSc);
  const MultiBoardResult single = multiboard_run(one, q, db);
  EXPECT_LT(r.seconds, single.seconds);
}

TEST(MultiBoard, MoreBoardsThanRowsDegradesGracefully) {
  const seq::Sequence q = swr::test::random_dna(4, 11);
  const seq::Sequence db = swr::test::random_dna(3, 12);
  BoardFleet fleet = make_board_fleet(xc2vp70(), 8, 4, kSc);
  const MultiBoardResult r = multiboard_run(fleet, q, db);
  EXPECT_EQ(r.best, align::sw_linear(db, q, kSc));
}

TEST(MultiBoard, EmptyInputsAndValidation) {
  BoardFleet fleet = make_board_fleet(xc2vp70(), 2, 8, kSc);
  EXPECT_EQ(multiboard_run(fleet, seq::Sequence::dna(""), seq::Sequence::dna("ACG")).best.score,
            0);
  BoardFleet empty;
  EXPECT_THROW((void)multiboard_run(empty, seq::Sequence::dna("A"), seq::Sequence::dna("A")),
               std::invalid_argument);
  EXPECT_THROW((void)make_board_fleet(xc2vp70(), 0, 8, kSc), std::invalid_argument);
  EXPECT_THROW(
      (void)multiboard_run(fleet, seq::Sequence::dna("AC"), seq::Sequence::protein("AR")),
      std::invalid_argument);
}

}  // namespace
