// The affine-gap PE/array extension against the Gotoh software oracle.
#include <gtest/gtest.h>

#include <tuple>

#include "align/gotoh.hpp"
#include "core/accelerator.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::core;

align::AffineScoring default_affine() {
  align::AffineScoring sc;
  sc.match = 2;
  sc.mismatch = -1;
  sc.gap_open = -2;
  sc.gap_extend = -1;
  return sc;
}

TEST(AffineController, SmallExample) {
  ArrayController<AffinePe> ctl(8, 16, default_affine(), 1 << 20, true, false);
  const seq::Sequence q = seq::Sequence::dna("ACGTCC");
  const seq::Sequence db = seq::Sequence::dna("ACGTACGT");
  const align::LocalScoreResult hw = ctl.run(q, db);
  EXPECT_EQ(hw, align::gotoh_local_score(db.codes(), q.codes(), default_affine()));
}

class AffineEquivalence
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t, std::uint64_t>> {
};

TEST_P(AffineEquivalence, MatchesGotohOracle) {
  const auto [m, n, npes, seed] = GetParam();
  const seq::Sequence query = swr::test::random_dna(m, seed * 13 + 3);
  const seq::Sequence db = swr::test::random_dna(n, seed * 17 + 4);
  ArrayController<AffinePe> ctl(npes, 16, default_affine(), 4 << 20, true, false);
  const align::LocalScoreResult hw = ctl.run(query, db);
  const align::LocalScoreResult sw =
      align::gotoh_local_score(db.codes(), query.codes(), default_affine());
  EXPECT_EQ(hw, sw) << "m=" << m << " n=" << n << " npes=" << npes;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AffineEquivalence,
    testing::Combine(testing::Values<std::size_t>(1, 4, 9, 16, 30),
                     testing::Values<std::size_t>(1, 10, 45, 100),
                     testing::Values<std::size_t>(1, 4, 8),
                     testing::Values<std::uint64_t>(1, 2)));

TEST(AffineController, PartitionedLongGapAcrossChunkBoundary) {
  // A deletion spanning the chunk boundary is the case that requires the
  // E-layer boundary values in SRAM: verify against Gotoh with a crafted
  // gap right at the boundary of a 4-PE array.
  align::AffineScoring sc;
  sc.match = 3;
  sc.mismatch = -3;
  sc.gap_open = -4;
  sc.gap_extend = -1;
  // query = ACGT|TGCA (chunks of 4), database missing nothing but the
  // alignment must carry E across column 4.
  const seq::Sequence q = seq::Sequence::dna("ACGTTGCA");
  const seq::Sequence db = seq::Sequence::dna("ACGTGGTTGCA");
  ArrayController<AffinePe> ctl(4, 16, sc, 1 << 20, true, false);
  EXPECT_EQ(ctl.run(q, db), align::gotoh_local_score(db.codes(), q.codes(), sc));
  EXPECT_EQ(ctl.run_stats().passes, 2u);
}

TEST(AffineController, ProteinBlosum62) {
  align::AffineScoring sc;
  sc.matrix = &align::blosum62();
  sc.gap_open = -10;
  sc.gap_extend = -1;
  const seq::Sequence q = swr::test::random_protein(24, 7);
  const seq::Sequence db = swr::test::random_protein(90, 8);
  ArrayController<AffinePe> ctl(10, 16, sc, 1 << 20, true, false);  // 3 passes
  EXPECT_EQ(ctl.run(q, db), align::gotoh_local_score(db.codes(), q.codes(), sc));
}

TEST(AffineAcceleratorFacade, UsesAffineResourceCosting) {
  AffineAccelerator acc(xc2vp70(), 50, default_affine());
  EXPECT_TRUE(acc.features().affine);
  // The affine PE is strictly bigger than the linear PE.
  const PeFeatures lin{16, 32, true, false};
  const PeFeatures aff{16, 32, true, true};
  EXPECT_GT(pe_flipflops(aff), pe_flipflops(lin));
  EXPECT_GT(pe_luts(aff), pe_luts(lin));
}

}  // namespace
