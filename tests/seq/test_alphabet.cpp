#include <gtest/gtest.h>

#include "seq/alphabet.hpp"

namespace {

using namespace swr::seq;

TEST(Alphabet, DnaCodesAreDense) {
  const Alphabet& ab = dna();
  EXPECT_EQ(ab.size(), 4u);
  EXPECT_EQ(ab.code('A'), 0);
  EXPECT_EQ(ab.code('C'), 1);
  EXPECT_EQ(ab.code('G'), 2);
  EXPECT_EQ(ab.code('T'), 3);
}

TEST(Alphabet, LowerCaseMapsLikeUpper) {
  const Alphabet& ab = dna();
  for (const char c : std::string("acgt")) {
    EXPECT_EQ(ab.code(c), ab.code(static_cast<char>(c - 'a' + 'A')));
  }
}

TEST(Alphabet, InvalidCharactersReturnSentinel) {
  const Alphabet& ab = dna();
  EXPECT_EQ(ab.code('N'), kInvalidCode);
  EXPECT_EQ(ab.code('x'), kInvalidCode);
  EXPECT_EQ(ab.code(' '), kInvalidCode);
  EXPECT_EQ(ab.code('\0'), kInvalidCode);
  EXPECT_FALSE(ab.contains('U'));
  EXPECT_TRUE(rna().contains('U'));
}

TEST(Alphabet, RoundTripLetterCode) {
  for (const Alphabet* ab : {&dna(), &rna(), &protein()}) {
    for (std::size_t i = 0; i < ab->size(); ++i) {
      const char letter = ab->letter(static_cast<Code>(i));
      EXPECT_EQ(ab->code(letter), static_cast<Code>(i));
    }
  }
}

TEST(Alphabet, LetterThrowsOnBadCode) {
  EXPECT_THROW((void)dna().letter(4), std::out_of_range);
  EXPECT_THROW((void)protein().letter(21), std::out_of_range);
}

TEST(Alphabet, ProteinHas21Letters) {
  EXPECT_EQ(protein().size(), 21u);
  EXPECT_EQ(protein().letters().front(), 'A');
  EXPECT_EQ(protein().letters().back(), 'X');
}

TEST(Alphabet, BitsPerCode) {
  EXPECT_EQ(dna().bits_per_code(), 2u);
  EXPECT_EQ(protein().bits_per_code(), 5u);
}

TEST(Alphabet, DuplicateLetterRejected) {
  EXPECT_THROW(Alphabet(AlphabetId::Dna, "ACGA"), std::invalid_argument);
}

TEST(Alphabet, LookupById) {
  EXPECT_EQ(&alphabet(AlphabetId::Dna), &dna());
  EXPECT_EQ(&alphabet(AlphabetId::Rna), &rna());
  EXPECT_EQ(&alphabet(AlphabetId::Protein), &protein());
}

TEST(DnaComplement, PairsAreInvolutions) {
  EXPECT_EQ(dna_complement(dna().code('A')), dna().code('T'));
  EXPECT_EQ(dna_complement(dna().code('C')), dna().code('G'));
  for (Code c = 0; c < 4; ++c) EXPECT_EQ(dna_complement(dna_complement(c)), c);
  EXPECT_THROW((void)dna_complement(4), std::out_of_range);
}

}  // namespace
