#include <gtest/gtest.h>

#include "seq/codon.hpp"

namespace {

using namespace swr::seq;

Code c(char x) { return dna().code(x); }

TEST(Codon, KnownTranslations) {
  const auto aa = [](char x) { return protein().code(x); };
  EXPECT_EQ(translate_codon(c('A'), c('T'), c('G')), aa('M'));  // start
  EXPECT_EQ(translate_codon(c('T'), c('G'), c('G')), aa('W'));
  EXPECT_EQ(translate_codon(c('A'), c('A'), c('A')), aa('K'));
  EXPECT_EQ(translate_codon(c('G'), c('G'), c('C')), aa('G'));
  EXPECT_EQ(translate_codon(c('T'), c('T'), c('T')), aa('F'));
  EXPECT_EQ(translate_codon(c('C'), c('A'), c('T')), aa('H'));
}

TEST(Codon, StopCodons) {
  EXPECT_TRUE(is_stop_codon(c('T'), c('A'), c('A')));
  EXPECT_TRUE(is_stop_codon(c('T'), c('A'), c('G')));
  EXPECT_TRUE(is_stop_codon(c('T'), c('G'), c('A')));
  EXPECT_FALSE(is_stop_codon(c('T'), c('G'), c('G')));
  // Stops render as X.
  EXPECT_EQ(translate_codon(c('T'), c('A'), c('A')), protein().code('X'));
}

TEST(Codon, EveryCodonTranslatesToAValidResidue) {
  int stops = 0;
  for (Code b1 = 0; b1 < 4; ++b1) {
    for (Code b2 = 0; b2 < 4; ++b2) {
      for (Code b3 = 0; b3 < 4; ++b3) {
        const Code aa = translate_codon(b1, b2, b3);
        EXPECT_LT(aa, protein().size());
        stops += is_stop_codon(b1, b2, b3) ? 1 : 0;
      }
    }
  }
  EXPECT_EQ(stops, 3);  // exactly TAA, TAG, TGA
}

TEST(Codon, RejectsBadCodes) {
  EXPECT_THROW((void)translate_codon(4, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)is_stop_codon(0, 0, 5), std::invalid_argument);
}

TEST(Translate, FramesAndPartialCodons) {
  // ATGGCT -> frame 0: MA; frame 1: WL? compute: TGG CT(partial) -> W.
  const Sequence s = Sequence::dna("ATGGCT", "g");
  EXPECT_EQ(translate(s, 0).to_string(), "MA");
  EXPECT_EQ(translate(s, 1).to_string(), "W");
  EXPECT_EQ(translate(s, 2).to_string(), "G");  // GGC + T(dropped)
  EXPECT_NE(translate(s, 0).name().find("frame 0"), std::string::npos);
}

TEST(Translate, ShortInputsGiveEmptyProtein) {
  EXPECT_TRUE(translate(Sequence::dna("AT"), 0).empty());
  EXPECT_TRUE(translate(Sequence::dna("ATG"), 1).empty());
  EXPECT_TRUE(translate(Sequence::dna(""), 0).empty());
}

TEST(Translate, Validation) {
  EXPECT_THROW((void)translate(Sequence::protein("AR"), 0), std::invalid_argument);
  EXPECT_THROW((void)translate(Sequence::dna("ATG"), 3), std::invalid_argument);
}

TEST(SixFrame, CoversBothStrands) {
  const Sequence s = Sequence::dna("ATGGCTTAA", "g");
  const auto frames = six_frame_translation(s);
  EXPECT_EQ(frames[0].to_string(), "MAX");  // ATG GCT TAA (stop -> X)
  // Reverse complement of ATGGCTTAA is TTAAGCCAT.
  EXPECT_EQ(frames[3].to_string(), "LSH");  // TTA AGC CAT
  for (const Sequence& f : frames) {
    EXPECT_EQ(f.alphabet().id(), AlphabetId::Protein);
  }
}

TEST(SixFrame, LengthAccounting) {
  const Sequence s = Sequence::dna("ACGTACGTACG");  // 11 bases
  const auto frames = six_frame_translation(s);
  EXPECT_EQ(frames[0].size(), 3u);
  EXPECT_EQ(frames[1].size(), 3u);
  EXPECT_EQ(frames[2].size(), 3u);
}

TEST(Orf, FindsSimpleForwardOrf) {
  // ATG AAA CCC TAA : one ORF, frame 0, 3 coding codons.
  const Sequence s = Sequence::dna("ATGAAACCCTAA");
  const auto orfs = find_orfs(s, 1);
  bool found = false;
  for (const OpenReadingFrame& o : orfs) {
    if (!o.reverse && o.frame == 0) {
      EXPECT_EQ(o.begin, 0u);
      EXPECT_EQ(o.end, 12u);
      EXPECT_EQ(o.codons(), 3u);
      EXPECT_EQ(orf_protein(s, o).to_string(), "MKP");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Orf, MinCodonsFilters) {
  const Sequence s = Sequence::dna("ATGAAACCCTAA");
  EXPECT_FALSE(find_orfs(s, 3).empty());
  for (const OpenReadingFrame& o : find_orfs(s, 4)) {
    EXPECT_TRUE(o.reverse || o.frame != 0) << "frame-0 forward ORF has only 3 codons";
  }
}

TEST(Orf, FindsReverseStrandOrf) {
  // Reverse complement of "TTACCCTTTCAT" is "ATGAAAGGGTAA": ORF on the
  // reverse strand.
  const Sequence s = Sequence::dna("TTACCCTTTCAT");
  const auto orfs = find_orfs(s, 1);
  bool found = false;
  for (const OpenReadingFrame& o : orfs) {
    if (o.reverse && o.frame == 0 && o.begin == 0) {
      EXPECT_EQ(orf_protein(s, o).to_string(), "MKG");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Orf, OffsetFrameOrf) {
  // One pad base shifts the ORF into frame 1.
  const Sequence s = Sequence::dna("CATGAAACCCTAAC");
  const auto orfs = find_orfs(s, 1);
  bool found = false;
  for (const OpenReadingFrame& o : orfs) {
    if (!o.reverse && o.frame == 1) {
      EXPECT_EQ(o.begin, 1u);
      EXPECT_EQ(orf_protein(s, o).to_string(), "MKP");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Orf, NoStartOrNoStopMeansNoOrf) {
  EXPECT_TRUE(find_orfs(Sequence::dna("ATGAAAACCC"), 1).empty() ||
              // reverse strand may contain accidental ORFs; restrict:
              [&] {
                for (const OpenReadingFrame& o : find_orfs(Sequence::dna("ATGAAAACCC"), 1)) {
                  if (!o.reverse) return false;  // forward ORF would be a bug (no stop)
                }
                return true;
              }());
  // Stops without a start.
  for (const OpenReadingFrame& o : find_orfs(Sequence::dna("CCCTAACCCTAG"), 1)) {
    EXPECT_TRUE(o.reverse);
  }
}

TEST(Orf, Validation) {
  EXPECT_THROW((void)find_orfs(Sequence::protein("AR"), 1), std::invalid_argument);
  EXPECT_THROW((void)find_orfs(Sequence::dna("ATG"), 0), std::invalid_argument);
  OpenReadingFrame bad;
  bad.begin = 0;
  bad.end = 100;
  EXPECT_THROW((void)orf_protein(Sequence::dna("ATGTAA"), bad), std::invalid_argument);
}

}  // namespace
