#include <gtest/gtest.h>

#include "seq/sequence.hpp"
#include "test_util.hpp"

namespace {

using namespace swr::seq;

TEST(Sequence, ParsesAndRoundTrips) {
  const Sequence s = Sequence::dna("ACGTacgt", "demo");
  EXPECT_EQ(s.size(), 8u);
  EXPECT_EQ(s.name(), "demo");
  EXPECT_EQ(s.to_string(), "ACGTACGT");
}

TEST(Sequence, RejectsInvalidCharacterWithPosition) {
  try {
    (void)Sequence::dna("ACGNX");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("position 3"), std::string::npos);
  }
}

TEST(Sequence, RejectsInvalidCode) {
  EXPECT_THROW(Sequence(dna(), std::vector<Code>{0, 1, 7}), std::invalid_argument);
}

TEST(Sequence, EmptySequence) {
  const Sequence s = Sequence::dna("");
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.to_string(), "");
  EXPECT_TRUE(s.reversed().empty());
}

TEST(Sequence, Subsequence) {
  const Sequence s = Sequence::dna("ACGTTGCA");
  EXPECT_EQ(s.subsequence(2, 3).to_string(), "GTT");
  EXPECT_EQ(s.subsequence(6, 100).to_string(), "CA");   // clamped length
  EXPECT_EQ(s.subsequence(100, 3).to_string(), "");     // clamped begin
  EXPECT_EQ(s.subsequence(0, s.size()).to_string(), s.to_string());
}

TEST(Sequence, Reversed) {
  const Sequence s = Sequence::dna("ACGT");
  EXPECT_EQ(s.reversed().to_string(), "TGCA");
  EXPECT_EQ(s.reversed().reversed(), s);
}

TEST(Sequence, Complement) {
  const Sequence s = Sequence::dna("AACGT");
  EXPECT_EQ(s.complemented().to_string(), "TTGCA");
  EXPECT_EQ(s.reverse_complemented().to_string(), "ACGTT");
  EXPECT_THROW((void)Sequence::protein("ARN").complemented(), std::logic_error);
}

TEST(Sequence, ReverseComplementIsInvolution) {
  const Sequence s = swr::test::random_dna(257, 7);
  EXPECT_EQ(s.reverse_complemented().reverse_complemented(), s);
}

TEST(Sequence, AppendChecksAlphabet) {
  Sequence s = Sequence::dna("AC");
  s.append(Sequence::dna("GT"));
  EXPECT_EQ(s.to_string(), "ACGT");
  EXPECT_THROW(s.append(Sequence::protein("AR")), std::invalid_argument);
}

TEST(Sequence, EqualityRequiresSameAlphabet) {
  // Same dense codes, different alphabets: A/C in DNA vs A/R in protein.
  const Sequence d(dna(), std::vector<Code>{0, 1});
  const Sequence p(protein(), std::vector<Code>{0, 1});
  EXPECT_FALSE(d == p);
}

TEST(Identity, CountsMatchingPositions) {
  EXPECT_DOUBLE_EQ(identity(Sequence::dna("ACGT"), Sequence::dna("ACGA")), 0.75);
  EXPECT_DOUBLE_EQ(identity(Sequence::dna(""), Sequence::dna("")), 1.0);
  EXPECT_THROW((void)identity(Sequence::dna("AC"), Sequence::dna("A")), std::invalid_argument);
}

}  // namespace
