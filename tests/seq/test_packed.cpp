#include <gtest/gtest.h>

#include "seq/packed.hpp"
#include "test_util.hpp"

namespace {

using namespace swr::seq;

TEST(PackedDna, RoundTripsArbitraryLengths) {
  // Cover every word-boundary case: 0..67 spans two 64-bit words.
  for (std::size_t n = 0; n <= 67; ++n) {
    const Sequence s = swr::test::random_dna(n, 1000 + n);
    const PackedDna p(s);
    ASSERT_EQ(p.size(), n);
    Sequence u = p.unpack();
    EXPECT_EQ(u.codes().size(), s.codes().size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(p[i], s[i]) << "position " << i << " length " << n;
    }
  }
}

TEST(PackedDna, FourBasesPerByte) {
  const Sequence s = swr::test::random_dna(1024, 3);
  const PackedDna p(s);
  EXPECT_LE(p.storage_bytes(), 1024u / 4 + 8);
}

TEST(PackedDna, PushBackMatchesBulkPack) {
  const Sequence s = swr::test::random_dna(129, 9);
  PackedDna p;
  for (std::size_t i = 0; i < s.size(); ++i) p.push_back(s[i]);
  EXPECT_EQ(p.unpack(), s);
}

TEST(PackedDna, AtChecksBounds) {
  PackedDna p(Sequence::dna("ACG"));
  EXPECT_EQ(p.at(2), dna().code('G'));
  EXPECT_THROW((void)p.at(3), std::out_of_range);
}

TEST(PackedDna, RejectsBadCodeAndNonDna) {
  PackedDna p;
  EXPECT_THROW(p.push_back(4), std::invalid_argument);
  EXPECT_THROW(PackedDna{Sequence::protein("AR")}, std::invalid_argument);
}

}  // namespace
