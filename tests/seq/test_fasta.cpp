#include <gtest/gtest.h>

#include <sstream>

#include "seq/fasta.hpp"
#include "test_util.hpp"

namespace {

using namespace swr::seq;

TEST(Fasta, ParsesMultiRecord) {
  std::istringstream in(">one first record\nACGT\nTTAA\n>two\nGG\n");
  const auto recs = read_fasta(in, dna());
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].name(), "one first record");
  EXPECT_EQ(recs[0].to_string(), "ACGTTTAA");
  EXPECT_EQ(recs[1].name(), "two");
  EXPECT_EQ(recs[1].to_string(), "GG");
}

TEST(Fasta, HandlesCrlfBlankAndCommentLines) {
  std::istringstream in(">r\r\n; legacy comment\r\nAC\r\n\r\nGT\r\n");
  const auto recs = read_fasta(in, dna());
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].to_string(), "ACGT");
}

TEST(Fasta, EmptyRecordAllowed) {
  std::istringstream in(">empty\n>full\nA\n");
  const auto recs = read_fasta(in, dna());
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_TRUE(recs[0].empty());
  EXPECT_EQ(recs[1].to_string(), "A");
}

TEST(Fasta, RejectsDataBeforeHeader) {
  std::istringstream in("ACGT\n");
  EXPECT_THROW((void)read_fasta(in, dna()), FastaError);
}

TEST(Fasta, RejectsInvalidResidueWithLineNumber) {
  std::istringstream in(">r\nACGT\nACNT\n");
  try {
    (void)read_fasta(in, dna());
    FAIL() << "expected FastaError";
  } catch (const FastaError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Fasta, InvalidResidueErrorNamesColumnAndRecord) {
  std::istringstream in(">chr1 assembly\nACGT\n  ACGNT\n");
  try {
    (void)read_fasta(in, dna());
    FAIL() << "expected FastaError";
  } catch (const FastaError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("column 6"), std::string::npos) << msg;  // 2 leading spaces, then "ACG", N

    EXPECT_NE(msg.find("'N'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("chr1 assembly"), std::string::npos) << msg;
  }
}

TEST(Fasta, InvalidControlByteIsHexEscaped) {
  std::istringstream in(">r\nAC\x01GT\n");
  try {
    (void)read_fasta(in, dna());
    FAIL() << "expected FastaError";
  } catch (const FastaError& e) {
    EXPECT_NE(std::string(e.what()).find("\\x01"), std::string::npos) << e.what();
  }
}

TEST(Fasta, LowercaseResiduesNormalized) {
  std::istringstream in(">soft\nacgtACGT\n>mixed\naCgT\n");
  const auto recs = read_fasta(in, dna());
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].to_string(), "ACGTACGT");
  EXPECT_EQ(recs[1].to_string(), "ACGT");
}

TEST(Fasta, LowercaseProteinNormalized) {
  std::istringstream in(">p\narndc\n");
  const auto recs = read_fasta(in, protein());
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].to_string(), "ARNDC");
}

TEST(Fasta, ClassicMacLineEndings) {
  std::istringstream in(">one\rACGT\rTTAA\r>two\rGG\r");
  const auto recs = read_fasta(in, dna());
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].name(), "one");
  EXPECT_EQ(recs[0].to_string(), "ACGTTTAA");
  EXPECT_EQ(recs[1].to_string(), "GG");
}

TEST(Fasta, MixedLineEndingsOneFile) {
  std::istringstream in(">a\r\nAC\rGT\n>b\nTT\r");
  const auto recs = read_fasta(in, dna());
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].to_string(), "ACGT");
  EXPECT_EQ(recs[1].to_string(), "TT");
}

TEST(Fasta, NoTrailingNewline) {
  std::istringstream in(">r\nACGT");
  const auto recs = read_fasta(in, dna());
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].to_string(), "ACGT");
}

TEST(Fasta, WriteWrapsLines) {
  std::ostringstream out;
  write_fasta(out, {Sequence::dna("ACGTACGTAC", "r")}, 4);
  EXPECT_EQ(out.str(), ">r\nACGT\nACGT\nAC\n");
}

TEST(Fasta, WriteNoWrap) {
  std::ostringstream out;
  write_fasta(out, {Sequence::dna("ACGTACGTAC", "r")}, 0);
  EXPECT_EQ(out.str(), ">r\nACGTACGTAC\n");
}

TEST(Fasta, RoundTripManyRecords) {
  std::vector<Sequence> recs;
  for (int k = 0; k < 8; ++k) {
    Sequence s = swr::test::random_dna(10 + 37 * static_cast<std::size_t>(k), 50 + k);
    s.set_name("rec" + std::to_string(k));
    recs.push_back(std::move(s));
  }
  std::ostringstream out;
  write_fasta(out, recs, 13);
  std::istringstream in(out.str());
  const auto back = read_fasta(in, dna());
  ASSERT_EQ(back.size(), recs.size());
  for (std::size_t k = 0; k < recs.size(); ++k) {
    EXPECT_EQ(back[k], recs[k]);
    EXPECT_EQ(back[k].name(), recs[k].name());
  }
}

TEST(Fasta, FileRoundTripAndMissingFile) {
  const std::string path = testing::TempDir() + "/swr_fasta_test.fa";
  write_fasta_file(path, {Sequence::dna("ACGT", "f")});
  const auto recs = read_fasta_file(path, dna());
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].to_string(), "ACGT");
  EXPECT_THROW((void)read_fasta_file("/nonexistent/nope.fa", dna()), FastaError);
}

TEST(Fasta, ProteinAlphabetSupported) {
  std::istringstream in(">p\nARNDC\n");
  const auto recs = read_fasta(in, protein());
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].to_string(), "ARNDC");
}

}  // namespace
