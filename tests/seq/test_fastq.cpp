#include <gtest/gtest.h>

#include <sstream>

#include "seq/fastq.hpp"
#include "test_util.hpp"

namespace {

using namespace swr::seq;

TEST(Fastq, ParsesWellFormedRecords) {
  std::istringstream in("@read1 extra\nACGT\n+\nIIII\n@read2\nGG\n+read2\n!~\n");
  const auto recs = read_fastq(in, dna());
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].sequence.name(), "read1 extra");
  EXPECT_EQ(recs[0].sequence.to_string(), "ACGT");
  EXPECT_EQ(recs[0].qualities, (std::vector<std::uint8_t>{40, 40, 40, 40}));
  EXPECT_EQ(recs[1].qualities, (std::vector<std::uint8_t>{0, 93}));
}

TEST(Fastq, MeanQuality) {
  std::istringstream in("@r\nAC\n+\n!I\n");
  const auto recs = read_fastq(in, dna());
  EXPECT_DOUBLE_EQ(recs[0].mean_quality(), 20.0);
  EXPECT_DOUBLE_EQ(FastqRecord{}.mean_quality(), 0.0);
}

TEST(Fastq, CrlfTolerated) {
  std::istringstream in("@r\r\nACGT\r\n+\r\nIIII\r\n");
  const auto recs = read_fastq(in, dna());
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].sequence.to_string(), "ACGT");
}

TEST(Fastq, RejectsMalformedInput) {
  {
    std::istringstream in("ACGT\n");
    EXPECT_THROW((void)read_fastq(in, dna()), FastqError);
  }
  {
    std::istringstream in("@r\nACGT\n+\n");  // truncated
    EXPECT_THROW((void)read_fastq(in, dna()), FastqError);
  }
  {
    std::istringstream in("@r\nACGT\nIIII\nIIII\n");  // missing '+'
    EXPECT_THROW((void)read_fastq(in, dna()), FastqError);
  }
  {
    std::istringstream in("@r\nACGT\n+\nII\n");  // length mismatch
    EXPECT_THROW((void)read_fastq(in, dna()), FastqError);
  }
  {
    std::istringstream in("@r\nACXT\n+\nIIII\n");  // bad residue
    EXPECT_THROW((void)read_fastq(in, dna()), FastqError);
  }
  {
    std::istringstream in(std::string("@r\nAC\n+\nI") + '\t' + "\n");  // bad quality char
    EXPECT_THROW((void)read_fastq(in, dna()), FastqError);
  }
}

TEST(Fastq, RoundTrip) {
  std::vector<FastqRecord> recs;
  for (int k = 0; k < 4; ++k) {
    FastqRecord r;
    r.sequence = swr::test::random_dna(20 + static_cast<std::size_t>(k) * 7, 900 + k);
    r.sequence.set_name("read" + std::to_string(k));
    for (std::size_t i = 0; i < r.sequence.size(); ++i) {
      r.qualities.push_back(static_cast<std::uint8_t>((i * 7 + k) % 94));
    }
    recs.push_back(std::move(r));
  }
  std::ostringstream out;
  write_fastq(out, recs);
  std::istringstream in(out.str());
  const auto back = read_fastq(in, dna());
  ASSERT_EQ(back.size(), recs.size());
  for (std::size_t k = 0; k < recs.size(); ++k) {
    EXPECT_EQ(back[k].sequence, recs[k].sequence);
    EXPECT_EQ(back[k].qualities, recs[k].qualities);
  }
}

TEST(Fastq, WriteValidation) {
  FastqRecord bad;
  bad.sequence = Sequence::dna("ACGT");
  bad.qualities = {1, 2};
  std::ostringstream out;
  EXPECT_THROW(write_fastq(out, {bad}), std::invalid_argument);
  bad.qualities = {1, 2, 3, 94};
  EXPECT_THROW(write_fastq(out, {bad}), std::invalid_argument);
}

TEST(Fastq, MissingFile) {
  EXPECT_THROW((void)read_fastq_file("/nonexistent/reads.fq", dna()), FastqError);
}

}  // namespace
