#include <gtest/gtest.h>

#include "align/sw_linear.hpp"
#include "seq/workload.hpp"

namespace {

using namespace swr;
using namespace swr::seq;

TEST(PlantedWorkload, GeneratesRequestedShape) {
  PlantedWorkloadSpec spec;
  spec.query_len = 80;
  spec.database_len = 5000;
  spec.plant_offset = 1234;
  spec.seed = 99;
  const PlantedWorkload wl = make_planted_workload(spec);
  EXPECT_EQ(wl.query.size(), 80u);
  EXPECT_EQ(wl.database.size(), 5000u);
  EXPECT_EQ(wl.plant_begin, 1234u);
  EXPECT_EQ(wl.plant_end, 1234u + 80u);
}

TEST(PlantedWorkload, PlantIsNearIdenticalToQuery) {
  PlantedWorkloadSpec spec;
  spec.query_len = 200;
  spec.database_len = 2000;
  spec.plant_offset = 700;
  spec.plant_substitution_rate = 0.05;
  const PlantedWorkload wl = make_planted_workload(spec);
  const Sequence planted = wl.database.subsequence(wl.plant_begin, wl.plant_end - wl.plant_begin);
  EXPECT_GT(identity(planted, wl.query), 0.88);
}

TEST(PlantedWorkload, BestLocalHitLandsOnThePlant) {
  // The ground-truth property the coordinate-reporting benches rely on.
  PlantedWorkloadSpec spec;
  spec.query_len = 100;
  spec.database_len = 20000;
  spec.plant_offset = 7777;
  spec.plant_substitution_rate = 0.04;
  spec.seed = 5;
  const PlantedWorkload wl = make_planted_workload(spec);
  const align::LocalScoreResult r =
      align::sw_linear(wl.database, wl.query, align::Scoring::paper_default());
  // End coordinate (db side) must fall inside the planted window.
  EXPECT_GE(r.end.i, wl.plant_begin);
  EXPECT_LE(r.end.i, wl.plant_end + 5);
  // Score must be close to a perfect match of the query.
  EXPECT_GT(r.score, static_cast<align::Score>(spec.query_len / 2));
}

TEST(PlantedWorkload, RejectsPlantOutsideDatabase) {
  PlantedWorkloadSpec spec;
  spec.query_len = 100;
  spec.database_len = 150;
  spec.plant_offset = 100;
  EXPECT_THROW((void)make_planted_workload(spec), std::invalid_argument);
}

TEST(PlantedWorkload, DeterministicForSeed) {
  PlantedWorkloadSpec spec;
  spec.seed = 77;
  spec.database_len = 3000;
  spec.plant_offset = 10;
  const PlantedWorkload a = make_planted_workload(spec);
  const PlantedWorkload b = make_planted_workload(spec);
  EXPECT_EQ(a.query, b.query);
  EXPECT_EQ(a.database, b.database);
}

TEST(HomologPair, SharesAncestry) {
  MutationModel mm;
  mm.substitution_rate = 0.03;
  mm.insertion_rate = 0.01;
  mm.deletion_rate = 0.01;
  const HomologPair pair = make_homolog_pair(4000, mm, 31);
  // Both near 4000 long and highly alignable.
  EXPECT_NEAR(static_cast<double>(pair.a.size()), 4000.0, 200.0);
  EXPECT_NEAR(static_cast<double>(pair.b.size()), 4000.0, 200.0);
  const align::LocalScoreResult r =
      align::sw_linear(pair.a, pair.b, align::Scoring::paper_default());
  EXPECT_GT(r.score, 2000);  // unrelated 4k sequences score far below this
}

}  // namespace
