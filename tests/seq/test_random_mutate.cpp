#include <gtest/gtest.h>

#include "seq/mutate.hpp"
#include "seq/random.hpp"
#include "seq/sequence.hpp"

namespace {

using namespace swr::seq;

TEST(RandomSequence, DeterministicForSeed) {
  RandomSequenceGenerator g1(123);
  RandomSequenceGenerator g2(123);
  EXPECT_EQ(g1.uniform(dna(), 500), g2.uniform(dna(), 500));
}

TEST(RandomSequence, DifferentSeedsDiffer) {
  RandomSequenceGenerator g1(1);
  RandomSequenceGenerator g2(2);
  EXPECT_FALSE(g1.uniform(dna(), 500) == g2.uniform(dna(), 500));
}

TEST(RandomSequence, UniformCoversAlphabet) {
  RandomSequenceGenerator g(7);
  const Sequence s = g.uniform(dna(), 4000);
  std::size_t counts[4] = {0, 0, 0, 0};
  for (std::size_t i = 0; i < s.size(); ++i) ++counts[s[i]];
  for (const std::size_t c : counts) {
    EXPECT_GT(c, 800u);  // ~1000 expected; generous band
    EXPECT_LT(c, 1200u);
  }
}

TEST(RandomSequence, GcContentIsRespected) {
  RandomSequenceGenerator g(11);
  const Sequence s = g.dna_with_gc(20000, 0.7);
  std::size_t gc = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = dna().letter(s[i]);
    gc += (c == 'G' || c == 'C') ? 1 : 0;
  }
  const double frac = static_cast<double>(gc) / static_cast<double>(s.size());
  EXPECT_NEAR(frac, 0.7, 0.02);
  EXPECT_THROW((void)g.dna_with_gc(10, 1.5), std::invalid_argument);
}

TEST(Mutate, ZeroRatesAreIdentity) {
  std::mt19937_64 rng(5);
  const Sequence s = Sequence::dna("ACGTACGTTT");
  EXPECT_EQ(mutate(s, MutationModel{}, rng), s);
}

TEST(Mutate, SubstitutionRateOneChangesEveryBase) {
  std::mt19937_64 rng(5);
  const Sequence s = Sequence::dna("ACGTACGTACGTACGT");
  const Sequence m = point_mutate(s, 1.0, rng);
  ASSERT_EQ(m.size(), s.size());
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_NE(m[i], s[i]);
}

TEST(Mutate, SubstitutionRateRoughlyHolds) {
  std::mt19937_64 rng(17);
  RandomSequenceGenerator g(18);
  const Sequence s = g.uniform(dna(), 20000);
  const Sequence m = point_mutate(s, 0.1, rng);
  EXPECT_NEAR(identity(s, m), 0.9, 0.01);
}

TEST(Mutate, DeletionShortens) {
  std::mt19937_64 rng(3);
  RandomSequenceGenerator g(4);
  const Sequence s = g.uniform(dna(), 10000);
  MutationModel mm;
  mm.deletion_rate = 0.2;
  const Sequence m = mutate(s, mm, rng);
  EXPECT_NEAR(static_cast<double>(m.size()), 8000.0, 300.0);
}

TEST(Mutate, InsertionLengthens) {
  std::mt19937_64 rng(3);
  RandomSequenceGenerator g(4);
  const Sequence s = g.uniform(dna(), 10000);
  MutationModel mm;
  mm.insertion_rate = 0.2;
  const Sequence m = mutate(s, mm, rng);
  EXPECT_NEAR(static_cast<double>(m.size()), 12000.0, 300.0);
}

TEST(Mutate, ValidatesRates) {
  MutationModel mm;
  mm.substitution_rate = 0.7;
  mm.insertion_rate = 0.4;
  EXPECT_THROW(mm.validate(), std::invalid_argument);
  mm = MutationModel{};
  mm.deletion_rate = -0.1;
  EXPECT_THROW(mm.validate(), std::invalid_argument);
}

}  // namespace
