#include <gtest/gtest.h>

#include "seq/complexity.hpp"
#include "seq/random.hpp"
#include "test_util.hpp"

namespace {

using namespace swr::seq;

TEST(Dust, HomopolymerScoresHigh) {
  const Sequence poly_a = Sequence::dna(std::string(64, 'A'));
  // All 62 triplets identical: sum = 62*61/2, normalised by 61 -> 31.
  EXPECT_NEAR(dust_score(poly_a, 0, 64), 31.0, 1e-9);
}

TEST(Dust, RandomDnaScoresNearOne) {
  const Sequence r = swr::test::random_dna(2000, 5);
  double total = 0.0;
  int windows = 0;
  for (std::size_t p = 0; p + 64 <= r.size(); p += 64) {
    total += dust_score(r, p, 64);
    ++windows;
  }
  // Expected for uniform random: ~C(62,2)/64/61 ~ 0.48.
  EXPECT_NEAR(total / windows, 0.48, 0.2);
}

TEST(Dust, DinucleotideRepeatScoresHigh) {
  std::string at;
  for (int k = 0; k < 32; ++k) at += "AT";
  EXPECT_GT(dust_score(Sequence::dna(at), 0, 64), 10.0);
}

TEST(Dust, Validation) {
  const Sequence s = Sequence::dna("ACGT");
  EXPECT_THROW((void)dust_score(s, 0, 2), std::invalid_argument);
  EXPECT_THROW((void)dust_score(s, 2, 3), std::invalid_argument);
  EXPECT_THROW((void)dust_score(Sequence::protein("ARNDA"), 0, 3), std::invalid_argument);
}

TEST(FindLowComplexity, MasksThePlantedRepeat) {
  RandomSequenceGenerator gen(9);
  Sequence s = gen.uniform(dna(), 1000);
  const std::size_t at = s.size();
  s.append(Sequence::dna(std::string(200, 'A')));
  s.append(gen.uniform(dna(), 1000));

  const auto masks = find_low_complexity(s);
  ASSERT_FALSE(masks.empty());
  bool covered = false;
  for (const MaskedInterval& iv : masks) {
    if (iv.begin <= at + 20 && iv.end >= at + 180) covered = true;
  }
  EXPECT_TRUE(covered);
  // Random flanks mostly unmasked.
  EXPECT_LT(masked_fraction(masks, s.size()), 0.25);
}

TEST(FindLowComplexity, CleanRandomSequenceIsUnmasked) {
  const Sequence r = swr::test::random_dna(5000, 11);
  EXPECT_TRUE(find_low_complexity(r).empty());
}

TEST(FindLowComplexity, AdjacentWindowsMerge) {
  Sequence s = Sequence::dna(std::string(300, 'G'));
  const auto masks = find_low_complexity(s);
  ASSERT_EQ(masks.size(), 1u);
  EXPECT_EQ(masks[0].begin, 0u);
  EXPECT_EQ(masks[0].end, 300u);
  EXPECT_DOUBLE_EQ(masked_fraction(masks, 300), 1.0);
}

TEST(FindLowComplexity, ShortAndEmptyInputs) {
  EXPECT_TRUE(find_low_complexity(Sequence::dna("AC")).empty());
  EXPECT_TRUE(find_low_complexity(Sequence::dna("")).empty());
  EXPECT_DOUBLE_EQ(masked_fraction({}, 0), 0.0);
}

TEST(FindLowComplexity, Validation) {
  EXPECT_THROW((void)find_low_complexity(Sequence::dna("ACGT"), 2), std::invalid_argument);
  EXPECT_THROW((void)find_low_complexity(Sequence::dna("ACGT"), 64, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)find_low_complexity(Sequence::protein("ARND")), std::invalid_argument);
}

}  // namespace
