// Cross-engine fuzz: the library's central invariant, hammered.
//
// For a batch of randomized workloads (sizes, seeds, scoring schemes,
// array widths, thread counts), every engine that claims to compute the
// best local score + canonical coordinates must agree exactly:
//
//   sw_full  (quadratic oracle)
//   sw_linear
//   sw_linear_profiled
//   wavefront_sw
//   ArrayController<ScorePe>  (cycle-accurate hardware model)
//   multiboard_run            (partitioned fleet)
//
// and the affine pair gotoh_local_score == ArrayController<AffinePe>.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "align/banded.hpp"
#include "align/gotoh.hpp"
#include "align/sw_antidiag.hpp"
#include "align/sw_antidiag8.hpp"
#include "align/sw_full.hpp"
#include "align/sw_interseq.hpp"
#include "align/sw_linear.hpp"
#include "align/sw_profile.hpp"
#include "align/sw_striped.hpp"
#include "core/accelerator.hpp"
#include "core/cpu_features.hpp"
#include "core/multibase.hpp"
#include "core/multiboard.hpp"
#include "host/batch.hpp"
#include "host/scan_engine.hpp"
#include "par/wavefront.hpp"
#include "seq/random.hpp"

namespace {

using namespace swr;

struct FuzzCase {
  std::size_t m;         // db rows
  std::size_t n;         // query cols
  align::Scoring sc;
  std::size_t npes;
  std::size_t threads;
  std::size_t boards;
  std::uint64_t seed;
};

FuzzCase draw_case(std::mt19937_64& rng) {
  std::uniform_int_distribution<std::size_t> msize(1, 220);
  std::uniform_int_distribution<std::size_t> nsize(1, 70);
  std::uniform_int_distribution<int> match(1, 5);
  std::uniform_int_distribution<int> mism(-5, 0);
  std::uniform_int_distribution<int> gap(-6, -1);
  std::uniform_int_distribution<std::size_t> pes(1, 24);
  std::uniform_int_distribution<std::size_t> thr(1, 4);
  std::uniform_int_distribution<std::size_t> brd(1, 4);
  FuzzCase c;
  c.m = msize(rng);
  c.n = nsize(rng);
  c.sc.match = match(rng);
  c.sc.mismatch = std::min(mism(rng), c.sc.match - 1);
  c.sc.gap = gap(rng);
  c.npes = pes(rng);
  c.threads = thr(rng);
  c.boards = brd(rng);
  c.seed = rng();
  return c;
}

class CrossEngineFuzz : public testing::TestWithParam<int> {};

TEST_P(CrossEngineFuzz, AllEnginesAgree) {
  std::mt19937_64 rng(0xF00D + static_cast<unsigned>(GetParam()));
  for (int iter = 0; iter < 8; ++iter) {
    const FuzzCase c = draw_case(rng);
    seq::RandomSequenceGenerator gen(c.seed);
    const seq::Sequence db = gen.uniform(seq::dna(), c.m);
    const seq::Sequence query = gen.uniform(seq::dna(), c.n);

    const align::LocalScoreResult oracle = align::sw_best(align::sw_matrix(db, query, c.sc));
    const std::string ctx = "case m=" + std::to_string(c.m) + " n=" + std::to_string(c.n) +
                            " match=" + std::to_string(c.sc.match) +
                            " mism=" + std::to_string(c.sc.mismatch) +
                            " gap=" + std::to_string(c.sc.gap) +
                            " pes=" + std::to_string(c.npes) + " seed=" + std::to_string(c.seed);

    EXPECT_EQ(align::sw_linear(db, query, c.sc), oracle) << "sw_linear " << ctx;
    EXPECT_EQ(align::sw_linear_profiled(db, query, c.sc), oracle) << "profiled " << ctx;
    EXPECT_EQ(align::sw_linear_antidiag(db, query, c.sc), oracle) << "antidiag " << ctx;

    par::WavefrontConfig wf;
    wf.threads = c.threads;
    wf.row_block = 1 + c.m / 3;
    EXPECT_EQ(par::wavefront_sw(db, query, c.sc, wf), oracle) << "wavefront " << ctx;

    core::ArrayController<core::ScorePe> ctl(c.npes, 16, c.sc, 8u << 20, true, false);
    EXPECT_EQ(ctl.run(query, db), oracle) << "systolic " << ctx;

    core::BoardFleet fleet = core::make_board_fleet(core::xc2vp70(), c.boards,
                                                    std::min<std::size_t>(c.n, 150) + 1, c.sc);
    EXPECT_EQ(core::multiboard_run(fleet, query, db).best, oracle) << "multiboard " << ctx;

    core::MultiBaseController mb(std::max<std::size_t>(c.npes / 2, 1), 1 + c.seed % 4, 16, c.sc,
                                 8u << 20, true);
    EXPECT_EQ(mb.run(query, db), oracle) << "multibase " << ctx;
  }
}

TEST_P(CrossEngineFuzz, AffineEnginesAgree) {
  std::mt19937_64 rng(0xBEEF + static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<std::size_t> msize(1, 150);
  std::uniform_int_distribution<std::size_t> nsize(1, 50);
  std::uniform_int_distribution<int> open(-6, 0);
  std::uniform_int_distribution<int> ext(-4, -1);
  std::uniform_int_distribution<std::size_t> pes(1, 16);
  for (int iter = 0; iter < 6; ++iter) {
    align::AffineScoring sc;
    sc.match = 2;
    sc.mismatch = -1;
    sc.gap_open = open(rng);
    sc.gap_extend = ext(rng);
    const std::size_t m = msize(rng);
    const std::size_t n = nsize(rng);
    const std::size_t npes = pes(rng);
    seq::RandomSequenceGenerator gen(rng());
    const seq::Sequence db = gen.uniform(seq::dna(), m);
    const seq::Sequence query = gen.uniform(seq::dna(), n);

    const align::LocalScoreResult oracle =
        align::gotoh_local_score(db.codes(), query.codes(), sc);
    core::ArrayController<core::AffinePe> ctl(npes, 16, sc, 8u << 20, true, false);
    EXPECT_EQ(ctl.run(query, db), oracle)
        << "affine m=" << m << " n=" << n << " npes=" << npes << " open=" << sc.gap_open
        << " ext=" << sc.gap_extend;
  }
}

INSTANTIATE_TEST_SUITE_P(Batches, CrossEngineFuzz, testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Degenerate-input sweep: the inputs randomized fuzzing almost never draws —
// empty and 1-residue sequences, single-letter and two-letter "alphabets",
// all-same runs long enough to saturate 8-bit SWAR lanes. Every engine must
// still agree bit-for-bit with the quadratic oracle.
// ---------------------------------------------------------------------------

std::string repeat(char c, std::size_t n) { return std::string(n, c); }

std::string alternate(const char* two, std::size_t n) {
  std::string s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) s += two[i % 2];
  return s;
}

// The deterministic degenerate menagerie (DNA).
std::vector<seq::Sequence> degenerate_dna() {
  return {
      seq::Sequence::dna("", "empty"),
      seq::Sequence::dna("A", "one"),
      seq::Sequence::dna("G", "one_other"),
      seq::Sequence::dna(repeat('A', 7), "same7"),
      seq::Sequence::dna(repeat('A', 64), "same64"),
      seq::Sequence::dna(repeat('C', 300), "same300"),  // 255-straddler at match=1
      seq::Sequence::dna(alternate("AC", 33), "alt33"),
      seq::Sequence::dna(alternate("GT", 48), "alt48"),
      seq::Sequence::dna("ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT", "period4"),
  };
}

// Striped lane widths this machine can execute (empty off x86).
std::vector<unsigned> striped_lane_widths() {
  std::vector<unsigned> widths;
  if (core::cpu_supports(core::SimdIsa::Sse41)) widths.push_back(16);
  if (core::cpu_supports(core::SimdIsa::Avx2)) widths.push_back(32);
  return widths;
}

void check_all_engines(const seq::Sequence& db, const seq::Sequence& query,
                       const align::Scoring& sc, const std::string& ctx) {
  const align::LocalScoreResult oracle = align::sw_best(align::sw_matrix(db, query, sc));

  EXPECT_EQ(align::sw_linear(db, query, sc), oracle) << "sw_linear " << ctx;
  EXPECT_EQ(align::sw_linear_profiled(db, query, sc), oracle) << "profiled " << ctx;
  EXPECT_EQ(align::sw_linear_antidiag(db, query, sc), oracle) << "swar16 " << ctx;
  EXPECT_EQ(align::sw_linear_antidiag8(db, query, sc), oracle) << "swar8 " << ctx;
  for (const unsigned lanes : striped_lane_widths()) {
    EXPECT_EQ(align::sw_linear_striped(db, query, sc, lanes), oracle)
        << "striped" << lanes << " " << ctx;
    // Inter-sequence kernel, one-record batch: exact when the score fits
    // the 8-bit lanes, a declared fallback (inner nullopt) when not.
    const auto batch = align::sw_interseq_batch({db}, query, sc, lanes);
    if (batch.has_value()) {
      ASSERT_EQ(batch->size(), 1u) << "interseq" << lanes << " " << ctx;
      if (oracle.score > 255) {
        EXPECT_FALSE((*batch)[0].has_value()) << "interseq" << lanes << " " << ctx;
      } else {
        ASSERT_TRUE((*batch)[0].has_value()) << "interseq" << lanes << " " << ctx;
        EXPECT_EQ(*(*batch)[0], oracle) << "interseq" << lanes << " " << ctx;
      }
    }
  }

  // A band wide enough to cover any divergence makes banded_sw exact.
  const std::size_t full_band = db.size() + query.size() + 1;
  EXPECT_EQ(align::banded_sw(db.codes(), query.codes(), full_band, sc), oracle)
      << "banded " << ctx;

  core::ArrayController<core::ScorePe> ctl(5, 16, sc, 8u << 20, true, false);
  EXPECT_EQ(ctl.run(query, db), oracle) << "systolic " << ctx;

  // Long queries are partitioned across boards; size the fleet so each
  // board's slice fits the xc2vp70 PE budget.
  const std::size_t boards = 2 + query.size() / 100;
  core::BoardFleet fleet =
      core::make_board_fleet(core::xc2vp70(), boards, query.size() / boards + 2, sc);
  EXPECT_EQ(core::multiboard_run(fleet, query, db).best, oracle) << "multiboard " << ctx;
}

TEST(CrossEngineDegenerate, DnaSweepAllEnginesAgree) {
  const std::vector<seq::Sequence> pool = degenerate_dna();
  const std::vector<align::Scoring> schemes = [] {
    align::Scoring a;  // paper-style
    a.match = 1; a.mismatch = -1; a.gap = -2;
    align::Scoring b;  // large magnitudes: saturates 8-bit lanes quickly
    b.match = 5; b.mismatch = -4; b.gap = -6;
    align::Scoring c;  // free mismatch: maximal ties, stress tie-breaking
    c.match = 2; c.mismatch = 0; c.gap = -1;
    return std::vector<align::Scoring>{a, b, c};
  }();

  for (const align::Scoring& sc : schemes) {
    for (const seq::Sequence& db : pool) {
      for (const seq::Sequence& query : pool) {
        const std::string ctx = "db=" + db.name() + " q=" + query.name() +
                                " match=" + std::to_string(sc.match) +
                                " mism=" + std::to_string(sc.mismatch) +
                                " gap=" + std::to_string(sc.gap);
        check_all_engines(db, query, sc, ctx);
      }
    }
  }
}

TEST(CrossEngineDegenerate, SingleLetterProteinAgrees) {
  // A one-letter "protein alphabet": every comparison is pure match/gap
  // structure, and the wider code space must not perturb any engine.
  align::Scoring sc;
  sc.match = 3;
  sc.mismatch = -2;
  sc.gap = -4;
  const std::vector<seq::Sequence> pool = {
      seq::Sequence::protein("", "empty"),
      seq::Sequence::protein("W", "one"),
      seq::Sequence::protein(repeat('W', 19), "same19"),
      seq::Sequence::protein(repeat('L', 90), "same90"),  // 270 > 255 at match=3
      seq::Sequence::protein(alternate("WL", 25), "alt25"),
  };
  for (const seq::Sequence& db : pool) {
    for (const seq::Sequence& query : pool) {
      check_all_engines(db, query, sc, "protein db=" + db.name() + " q=" + query.name());
    }
  }
}

// The 8-bit SWAR saturation boundary, pinned exactly: identical all-same
// sequences score length*match, so lengths around 255/match straddle the
// lane range. sw_antidiag8_try must return a value iff the true score
// fits 255 (255 itself included), and that value must be exact.
TEST(CrossEngineDegenerate, Swar8SaturationBoundaryExact) {
  struct Case {
    int match;
    std::size_t len;
  };
  const std::vector<Case> cases = {
      {5, 50}, {5, 51}, {5, 52},             // 250 | 255 | 260
      {3, 84}, {3, 85}, {3, 86},             // 252 | 255 | 258
      {1, 254}, {1, 255}, {1, 256}, {1, 300} // straddle at unit score
  };
  for (const Case& c : cases) {
    align::Scoring sc;
    sc.match = c.match;
    sc.mismatch = -c.match;
    sc.gap = -c.match - 1;
    const seq::Sequence s = seq::Sequence::dna(repeat('A', c.len), "sat");
    const align::LocalScoreResult oracle = align::sw_best(align::sw_matrix(s, s, sc));
    ASSERT_EQ(oracle.score, static_cast<align::Score>(c.match * static_cast<int>(c.len)));

    align::Antidiag8Workspace ws;
    const std::optional<align::LocalScoreResult> attempt =
        align::sw_antidiag8_try(s.codes(), s.codes(), sc, ws);
    const std::string ctx = "match=" + std::to_string(c.match) + " len=" + std::to_string(c.len);
    if (oracle.score <= 255) {
      ASSERT_TRUE(attempt.has_value()) << ctx;
      EXPECT_EQ(*attempt, oracle) << ctx;
    } else {
      EXPECT_FALSE(attempt.has_value()) << ctx;
    }
    // The transparent-fallback wrapper is exact on both sides of the line.
    EXPECT_EQ(align::sw_linear_antidiag8(s, s, sc), oracle) << ctx;
  }
}

// The striped kernels must sit on EXACTLY the same saturation boundary as
// swar8 — same predicate, "some true cell value > 255" — or the engine's
// swar8_fallbacks accounting would depend on which 8-bit kernel ran. The
// 8-bit attempt must succeed iff the swar8 attempt does, the ladder must
// count exactly one fallback past the line, and every returned value must
// be the oracle's.
TEST(CrossEngineDegenerate, StripedSaturationBoundaryExact) {
  struct Case {
    int match;
    std::size_t len;
  };
  const std::vector<Case> cases = {
      {5, 50}, {5, 51}, {5, 52},             // 250 | 255 | 260
      {3, 84}, {3, 85}, {3, 86},             // 252 | 255 | 258
      {1, 254}, {1, 255}, {1, 256}, {1, 300} // straddle at unit score
  };
  for (const Case& c : cases) {
    align::Scoring sc;
    sc.match = c.match;
    sc.mismatch = -c.match;
    sc.gap = -c.match - 1;
    const seq::Sequence s = seq::Sequence::dna(repeat('A', c.len), "sat");
    const align::LocalScoreResult oracle = align::sw_best(align::sw_matrix(s, s, sc));

    align::Antidiag8Workspace ws8;
    const bool swar8_fits = align::sw_antidiag8_try(s.codes(), s.codes(), sc, ws8).has_value();

    for (const unsigned lanes : striped_lane_widths()) {
      const std::string ctx = "match=" + std::to_string(c.match) +
                              " len=" + std::to_string(c.len) + " lanes=" + std::to_string(lanes);
      const align::StripedProfile profile(s, sc, lanes);
      align::StripedWorkspace ws;
      const std::optional<align::LocalScoreResult> attempt =
          align::sw_striped8_try(s.codes(), profile, ws);
      EXPECT_EQ(attempt.has_value(), swar8_fits) << ctx;  // predicate parity with swar8
      EXPECT_EQ(attempt.has_value(), oracle.score <= 255) << ctx;
      if (attempt.has_value()) {
        EXPECT_EQ(*attempt, oracle) << ctx;
      }

      std::uint64_t fallbacks = 0;
      EXPECT_EQ(align::sw_linear_striped(s, s, sc, lanes, &fallbacks), oracle) << ctx;
      EXPECT_EQ(fallbacks, oracle.score > 255 ? 1u : 0u) << ctx;
    }
  }
}

// ---------------------------------------------------------------------------
// Scan-level parity on the degenerate database: every SIMD policy, thread
// count, and the accelerator engine must report identical hits, and the
// Swar8 fallback count must equal exactly the number of records whose best
// score exceeds 255 — independent of threads.
// ---------------------------------------------------------------------------

void expect_same_scan_hits(const host::ScanResult& a, const host::ScanResult& b,
                           const std::string& ctx) {
  ASSERT_EQ(a.hits.size(), b.hits.size()) << ctx;
  for (std::size_t k = 0; k < a.hits.size(); ++k) {
    EXPECT_EQ(a.hits[k].record, b.hits[k].record) << ctx << " hit " << k;
    EXPECT_EQ(a.hits[k].result.score, b.hits[k].result.score) << ctx << " hit " << k;
    EXPECT_EQ(a.hits[k].result.end.i, b.hits[k].result.end.i) << ctx << " hit " << k;
    EXPECT_EQ(a.hits[k].result.end.j, b.hits[k].result.end.j) << ctx << " hit " << k;
  }
}

TEST(CrossEngineDegenerate, ScanParityAcrossPoliciesThreadsAndBoard) {
  align::Scoring sc;
  sc.match = 1;
  sc.mismatch = -1;
  sc.gap = -2;
  std::vector<seq::Sequence> records = degenerate_dna();
  seq::RandomSequenceGenerator gen(0xDEAD);
  records.push_back(gen.uniform(seq::dna(), 120, "rand120"));
  records.push_back(gen.uniform(seq::dna(), 77, "rand77"));

  const std::vector<seq::Sequence> queries = {
      seq::Sequence::dna(repeat('A', 20), "same_q"),
      seq::Sequence::dna(repeat('C', 280), "sat_q"),  // straddles 255 vs same300
      seq::Sequence::dna("ACGTACGTACGTACGTACGT", "period_q"),
  };

  for (const seq::Sequence& query : queries) {
    host::ScanOptions base;
    base.top_k = 16;
    base.min_score = 1;
    const host::ScanResult reference = host::scan_database_cpu(query, records, sc, base);

    std::uint64_t saturated = 0;
    for (const seq::Sequence& rec : records) {
      if (align::sw_linear(rec, query, sc).score > 255) ++saturated;
    }

    // What Auto resolves to depends on the machine and any SWR_SIMD
    // override in the environment — mirror the engine's resolution so
    // the expected fallback count is right under every CI matrix leg.
    const core::SimdIsa auto_isa = core::auto_simd_isa();
    const bool auto_leads_with_bytes = auto_isa == core::SimdIsa::Swar8 ||
                                       auto_isa == core::SimdIsa::Sse41 ||
                                       auto_isa == core::SimdIsa::Avx2;

    for (const host::SimdPolicy policy :
         {host::SimdPolicy::Auto, host::SimdPolicy::Scalar, host::SimdPolicy::Swar16,
          host::SimdPolicy::Swar8, host::SimdPolicy::Sse41, host::SimdPolicy::Avx2}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        // The kernel shape joins the sweep: the inter-sequence kernel
        // (one record per 8-bit lane) must be output-identical to the
        // striped shape for every policy and thread count, fallback
        // accounting included; where it cannot run it degrades to
        // striped, which keeps this sweep valid on every machine.
        for (const host::KernelShape shape :
             {host::KernelShape::Auto, host::KernelShape::Striped,
              host::KernelShape::InterSeq}) {
          host::ScanOptions opt = base;
          opt.simd_policy = policy;
          opt.threads = threads;
          opt.kernel = shape;
          const host::ScanResult r = host::scan_database_cpu(query, records, sc, opt);
          const std::string ctx = "q=" + query.name() +
                                  " policy=" + std::to_string(static_cast<int>(policy)) +
                                  " threads=" + std::to_string(threads) +
                                  " kernel=" + core::kernel_shape_name(shape);
          expect_same_scan_hits(reference, r, ctx);
          EXPECT_EQ(r.records_scanned, records.size()) << ctx;
          EXPECT_EQ(r.cell_updates, reference.cell_updates) << ctx;
          // Swar8, Sse41, Avx2 lead with an 8-bit kernel (SWAR, striped
          // or inter-sequence — identical saturation predicate), and an
          // unsupported striped request degrades no lower than Swar8:
          // exactly one lazy 16-bit re-run per saturating record,
          // thread-, kernel- and shape-invariant. Auto counts only when
          // it resolves to a byte-leading tier.
          const bool leads_with_bytes =
              policy == host::SimdPolicy::Swar8 || policy == host::SimdPolicy::Sse41 ||
              policy == host::SimdPolicy::Avx2 ||
              (policy == host::SimdPolicy::Auto && auto_leads_with_bytes);
          EXPECT_EQ(r.swar8_fallbacks, leads_with_bytes ? saturated : 0u) << ctx;
        }
      }
    }

    // The cycle-accurate accelerator model reports the same hits.
    core::SmithWatermanAccelerator acc(core::xc2vp70(), 25, sc);
    const host::ScanResult board = host::scan_database(acc, query, records, base);
    expect_same_scan_hits(reference, board, "q=" + query.name() + " board");
  }
}

}  // namespace
