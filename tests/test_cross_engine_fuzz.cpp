// Cross-engine fuzz: the library's central invariant, hammered.
//
// For a batch of randomized workloads (sizes, seeds, scoring schemes,
// array widths, thread counts), every engine that claims to compute the
// best local score + canonical coordinates must agree exactly:
//
//   sw_full  (quadratic oracle)
//   sw_linear
//   sw_linear_profiled
//   wavefront_sw
//   ArrayController<ScorePe>  (cycle-accurate hardware model)
//   multiboard_run            (partitioned fleet)
//
// and the affine pair gotoh_local_score == ArrayController<AffinePe>.
#include <gtest/gtest.h>

#include <random>

#include "align/gotoh.hpp"
#include "align/sw_antidiag.hpp"
#include "align/sw_full.hpp"
#include "align/sw_linear.hpp"
#include "align/sw_profile.hpp"
#include "core/multibase.hpp"
#include "core/multiboard.hpp"
#include "par/wavefront.hpp"
#include "seq/random.hpp"

namespace {

using namespace swr;

struct FuzzCase {
  std::size_t m;         // db rows
  std::size_t n;         // query cols
  align::Scoring sc;
  std::size_t npes;
  std::size_t threads;
  std::size_t boards;
  std::uint64_t seed;
};

FuzzCase draw_case(std::mt19937_64& rng) {
  std::uniform_int_distribution<std::size_t> msize(1, 220);
  std::uniform_int_distribution<std::size_t> nsize(1, 70);
  std::uniform_int_distribution<int> match(1, 5);
  std::uniform_int_distribution<int> mism(-5, 0);
  std::uniform_int_distribution<int> gap(-6, -1);
  std::uniform_int_distribution<std::size_t> pes(1, 24);
  std::uniform_int_distribution<std::size_t> thr(1, 4);
  std::uniform_int_distribution<std::size_t> brd(1, 4);
  FuzzCase c;
  c.m = msize(rng);
  c.n = nsize(rng);
  c.sc.match = match(rng);
  c.sc.mismatch = std::min(mism(rng), c.sc.match - 1);
  c.sc.gap = gap(rng);
  c.npes = pes(rng);
  c.threads = thr(rng);
  c.boards = brd(rng);
  c.seed = rng();
  return c;
}

class CrossEngineFuzz : public testing::TestWithParam<int> {};

TEST_P(CrossEngineFuzz, AllEnginesAgree) {
  std::mt19937_64 rng(0xF00D + static_cast<unsigned>(GetParam()));
  for (int iter = 0; iter < 8; ++iter) {
    const FuzzCase c = draw_case(rng);
    seq::RandomSequenceGenerator gen(c.seed);
    const seq::Sequence db = gen.uniform(seq::dna(), c.m);
    const seq::Sequence query = gen.uniform(seq::dna(), c.n);

    const align::LocalScoreResult oracle = align::sw_best(align::sw_matrix(db, query, c.sc));
    const std::string ctx = "case m=" + std::to_string(c.m) + " n=" + std::to_string(c.n) +
                            " match=" + std::to_string(c.sc.match) +
                            " mism=" + std::to_string(c.sc.mismatch) +
                            " gap=" + std::to_string(c.sc.gap) +
                            " pes=" + std::to_string(c.npes) + " seed=" + std::to_string(c.seed);

    EXPECT_EQ(align::sw_linear(db, query, c.sc), oracle) << "sw_linear " << ctx;
    EXPECT_EQ(align::sw_linear_profiled(db, query, c.sc), oracle) << "profiled " << ctx;
    EXPECT_EQ(align::sw_linear_antidiag(db, query, c.sc), oracle) << "antidiag " << ctx;

    par::WavefrontConfig wf;
    wf.threads = c.threads;
    wf.row_block = 1 + c.m / 3;
    EXPECT_EQ(par::wavefront_sw(db, query, c.sc, wf), oracle) << "wavefront " << ctx;

    core::ArrayController<core::ScorePe> ctl(c.npes, 16, c.sc, 8u << 20, true, false);
    EXPECT_EQ(ctl.run(query, db), oracle) << "systolic " << ctx;

    core::BoardFleet fleet = core::make_board_fleet(core::xc2vp70(), c.boards,
                                                    std::min<std::size_t>(c.n, 150) + 1, c.sc);
    EXPECT_EQ(core::multiboard_run(fleet, query, db).best, oracle) << "multiboard " << ctx;

    core::MultiBaseController mb(std::max<std::size_t>(c.npes / 2, 1), 1 + c.seed % 4, 16, c.sc,
                                 8u << 20, true);
    EXPECT_EQ(mb.run(query, db), oracle) << "multibase " << ctx;
  }
}

TEST_P(CrossEngineFuzz, AffineEnginesAgree) {
  std::mt19937_64 rng(0xBEEF + static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<std::size_t> msize(1, 150);
  std::uniform_int_distribution<std::size_t> nsize(1, 50);
  std::uniform_int_distribution<int> open(-6, 0);
  std::uniform_int_distribution<int> ext(-4, -1);
  std::uniform_int_distribution<std::size_t> pes(1, 16);
  for (int iter = 0; iter < 6; ++iter) {
    align::AffineScoring sc;
    sc.match = 2;
    sc.mismatch = -1;
    sc.gap_open = open(rng);
    sc.gap_extend = ext(rng);
    const std::size_t m = msize(rng);
    const std::size_t n = nsize(rng);
    const std::size_t npes = pes(rng);
    seq::RandomSequenceGenerator gen(rng());
    const seq::Sequence db = gen.uniform(seq::dna(), m);
    const seq::Sequence query = gen.uniform(seq::dna(), n);

    const align::LocalScoreResult oracle =
        align::gotoh_local_score(db.codes(), query.codes(), sc);
    core::ArrayController<core::AffinePe> ctl(npes, 16, sc, 8u << 20, true, false);
    EXPECT_EQ(ctl.run(query, db), oracle)
        << "affine m=" << m << " n=" << n << " npes=" << npes << " open=" << sc.gap_open
        << " ext=" << sc.gap_extend;
  }
}

INSTANTIATE_TEST_SUITE_P(Batches, CrossEngineFuzz, testing::Range(0, 8));

}  // namespace
