// Snapshot serialization tests: the JSON emitted by to_json must be
// parsed back losslessly by from_json (the stats-dump round trip), the
// table renderer must show every metric, and malformed input must be
// rejected rather than guessed at.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace swr::obs {
namespace {

Snapshot sample_snapshot() {
  Registry reg;
  reg.counter("svc.queries_admitted").add(12);
  reg.counter("scan.cells").add(1'234'567);
  reg.gauge("svc.queue_depth").set(3);
  reg.gauge("db.bytes_mapped").set(-1);  // gauges are signed
  Histogram& h = reg.histogram("svc.query_us");
  h.observe(0);
  h.observe(100);
  h.observe(100);
  h.observe(65'000);
  return reg.snapshot();
}

TEST(Export, JsonRoundTripIsLossless) {
  const Snapshot snap = sample_snapshot();
  const Snapshot back = from_json(to_json(snap));

  ASSERT_EQ(back.counters.size(), snap.counters.size());
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    EXPECT_EQ(back.counters[i].first, snap.counters[i].first);
    EXPECT_EQ(back.counters[i].second, snap.counters[i].second);
  }
  ASSERT_EQ(back.gauges.size(), snap.gauges.size());
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    EXPECT_EQ(back.gauges[i].first, snap.gauges[i].first);
    EXPECT_EQ(back.gauges[i].second, snap.gauges[i].second);
  }
  ASSERT_EQ(back.histograms.size(), snap.histograms.size());
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSnapshot& a = snap.histograms[i].second;
    const HistogramSnapshot& b = back.histograms[i].second;
    EXPECT_EQ(back.histograms[i].first, snap.histograms[i].first);
    EXPECT_EQ(b.count, a.count);
    EXPECT_EQ(b.sum, a.sum);
    EXPECT_DOUBLE_EQ(b.p50, a.p50);
    EXPECT_DOUBLE_EQ(b.p90, a.p90);
    EXPECT_DOUBLE_EQ(b.p99, a.p99);
    ASSERT_EQ(b.buckets.size(), a.buckets.size());
    for (std::size_t j = 0; j < a.buckets.size(); ++j) {
      EXPECT_EQ(b.buckets[j].first, a.buckets[j].first);
      EXPECT_EQ(b.buckets[j].second, a.buckets[j].second);
    }
  }
}

TEST(Export, JsonIsDeterministic) {
  const Snapshot snap = sample_snapshot();
  EXPECT_EQ(to_json(snap), to_json(snap));
  // Re-serializing the parsed form reproduces the original byte-for-byte.
  EXPECT_EQ(to_json(from_json(to_json(snap))), to_json(snap));
}

TEST(Export, EmptySnapshotRoundTrips) {
  const Snapshot empty;
  const Snapshot back = from_json(to_json(empty));
  EXPECT_TRUE(back.counters.empty());
  EXPECT_TRUE(back.gauges.empty());
  EXPECT_TRUE(back.histograms.empty());
}

TEST(Export, TableShowsEveryMetric) {
  const Snapshot snap = sample_snapshot();
  const std::string table = to_table(snap);
  for (const auto& [name, value] : snap.counters) {
    EXPECT_NE(table.find(name), std::string::npos) << name;
  }
  for (const auto& [name, value] : snap.gauges) {
    EXPECT_NE(table.find(name), std::string::npos) << name;
  }
  for (const auto& [name, hist] : snap.histograms) {
    EXPECT_NE(table.find(name), std::string::npos) << name;
  }
  EXPECT_NE(table.find("1234567"), std::string::npos);  // counter values present
}

TEST(Export, EmptyTableSaysSo) {
  EXPECT_NE(to_table(Snapshot{}).find("(no metrics recorded)"), std::string::npos);
}

TEST(Export, MalformedJsonThrows) {
  EXPECT_THROW(from_json(""), std::runtime_error);
  EXPECT_THROW(from_json("not json"), std::runtime_error);
  EXPECT_THROW(from_json("{"), std::runtime_error);
  EXPECT_THROW(from_json("[]"), std::runtime_error);
  EXPECT_THROW(from_json(R"({"counters": {)"), std::runtime_error);
  EXPECT_THROW(from_json(R"({"counters": {"a": "text"}})"), std::runtime_error);
  EXPECT_THROW(from_json(R"({"wrong_key": {}})"), std::runtime_error);
  // Trailing garbage after a valid document is rejected too.
  const std::string valid = to_json(Snapshot{});
  EXPECT_THROW(from_json(valid + "x"), std::runtime_error);
}

}  // namespace
}  // namespace swr::obs
