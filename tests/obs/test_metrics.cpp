// Unit tests for the observability primitives: sharded counters stay
// exact under thread storms, histograms keep exact count/sum with
// factor-of-2 quantiles, the Registry names metrics stably and rejects
// kind collisions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace swr::obs {
namespace {

TEST(Counter, StartsAtZeroAndAddsExactly) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentAddsAreExact) {
  // More threads than shards, uneven per-thread contributions: the total
  // must still be the exact sum no matter how threads map onto shards.
  Counter c;
  constexpr int kThreads = 37;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(static_cast<std::uint64_t>(t % 3) + 1);
    });
  }
  for (std::thread& th : threads) th.join();
  std::uint64_t want = 0;
  for (int t = 0; t < kThreads; ++t) want += (static_cast<std::uint64_t>(t % 3) + 1) * kPerThread;
  EXPECT_EQ(c.value(), want);
}

TEST(Gauge, SetAddValue) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
  g.set(0);
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, BucketIndexIsBitWidth) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(255), 8u);
  EXPECT_EQ(Histogram::bucket_index(256), 9u);
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}), 64u);
}

TEST(Histogram, CountAndSumAreExact) {
  Histogram h;
  std::uint64_t want_sum = 0;
  for (std::uint64_t v = 0; v < 1000; ++v) {
    h.observe(v);
    want_sum += v;
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), want_sum);
}

TEST(Histogram, QuantileWithinFactorOfTwo) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1024; ++v) h.observe(v);
  // True p50 is 512; the estimate interpolates inside bucket [256, 512).
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1024.0);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 2048.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, ObserveSecondsConvertsToMicros) {
  Histogram h;
  h.observe_seconds(0.001);  // 1000 us
  EXPECT_EQ(h.sum(), 1000u);
  h.observe_seconds(-1.0);  // clamped to 0
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum(), 1000u);
}

TEST(Histogram, ConcurrentObservesKeepExactCountAndSum) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.observe(i % 97);
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  std::uint64_t per_thread_sum = 0;
  for (std::uint64_t i = 0; i < kPerThread; ++i) per_thread_sum += i % 97;
  EXPECT_EQ(h.sum(), kThreads * per_thread_sum);
}

TEST(Registry, SameNameReturnsSameMetric) {
  Registry reg;
  Counter& a = reg.counter("x.hits");
  Counter& b = reg.counter("x.hits");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(&reg.gauge("x.depth"), &reg.gauge("x.depth"));
  EXPECT_EQ(&reg.histogram("x.lat_us"), &reg.histogram("x.lat_us"));
}

TEST(Registry, KindCollisionThrows) {
  Registry reg;
  reg.counter("x.metric");
  EXPECT_THROW(reg.gauge("x.metric"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x.metric"), std::invalid_argument);
  reg.histogram("y.metric");
  EXPECT_THROW(reg.counter("y.metric"), std::invalid_argument);
}

TEST(Registry, SnapshotIsSortedAndComplete) {
  Registry reg;
  reg.counter("b.two").add(2);
  reg.counter("a.one").add(1);
  reg.gauge("z.depth").set(-5);
  reg.histogram("m.lat_us").observe(100);

  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.one");
  EXPECT_EQ(snap.counters[0].second, 1u);
  EXPECT_EQ(snap.counters[1].first, "b.two");
  EXPECT_EQ(snap.counters[1].second, 2u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
  EXPECT_EQ(snap.histograms[0].second.sum, 100u);

  EXPECT_EQ(snap.counter("a.one"), 1u);
  EXPECT_EQ(snap.counter("no.such"), 0u);
}

TEST(Registry, ConcurrentRegistrationAndMutationIsSafe) {
  // Threads race to create/fetch the same small name set and mutate; the
  // registry must hand every thread the same handle per name.
  Registry reg;
  constexpr int kThreads = 16;
  constexpr int kIters = 2'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kIters; ++i) {
        reg.counter(i % 2 == 0 ? "r.even" : "r.odd").add();
        reg.histogram("r.lat_us").observe(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("r.even") + snap.counter("r.odd"),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(snap.histograms.at(0).second.count, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Registry, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&global_registry(), &global_registry());
}

}  // namespace
}  // namespace swr::obs
