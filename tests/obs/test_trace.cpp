// Unit tests for the trace-span ring: bounded retention with oldest-first
// eviction, the slow-query log, and concurrent recording.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace swr::obs {
namespace {

Span span(std::uint64_t id, double total) {
  Span s;
  s.query_id = id;
  s.status = "done";
  s.total = total;
  return s;
}

TEST(TraceRing, ZeroCapacityThrows) {
  EXPECT_THROW(TraceRing(0), std::invalid_argument);
}

TEST(TraceRing, RetainsUpToCapacityOldestFirst) {
  TraceRing ring(4);
  for (std::uint64_t id = 1; id <= 3; ++id) ring.record(span(id, 0.001));
  const std::vector<Span> spans = ring.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans.front().query_id, 1u);
  EXPECT_EQ(spans.back().query_id, 3u);
  EXPECT_EQ(ring.recorded(), 3u);
}

TEST(TraceRing, WrapsEvictingOldest) {
  TraceRing ring(3);
  for (std::uint64_t id = 1; id <= 7; ++id) ring.record(span(id, 0.0));
  const std::vector<Span> spans = ring.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].query_id, 5u);
  EXPECT_EQ(spans[1].query_id, 6u);
  EXPECT_EQ(spans[2].query_id, 7u);
  EXPECT_EQ(ring.recorded(), 7u);
  EXPECT_EQ(ring.capacity(), 3u);
}

TEST(TraceRing, SlowLogKeepsOnlyThresholdCrossers) {
  TraceRing ring(8, /*slow_threshold_seconds=*/0.010);
  ring.record(span(1, 0.005));   // fast
  ring.record(span(2, 0.010));   // exactly at threshold -> slow
  ring.record(span(3, 0.500));   // slow
  ring.record(span(4, 0.0));     // fast
  const std::vector<Span> slow = ring.slow();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].query_id, 2u);
  EXPECT_EQ(slow[1].query_id, 3u);
  // The ring itself still holds everything.
  EXPECT_EQ(ring.spans().size(), 4u);
}

TEST(TraceRing, SlowLogIsBoundedByCapacity) {
  TraceRing ring(2, 0.001);
  for (std::uint64_t id = 1; id <= 5; ++id) ring.record(span(id, 1.0));
  const std::vector<Span> slow = ring.slow();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].query_id, 4u);
  EXPECT_EQ(slow[1].query_id, 5u);
}

TEST(TraceRing, NonPositiveThresholdDisablesSlowLog) {
  TraceRing ring(4, 0.0);
  ring.record(span(1, 100.0));
  EXPECT_TRUE(ring.slow().empty());
}

TEST(TraceRing, ConcurrentRecordsAllLand) {
  TraceRing ring(1'000, 0.5);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ring.record(span(static_cast<std::uint64_t>(t) * kPerThread + i, t % 2 == 0 ? 1.0 : 0.0));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(ring.recorded(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(ring.spans().size(), static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(ring.slow().size(), static_cast<std::size_t>(kThreads / 2) * kPerThread);
}

}  // namespace
}  // namespace swr::obs
