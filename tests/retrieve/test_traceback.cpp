// Unit suite for the retrieval layer: the top-K primitives every scan
// engine shares (deterministic under any sharding) and the §2.3 per-hit
// traceback (kernel coordinates -> verified CIGAR in O(m + n) space).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "align/banded.hpp"
#include "align/cigar.hpp"
#include "align/nw.hpp"
#include "align/sw_linear.hpp"
#include "obs/metrics.hpp"
#include "retrieve/topk.hpp"
#include "retrieve/traceback.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;

// ---------------------------------------------------------------- top-K

// The reference semantics: sort everything, keep the first k.
std::vector<int> sorted_prefix(std::vector<int> v, std::size_t k) {
  std::sort(v.begin(), v.end());
  if (k != 0 && v.size() > k) v.resize(k);
  return v;
}

TEST(TopK, InsertMatchesSortForEveryK) {
  std::mt19937_64 rng(4242);
  std::uniform_int_distribution<int> dist(0, 30);  // duplicates on purpose
  std::vector<int> items;
  for (int n = 0; n < 200; ++n) items.push_back(dist(rng));

  for (const std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{500}}) {
    std::vector<int> top;
    for (const int x : items) retrieve::topk_insert(top, x, k, std::less<int>{});
    EXPECT_EQ(top, sorted_prefix(items, k)) << "k=" << k;
  }
}

TEST(TopK, UnionFinalizeIsShardInvariant) {
  std::mt19937_64 rng(77);
  std::uniform_int_distribution<int> dist(0, 50);
  std::vector<int> items;
  for (int n = 0; n < 300; ++n) items.push_back(dist(rng));
  const std::vector<int> want = sorted_prefix(items, 12);

  // Any way of splitting the stream into shards must merge to the same
  // prefix — the property the per-worker / per-board / per-chunk folds
  // lean on.
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    std::vector<std::vector<int>> partial(shards);
    for (std::size_t n = 0; n < items.size(); ++n) {
      retrieve::topk_insert(partial[n % shards], items[n], 12, std::less<int>{});
    }
    std::vector<int> merged;
    for (std::vector<int>& p : partial) retrieve::topk_union(merged, std::move(p));
    retrieve::topk_finalize(merged, 12, std::less<int>{});
    EXPECT_EQ(merged, want) << shards << " shards";
  }
}

TEST(TopK, ZeroKeepsEverything) {
  std::vector<int> top;
  for (const int x : {5, 3, 9, 3, 1}) retrieve::topk_insert(top, x, 0, std::less<int>{});
  EXPECT_EQ(top, (std::vector<int>{1, 3, 3, 5, 9}));
}

// -------------------------------------------------------- band_from_score

TEST(BandFromScore, ContainsTheOptimalGlobalAlignment) {
  const align::Scoring sc;
  seq::RandomSequenceGenerator gen(1309);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t len = 20 + static_cast<std::size_t>(iter) * 3;
    const seq::Sequence a = gen.uniform(seq::dna(), len);
    const seq::Sequence b = seq::point_mutate(a, 0.02 + 0.01 * (iter % 8), gen.engine());
    const align::Score g = align::nw_score(a.codes(), b.codes(), sc);
    if (g <= 0) continue;  // the bound is only claimed for positive scores

    const std::size_t band = retrieve::band_from_score(a.size(), b.size(), g, sc);
    const std::size_t diff = a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
    EXPECT_GE(band, diff);
    EXPECT_LE(band, std::max(a.size(), b.size()));
    // The proof obligation: an alignment scoring g exists, so it must fit.
    EXPECT_EQ(align::banded_nw_score(a.codes(), b.codes(), band, sc), g) << "iter " << iter;
  }
}

TEST(BandFromScore, NonPositiveMatrixFallsBackToFullBand) {
  align::Scoring sc;
  sc.match = 1;
  const align::SubstitutionMatrix zeroish(seq::dna(), 0, -1);
  sc.matrix = &zeroish;
  EXPECT_EQ(retrieve::band_from_score(30, 20, 5, sc), 30u);
}

// ----------------------------------------------------------- traceback_hit

struct PlantedHit {
  seq::Sequence query;
  seq::Sequence rec;
  align::LocalScoreResult kernel;
};

PlantedHit plant(std::uint64_t seed, double rate, std::size_t qlen = 90) {
  PlantedHit p;
  seq::RandomSequenceGenerator gen(seed);
  p.query = gen.uniform(seq::dna(), qlen, "q");
  seq::Sequence rec = gen.uniform(seq::dna(), 40, "r");
  rec.append(seq::point_mutate(p.query, rate, gen.engine()));
  rec.append(gen.uniform(seq::dna(), 25));
  p.rec = std::move(rec);
  p.kernel = align::sw_linear_codes(p.rec.codes(), p.query.codes(), align::Scoring{});
  return p;
}

TEST(TracebackHit, ReplaysTheKernelScoreExactly) {
  const align::Scoring sc;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const PlantedHit p = plant(seed, 0.01 * static_cast<double>(seed));
    ASSERT_GT(p.kernel.score, 0);
    const retrieve::Traceback tb =
        retrieve::traceback_hit(p.rec.codes(), p.query.codes(), p.kernel, sc);

    EXPECT_EQ(tb.alignment.score, p.kernel.score);
    // The transcript must replay to the kernel score from the residues
    // alone, through the independent Sequence-level scorer.
    EXPECT_EQ(align::score_of(tb.alignment.cigar, p.rec, p.query, tb.alignment.begin, sc),
              p.kernel.score)
        << "seed " << seed;
    // Coordinates and transcript agree on the window extent.
    EXPECT_EQ(tb.alignment.cigar.consumed_i(), tb.alignment.end.i - tb.alignment.begin.i + 1);
    EXPECT_EQ(tb.alignment.cigar.consumed_j(), tb.alignment.end.j - tb.alignment.begin.j + 1);
    EXPECT_GT(tb.identity, 0.0);
    EXPECT_LE(tb.identity, 1.0);
    EXPECT_GT(tb.query_coverage, 0.0);
    EXPECT_LE(tb.query_coverage, 1.0);
    EXPECT_GT(tb.dp_cells, 0u);
    EXPECT_GT(tb.peak_cells, 0u);
  }
}

TEST(TracebackHit, HighIdentityHitTakesTheBandedPath) {
  const PlantedHit p = plant(33, 0.02);
  const retrieve::Traceback tb =
      retrieve::traceback_hit(p.rec.codes(), p.query.codes(), p.kernel, align::Scoring{});
  EXPECT_TRUE(tb.banded);
  EXPECT_GT(tb.identity, 0.85);
}

TEST(TracebackHit, HirschbergFallbackAgreesWithBanded) {
  const align::Scoring sc;
  for (std::uint64_t seed = 20; seed < 26; ++seed) {
    const PlantedHit p = plant(seed, 0.05);
    const retrieve::Traceback banded =
        retrieve::traceback_hit(p.rec.codes(), p.query.codes(), p.kernel, sc);
    retrieve::TracebackOptions no_band;
    no_band.band_cell_budget = 0;  // force the divide-and-conquer path
    const retrieve::Traceback hirsch =
        retrieve::traceback_hit(p.rec.codes(), p.query.codes(), p.kernel, sc, no_band);

    EXPECT_FALSE(hirsch.banded);
    // Both routes end at the same window with the same verified score;
    // co-optimal transcripts may differ, the invariants may not.
    EXPECT_EQ(hirsch.alignment.score, banded.alignment.score);
    EXPECT_EQ(hirsch.alignment.begin, banded.alignment.begin);
    EXPECT_EQ(hirsch.alignment.end, banded.alignment.end);
    EXPECT_EQ(align::score_of(hirsch.alignment.cigar, p.rec, p.query, hirsch.alignment.begin, sc),
              p.kernel.score);
  }
}

TEST(TracebackHit, PeakMemoryIsLinearInTheWindow) {
  // The acceptance bound: peak score cells stay O(m + n) while the full-DP
  // matrix grows with the product. Forcing Hirschberg makes the bound
  // unconditional (the banded path already stores fewer cells whenever it
  // is chosen over full DP).
  retrieve::TracebackOptions no_band;
  no_band.band_cell_budget = 0;
  for (const std::size_t qlen : {std::size_t{64}, std::size_t{128}, std::size_t{256}}) {
    const PlantedHit p = plant(5000 + qlen, 0.04, qlen);
    ASSERT_GT(p.kernel.score, 0);
    const retrieve::Traceback tb =
        retrieve::traceback_hit(p.rec.codes(), p.query.codes(), p.kernel, align::Scoring{}, no_band);
    const std::uint64_t linear_bound = 4 * (p.rec.size() + p.query.size());
    const std::uint64_t full_dp = static_cast<std::uint64_t>(p.rec.size() + 1) *
                                  static_cast<std::uint64_t>(p.query.size() + 1);
    EXPECT_LE(tb.peak_cells, linear_bound) << "qlen " << qlen;
    EXPECT_LT(tb.peak_cells, full_dp / 8) << "qlen " << qlen;
  }
}

TEST(TracebackHit, RejectsImpossibleKernelResults) {
  const seq::Sequence a = test::random_dna(30, 7);
  const seq::Sequence b = test::random_dna(30, 8);
  const align::Scoring sc;

  align::LocalScoreResult bad;
  bad.score = 0;  // non-positive score: nothing to retrieve
  bad.end = {1, 1};
  EXPECT_THROW((void)retrieve::traceback_hit(a.codes(), b.codes(), bad, sc),
               std::invalid_argument);

  bad.score = 5;
  bad.end = {0, 1};  // 0 is the empty-prefix corner, not a residue
  EXPECT_THROW((void)retrieve::traceback_hit(a.codes(), b.codes(), bad, sc),
               std::invalid_argument);

  bad.end = {a.size() + 1, 1};  // off the end of the record
  EXPECT_THROW((void)retrieve::traceback_hit(a.codes(), b.codes(), bad, sc),
               std::invalid_argument);
}

TEST(TracebackHit, ForgedScoreIsCaughtLoudly) {
  // A kernel result whose score no alignment can reach must die in the
  // reverse pass, never escape as a CIGAR.
  const PlantedHit p = plant(99, 0.03);
  align::LocalScoreResult forged = p.kernel;
  forged.score += 7;
  EXPECT_THROW(
      (void)retrieve::traceback_hit(p.rec.codes(), p.query.codes(), forged, align::Scoring{}),
      std::logic_error);
}

TEST(TracebackMetrics, RecordsPerHitAccounting) {
  obs::Registry reg;
  const retrieve::TracebackMetrics metrics(&reg);
  const PlantedHit p = plant(123, 0.02);
  const retrieve::Traceback tb =
      retrieve::traceback_hit(p.rec.codes(), p.query.codes(), p.kernel, align::Scoring{});
  metrics.observe(tb, 1e-4);
  metrics.observe(tb, 2e-4);

  EXPECT_EQ(reg.counter("retrieve.hits").value(), 2u);
  EXPECT_EQ(reg.counter("retrieve.banded").value() + reg.counter("retrieve.hirschberg").value(),
            2u);
  EXPECT_EQ(reg.counter("retrieve.cells").value(), 2 * tb.dp_cells);
  EXPECT_EQ(reg.histogram("retrieve.traceback_us").count(), 2u);
}

TEST(TracebackMetrics, NullRegistryIsANoOp) {
  const retrieve::TracebackMetrics metrics(nullptr);
  metrics.observe(retrieve::Traceback{}, 0.0);  // must not crash
  EXPECT_EQ(metrics.hits, nullptr);
}

}  // namespace
