// Wire parity: every byte the daemon writes for a request must be
// bit-identical to encoding an in-process ScanService response for the
// same request. This is the contract that makes `swr serve` a drop-in for
// `swr scan --batch` — covered across the exact tier, the seeded
// prefilter tier, and alignment retrieval, plus the cold/warm cache
// paths (a cache replay goes through the same encoder, so parity holds
// for it by the same comparison).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "svc/net/client.hpp"
#include "svc/net/server.hpp"
#include "svc/scan_service.hpp"
#include "net_test_util.hpp"

namespace {

using namespace swr;
using namespace swr::svc::net;
using namespace std::chrono_literals;

class ServeParity : public ::testing::Test {
 protected:
  static svc::net::ServerConfig config() {
    svc::net::ServerConfig cfg;
    cfg.service.cpu_workers = 1;
    return cfg;
  }

  ServeParity() : fixture_("serve_parity.swdb", config()) {
    // The in-process reference: same store, same service knobs, no
    // network. Chunk merge is deterministic, so worker count does not
    // matter for parity — but mirror the server anyway.
    reference_ = std::make_unique<svc::ScanService>(fixture_.store(), config().service);
  }

  /// Maps a WireRequest exactly as the server does and runs it in-process.
  [[nodiscard]] std::vector<std::uint8_t> reference_bytes(const WireRequest& req) {
    seq::Sequence query(fixture_.store().alphabet(), req.query, req.query_name);
    host::ScanOptions opt;
    opt.top_k = req.top_k;
    opt.min_score = req.min_score;
    opt.filter = req.filter == 1 ? host::FilterMode::Seeded : host::FilterMode::Exact;
    opt.filter_threshold = req.filter_threshold;
    opt.align = req.align != 0;
    opt.max_hits = req.max_hits;
    const svc::Ticket ticket = reference_->submit(std::move(query), opt,
                                                  std::chrono::milliseconds(req.deadline_ms));
    const svc::ScanResponse resp = ticket.response.get();
    EXPECT_EQ(resp.status, svc::QueryStatus::Done);
    return encode_response_bytes(to_wire(resp, fixture_.store()), req.request_id);
  }

  void expect_parity(const WireRequest& req) {
    ScanClient client = fixture_.connect();
    const ClientResponse over_wire = client.scan(req);
    ASSERT_TRUE(over_wire.ok) << over_wire.error;
    EXPECT_EQ(over_wire.raw_bytes, reference_bytes(req))
        << "socket bytes diverged from the in-process encoding (request "
        << req.request_id << ")";
  }

  test::NetServerFixture fixture_;
  std::unique_ptr<svc::ScanService> reference_;
};

TEST_F(ServeParity, ExactTier) {
  WireRequest req = test::planted_request(11);
  req.top_k = 8;
  expect_parity(req);
}

TEST_F(ServeParity, SeededPrefilterTier) {
  WireRequest req = test::planted_request(12);
  req.filter = 1;  // seeded prefilter + exact rescore
  req.top_k = 8;
  expect_parity(req);
}

TEST_F(ServeParity, AlignmentRetrieval) {
  WireRequest req = test::planted_request(13);
  req.align = 1;
  req.top_k = 4;
  expect_parity(req);

  // And alignments on top of the seeded tier.
  WireRequest seeded = test::planted_request(14);
  seeded.filter = 1;
  seeded.align = 1;
  seeded.top_k = 4;
  expect_parity(seeded);
}

TEST_F(ServeParity, EmptyHitSet) {
  WireRequest req = test::planted_request(15);
  req.min_score = 1 << 20;  // nothing can reach this
  expect_parity(req);
}

TEST_F(ServeParity, MaxHitsCap) {
  WireRequest req = test::planted_request(16);
  req.top_k = 10;
  req.max_hits = 2;
  expect_parity(req);
}

// Several requests pipelined over one connection keep byte parity — no
// state from an earlier exchange may leak into a later one.
TEST_F(ServeParity, SequentialRequestsOnOneConnection) {
  ScanClient client = fixture_.connect();
  for (std::uint64_t id = 20; id < 25; ++id) {
    WireRequest req = test::planted_request(id);
    req.top_k = static_cast<std::uint32_t>(1 + id % 5);
    req.align = id % 2;
    const ClientResponse over_wire = client.scan(req);
    ASSERT_TRUE(over_wire.ok) << over_wire.error;
    EXPECT_EQ(over_wire.raw_bytes, reference_bytes(req)) << "request " << id;
  }
}

// The warm (result-cache) path replays through the same encoder: warm
// bytes equal cold bytes equal the in-process encoding.
TEST_F(ServeParity, CacheReplayKeepsParity) {
  WireRequest req = test::planted_request(30);
  req.align = 1;
  const std::vector<std::uint8_t> expect = reference_bytes(req);

  ScanClient client = fixture_.connect();
  const ClientResponse cold = client.scan(req);
  ASSERT_TRUE(cold.ok) << cold.error;
  const ClientResponse warm = client.scan(req);
  ASSERT_TRUE(warm.ok) << warm.error;

  EXPECT_EQ(cold.raw_bytes, expect);
  EXPECT_EQ(warm.raw_bytes, expect);
  EXPECT_GE(fixture_.registry().snapshot().counter("svc.cache.result.hits"), 1u);
}

}  // namespace
