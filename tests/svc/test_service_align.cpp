// Alignment retrieval through svc::ScanService: the traceback phase runs
// once per query after the last chunk folds, produces the same verified
// transcripts as a direct scan for every chunk size and executor mix,
// respects --max-hits, and yields cleanly to cancellation and deadlines.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "align/cigar.hpp"
#include "db/builder.hpp"
#include "db/store.hpp"
#include "host/scan_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"
#include "svc/scan_service.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace std::chrono_literals;

struct AlignDb {
  seq::Sequence query;
  std::vector<seq::Sequence> records;

  explicit AlignDb(std::uint64_t seed) {
    seq::RandomSequenceGenerator gen(seed);
    query = gen.uniform(seq::dna(), 100, "q");
    for (int r = 0; r < 50; ++r) {
      seq::Sequence rec = gen.uniform(seq::dna(), 60 + 29 * (r % 7), "rec" + std::to_string(r));
      if (r % 7 == 2) rec.append(seq::point_mutate(query, 0.03 + 0.02 * (r % 4), gen.engine()));
      records.push_back(std::move(rec));
    }
  }
};

db::Store open_store(const std::vector<seq::Sequence>& recs, const std::string& leaf) {
  const std::string path = testing::TempDir() + "/" + leaf;
  db::build_store(recs, path);
  return db::Store::open(path);
}

host::ScanOptions align_opt() {
  host::ScanOptions opt;
  opt.top_k = 8;
  opt.min_score = 40;
  opt.align = true;
  return opt;
}

void expect_same_aligned_result(const host::ScanResult& got, const host::ScanResult& want,
                                const std::string& what) {
  ASSERT_EQ(got.hits.size(), want.hits.size()) << what;
  for (std::size_t k = 0; k < got.hits.size(); ++k) {
    EXPECT_EQ(got.hits[k].record, want.hits[k].record) << what << " hit " << k;
    EXPECT_EQ(got.hits[k].result, want.hits[k].result) << what << " hit " << k;
  }
  ASSERT_EQ(got.alignments.size(), want.alignments.size()) << what;
  for (std::size_t k = 0; k < got.alignments.size(); ++k) {
    EXPECT_EQ(got.alignments[k].alignment.begin, want.alignments[k].alignment.begin)
        << what << " alignment " << k;
    EXPECT_EQ(got.alignments[k].alignment.end, want.alignments[k].alignment.end)
        << what << " alignment " << k;
    EXPECT_EQ(got.alignments[k].alignment.cigar.to_string(),
              want.alignments[k].alignment.cigar.to_string())
        << what << " alignment " << k;
  }
}

TEST(ServiceAlign, ResolvesWithVerifiedTranscripts) {
  const AlignDb db(6100);
  const db::Store store = open_store(db.records, "svc_align.swdb");
  obs::Registry reg;
  svc::ServiceConfig cfg;
  cfg.cpu_workers = 2;
  cfg.metrics = &reg;
  svc::ScanService service(store, cfg);

  const svc::ScanResponse resp = service.submit(db.query, align_opt()).response.get();
  ASSERT_EQ(resp.status, svc::QueryStatus::Done) << resp.error;
  ASSERT_FALSE(resp.result.hits.empty());
  ASSERT_EQ(resp.result.alignments.size(), resp.result.hits.size());
  for (std::size_t k = 0; k < resp.result.alignments.size(); ++k) {
    const retrieve::Traceback& tb = resp.result.alignments[k];
    const host::Hit& h = resp.result.hits[k];
    EXPECT_EQ(tb.alignment.score, h.result.score) << "hit " << k;
    EXPECT_EQ(align::score_of(tb.alignment.cigar, db.records[h.record], db.query,
                              tb.alignment.begin, align::Scoring{}),
              h.result.score)
        << "hit " << k;
  }
  // One traceback phase ran, and the retrieval layer accounted each hit.
  EXPECT_EQ(reg.counter("svc.tracebacks").value(), 1u);
  EXPECT_EQ(reg.counter("retrieve.hits").value(), resp.result.alignments.size());
  EXPECT_EQ(reg.histogram("svc.traceback_us").count(), 1u);
}

TEST(ServiceAlign, ChunkSizesAndBoardsMatchTheDirectScan) {
  const AlignDb db(6101);
  const db::Store store = open_store(db.records, "svc_align_chunks.swdb");
  const host::ScanOptions opt = align_opt();
  const host::ScanResult direct = host::scan_database_cpu(db.query, store, align::Scoring{}, opt);
  ASSERT_FALSE(direct.hits.empty());

  for (const std::size_t chunk : {std::size_t{5}, std::size_t{24}, std::size_t{1000}}) {
    for (const std::size_t boards : {std::size_t{0}, std::size_t{1}}) {
      svc::ServiceConfig cfg;
      cfg.cpu_workers = 3;
      cfg.boards = boards;
      cfg.chunk_records = chunk;
      svc::ScanService service(store, cfg);
      const svc::ScanResponse resp = service.submit(db.query, opt).response.get();
      ASSERT_EQ(resp.status, svc::QueryStatus::Done) << resp.error;
      expect_same_aligned_result(resp.result, direct,
                                 "chunk " + std::to_string(chunk) + " boards " +
                                     std::to_string(boards));
    }
  }
}

TEST(ServiceAlign, MaxHitsCapsTheTracebackPhase) {
  const AlignDb db(6102);
  const db::Store store = open_store(db.records, "svc_align_cap.swdb");
  svc::ServiceConfig cfg;
  svc::ScanService service(store, cfg);

  host::ScanOptions opt = align_opt();
  opt.max_hits = 2;
  const svc::ScanResponse resp = service.submit(db.query, opt).response.get();
  ASSERT_EQ(resp.status, svc::QueryStatus::Done) << resp.error;
  ASSERT_GE(resp.result.hits.size(), 3u);  // ranking stays the full top-k
  EXPECT_EQ(resp.result.alignments.size(), 2u);
}

TEST(ServiceAlign, CancelBeforeDispatchYieldsNoAlignments) {
  const AlignDb db(6103);
  const db::Store store = open_store(db.records, "svc_align_cancel.swdb");
  svc::ServiceConfig cfg;
  cfg.start_paused = true;
  svc::ScanService service(store, cfg);

  const svc::Ticket t = service.submit(db.query, align_opt());
  EXPECT_TRUE(service.cancel(t.id));
  const svc::ScanResponse resp = t.response.get();
  EXPECT_EQ(resp.status, svc::QueryStatus::Cancelled);
  EXPECT_TRUE(resp.result.alignments.empty());
  service.resume();
}

TEST(ServiceAlign, ExpiredDeadlineResolvesWithoutTraceback) {
  const AlignDb db(6104);
  const db::Store store = open_store(db.records, "svc_align_deadline.swdb");
  svc::ServiceConfig cfg;
  cfg.start_paused = true;
  svc::ScanService service(store, cfg);

  const svc::Ticket t = service.submit(db.query, align_opt(), 1ms);
  std::this_thread::sleep_for(10ms);  // deadline passes while paused
  service.resume();
  const svc::ScanResponse resp = t.response.get();
  EXPECT_EQ(resp.status, svc::QueryStatus::DeadlineExpired);
  EXPECT_TRUE(resp.result.alignments.empty());
}

TEST(ServiceAlign, TraceSpanCarriesTheTracebackStage) {
  const AlignDb db(6105);
  const db::Store store = open_store(db.records, "svc_align_span.swdb");
  obs::TraceRing ring(8);
  svc::ServiceConfig cfg;
  cfg.trace = &ring;
  svc::ScanService service(store, cfg);

  host::ScanOptions plain = align_opt();
  plain.align = false;
  (void)service.submit(db.query, plain).response.get();
  (void)service.submit(db.query, align_opt()).response.get();

  const std::vector<obs::Span> spans = ring.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].traceback, 0.0);     // score-only query: no phase
  EXPECT_GE(spans[1].traceback, 0.0);     // aligned query: stage recorded
  EXPECT_LE(spans[1].traceback, spans[1].total);
}

}  // namespace
