// Metrics reconciliation: for every engine and thread-count combination,
// the registry's counters must equal the exact sums of the corresponding
// ScanResult fields across queries — the counters are bookkeeping over the
// same totals, never an independent (and driftable) estimate.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/multiboard.hpp"
#include "db/builder.hpp"
#include "db/store.hpp"
#include "host/fleet_scan.hpp"
#include "host/scan_engine.hpp"
#include "obs/metrics.hpp"
#include "svc/scan_service.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;

std::vector<seq::Sequence> reconcile_records() {
  std::vector<seq::Sequence> recs;
  for (int k = 0; k < 33; ++k) {
    seq::Sequence s = test::random_dna(6 + 29 * static_cast<std::size_t>(k % 8), 6100 + k);
    s.set_name("rec" + std::to_string(k));
    recs.push_back(std::move(s));
  }
  recs.push_back(seq::Sequence::dna("ACGTACGTACGTACGTACGTACGT", "planted"));
  return recs;
}

std::vector<seq::Sequence> reconcile_queries() {
  std::vector<seq::Sequence> qs;
  qs.push_back(seq::Sequence::dna("ACGTACGTACGTACGTACGT", "q0"));
  qs.push_back(test::random_dna(17, 31));
  qs.push_back(test::random_dna(40, 32));
  return qs;
}

// CPU engine, every SIMD policy x thread count: scan.* counters must equal
// the summed ScanResult fields.
TEST(MetricsReconcile, CpuEngineAcrossPoliciesAndThreads) {
  const std::vector<seq::Sequence> recs = reconcile_records();
  const std::vector<seq::Sequence> queries = reconcile_queries();

  for (const host::SimdPolicy policy :
       {host::SimdPolicy::Auto, host::SimdPolicy::Scalar, host::SimdPolicy::Swar16,
        host::SimdPolicy::Swar8}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      obs::Registry reg;
      std::uint64_t records = 0, cells = 0, fallbacks = 0, scans = 0;
      for (const seq::Sequence& q : queries) {
        host::ScanOptions opt;
        opt.top_k = 5;
        opt.threads = threads;
        opt.simd_policy = policy;
        opt.metrics = &reg;
        const host::ScanResult r =
            host::scan_database_cpu(q, recs, align::Scoring::paper_default(), opt);
        records += r.records_scanned;
        cells += r.cell_updates;
        fallbacks += r.swar8_fallbacks;
        ++scans;
      }
      const obs::Snapshot snap = reg.snapshot();
      const std::string ctx =
          "policy=" + std::to_string(static_cast<int>(policy)) + " threads=" + std::to_string(threads);
      EXPECT_EQ(snap.counter("scan.records"), records) << ctx;
      EXPECT_EQ(snap.counter("scan.cells"), cells) << ctx;
      EXPECT_EQ(snap.counter("scan.swar8_fallbacks"), fallbacks) << ctx;
      EXPECT_EQ(snap.counter("scan.scans"), scans) << ctx;
    }
  }
}

// Store-backed CPU scan: identical reconciliation through the mmap path.
TEST(MetricsReconcile, CpuEngineOverStore) {
  const std::vector<seq::Sequence> recs = reconcile_records();
  const std::string path = testing::TempDir() + "/reconcile_cpu.swdb";
  db::build_store(recs, path);

  obs::Registry reg;
  const db::Store store = db::Store::open(path, &reg);
  EXPECT_EQ(reg.snapshot().counter("db.opens"), 1u);

  std::uint64_t records = 0, cells = 0;
  for (const seq::Sequence& q : reconcile_queries()) {
    host::ScanOptions opt;
    opt.threads = 2;
    opt.metrics = &reg;
    const host::ScanResult r =
        host::scan_database_cpu(q, store, align::Scoring::paper_default(), opt);
    records += r.records_scanned;
    cells += r.cell_updates;
  }
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("scan.records"), records);
  EXPECT_EQ(snap.counter("scan.cells"), cells);
  EXPECT_GT(snap.counter("db.bytes_mapped"), 0u);
}

// Board fleet: fleet.* counters reconcile across board and thread counts.
TEST(MetricsReconcile, FleetEngineAcrossBoardsAndThreads) {
  const std::vector<seq::Sequence> recs = reconcile_records();
  const seq::Sequence query = seq::Sequence::dna("ACGTACGTACGTACGTACGT", "q");
  const align::Scoring sc = align::Scoring::paper_default();

  for (const std::size_t boards : {std::size_t{1}, std::size_t{3}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
      obs::Registry reg;
      core::BoardFleet fleet = core::make_board_fleet(core::xc2vp70(), boards, 32, sc);
      host::ScanOptions opt;
      opt.threads = threads;
      opt.metrics = &reg;
      const host::ScanResult r = host::scan_database_fleet(fleet, query, recs, opt);
      const obs::Snapshot snap = reg.snapshot();
      const std::string ctx = "boards=" + std::to_string(boards) + " threads=" + std::to_string(threads);
      EXPECT_EQ(snap.counter("fleet.records"), r.records_scanned) << ctx;
      EXPECT_EQ(snap.counter("fleet.cells"), r.cell_updates) << ctx;
      EXPECT_EQ(snap.counter("fleet.scans"), 1u) << ctx;
    }
  }
}

// The scan service across executor mixes: svc.* counters must equal the
// sums over resolved responses — and per-chunk scan.* metrics must NOT
// leak into the registry (the service forces them off to avoid double
// counting).
TEST(MetricsReconcile, ServiceAcrossExecutorMixes) {
  const std::vector<seq::Sequence> recs = reconcile_records();
  const std::string path = testing::TempDir() + "/reconcile_svc.swdb";
  db::build_store(recs, path);
  const db::Store store = db::Store::open(path);
  const std::vector<seq::Sequence> queries = reconcile_queries();

  for (const std::size_t cpu_workers : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const std::size_t boards : {std::size_t{0}, std::size_t{2}}) {
      obs::Registry reg;
      svc::ServiceConfig cfg;
      cfg.cpu_workers = cpu_workers;
      cfg.boards = boards;
      cfg.board_pes = 24;
      cfg.chunk_records = 7;
      cfg.metrics = &reg;

      std::uint64_t records = 0, cells = 0, fallbacks = 0, chunks = 0;
      {
        svc::ScanService service(store, cfg);
        std::vector<svc::Ticket> tickets;
        for (const seq::Sequence& q : queries) {
          host::ScanOptions opt;
          opt.top_k = 6;
          opt.metrics = &reg;  // the service must null this out per chunk
          tickets.push_back(service.submit(q, opt));
        }
        for (svc::Ticket& t : tickets) {
          const svc::ScanResponse resp = t.response.get();
          EXPECT_EQ(resp.status, svc::QueryStatus::Done);
          records += resp.result.records_scanned;
          cells += resp.result.cell_updates;
          fallbacks += resp.result.swar8_fallbacks;
        }
      }
      const obs::Snapshot snap = reg.snapshot();
      const std::string ctx =
          "cpu=" + std::to_string(cpu_workers) + " boards=" + std::to_string(boards);
      EXPECT_EQ(snap.counter("svc.records_scanned"), records) << ctx;
      EXPECT_EQ(snap.counter("svc.cells"), cells) << ctx;
      EXPECT_EQ(snap.counter("svc.swar8_fallbacks"), fallbacks) << ctx;
      EXPECT_EQ(snap.counter("svc.queries_done"), queries.size()) << ctx;
      // Every record was scanned exactly once per query, whatever the mix.
      EXPECT_EQ(records, queries.size() * recs.size()) << ctx;
      // No double counting: the per-chunk engine counters must be absent.
      EXPECT_EQ(snap.counter("scan.records"), 0u) << ctx;
      EXPECT_EQ(snap.counter("fleet.records"), 0u) << ctx;
      chunks = snap.counter("svc.chunks_cpu") + snap.counter("svc.chunks_board");
      EXPECT_GT(chunks, 0u) << ctx;
      if (boards == 0) {
        EXPECT_EQ(snap.counter("svc.chunks_board"), 0u) << ctx;
      }
    }
  }
}

// Disabled metrics stay disabled: a null registry pointer records nothing
// anywhere (and in particular never touches the global registry).
TEST(MetricsReconcile, NullRegistryRecordsNothing) {
  const std::vector<seq::Sequence> recs = reconcile_records();
  const seq::Sequence query = seq::Sequence::dna("ACGTACGT", "q");
  host::ScanOptions opt;  // metrics == nullptr
  const obs::Snapshot before = obs::global_registry().snapshot();
  const host::ScanResult r =
      host::scan_database_cpu(query, recs, align::Scoring::paper_default(), opt);
  EXPECT_GT(r.records_scanned, 0u);
  const obs::Snapshot after = obs::global_registry().snapshot();
  EXPECT_EQ(after.counter("scan.records"), before.counter("scan.records"));
  EXPECT_EQ(after.counters.size(), before.counters.size());
}

}  // namespace
