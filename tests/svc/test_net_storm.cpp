// Socket storm: concurrent connections, mixed tenants, cancels, slow
// readers and mid-request disconnects against one live server. The exit
// assertions are the ones that matter in production: per-tenant token
// buckets keep a greedy tenant inside its configured rate, and the
// svc.net.* counters reconcile exactly — every request that entered
// handle_request left through exactly one outcome counter. TSan runs this
// whole file in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "svc/net/client.hpp"
#include "svc/net/wire.hpp"
#include "net_test_util.hpp"

namespace {

using namespace swr;
using namespace swr::svc::net;
using namespace std::chrono_literals;

svc::net::ServerConfig storm_config() {
  svc::net::ServerConfig cfg;
  cfg.service.cpu_workers = 2;
  cfg.service.queue_capacity = 64;
  cfg.write_timeout = 2000ms;
  // alice is effectively unthrottled; bob is tightly rate-limited. Both
  // are configured explicitly so they get per-tenant counters.
  cfg.tenant_limits["alice"] = {10000.0, 64};
  cfg.tenant_limits["bob"] = {5.0, 2};
  return cfg;
}

TEST(NetStorm, MixedTenantsCancelsAndDisconnects) {
  test::NetServerFixture fixture("net_storm.swdb", storm_config());
  const auto t0 = std::chrono::steady_clock::now();

  std::atomic<int> alice_ok{0};
  std::atomic<int> bob_ok{0};
  std::atomic<int> bob_shed{0};
  std::atomic<int> transport_errors{0};

  std::vector<std::thread> threads;

  // 4 alice connections, each a burst of sequential requests.
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&fixture, &alice_ok, &transport_errors, t] {
      ScanClient client;
      std::string error;
      if (!client.connect("127.0.0.1", fixture.port(), error)) {
        ++transport_errors;
        return;
      }
      for (int k = 0; k < 8; ++k) {
        const ClientResponse resp = client.scan(
            test::planted_request(static_cast<std::uint64_t>(t * 100 + k), "alice"));
        if (resp.ok) {
          ++alice_ok;
        } else if (resp.errors.empty()) {
          ++transport_errors;
        }
        // Overloaded/Shed responses are legitimate storm outcomes; they
        // reconcile via the server counters below.
      }
    });
  }

  // 2 bob connections hammering far past 5 req/s — most must shed.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&fixture, &bob_ok, &bob_shed, &transport_errors, t] {
      ScanClient client;
      std::string error;
      if (!client.connect("127.0.0.1", fixture.port(), error)) {
        ++transport_errors;
        return;
      }
      for (int k = 0; k < 15; ++k) {
        const ClientResponse resp = client.scan(
            test::planted_request(static_cast<std::uint64_t>(1000 + t * 100 + k), "bob"));
        if (resp.ok) {
          ++bob_ok;
        } else if (!resp.errors.empty() && resp.errors[0].code == ErrorCode::Shed) {
          EXPECT_GT(resp.errors[0].retry_after_ms, 0u) << "shed must carry a retry hint";
          ++bob_shed;
        }
      }
    });
  }

  // Cancellers: submit, cancel the in-flight id, read to completion.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&fixture, &transport_errors, t] {
      ScanClient client;
      std::string error;
      if (!client.connect("127.0.0.1", fixture.port(), error)) {
        ++transport_errors;
        return;
      }
      for (int k = 0; k < 5; ++k) {
        const auto id = static_cast<std::uint64_t>(2000 + t * 100 + k);
        if (!client.send_frame(FrameType::Request, encode(test::planted_request(id)))) {
          ++transport_errors;
          return;
        }
        client.send_cancel(id);
        // The server still finishes the exchange: hits (possibly partial)
        // then a Done trailer whose status may be done or cancelled.
        ClientFrame frame;
        bool done = false;
        for (int reads = 0; reads < 64 && !done; ++reads) {
          if (!client.read_frame(frame, 10000ms, error)) {
            ++transport_errors;
            return;
          }
          done = frame.type == FrameType::Done || frame.type == FrameType::Error;
        }
        EXPECT_TRUE(done);
      }
    });
  }

  // Mid-request disconnects: send a request, vanish without reading.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&fixture, t] {
      ScanClient client;
      std::string error;
      if (!client.connect("127.0.0.1", fixture.port(), error)) return;
      client.send_frame(FrameType::Request,
                        encode(test::planted_request(static_cast<std::uint64_t>(3000 + t))));
      client.close();
    });
  }

  // A slow reader: requests with alignments, then reads with long pauses.
  // Its stalls must not block any other tenant (the threads above finish
  // while this one is still dawdling).
  threads.emplace_back([&fixture, &transport_errors] {
    ScanClient client;
    std::string error;
    if (!client.connect("127.0.0.1", fixture.port(), error)) return;
    WireRequest req = test::planted_request(4000, "alice");
    req.align = 1;
    if (!client.send_frame(FrameType::Request, encode(req))) return;
    ClientFrame frame;
    for (int reads = 0; reads < 64; ++reads) {
      std::this_thread::sleep_for(50ms);
      if (!client.read_frame(frame, 10000ms, error)) {
        ++transport_errors;
        return;
      }
      if (frame.type == FrameType::Done || frame.type == FrameType::Error) return;
    }
  });

  for (std::thread& th : threads) th.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Quiesce: joins every connection thread, so all outcome accounting for
  // the disconnected requests has landed before the snapshot.
  fixture.server().stop();
  const obs::Snapshot snap = fixture.registry().snapshot();

  EXPECT_EQ(transport_errors.load(), 0);

  // The reconciliation invariant.
  const std::uint64_t requests = snap.counter("svc.net.requests");
  const std::uint64_t outcomes =
      snap.counter("svc.net.responses") + snap.counter("svc.net.shed") +
      snap.counter("svc.net.overloaded") + snap.counter("svc.net.invalid_requests") +
      snap.counter("svc.net.aborted");
  EXPECT_EQ(requests, outcomes);
  EXPECT_GT(requests, 0u);

  // Per-tenant counters agree with what the clients saw.
  EXPECT_EQ(snap.counter("svc.net.tenant.bob.shed"), static_cast<std::uint64_t>(bob_shed.load()));
  EXPECT_GE(snap.counter("svc.net.tenant.alice.served"),
            static_cast<std::uint64_t>(alice_ok.load()));

  // Token-bucket fairness: bob can never beat burst + rate * time (with
  // a slack term for timer coarseness); alice is not starved by bob.
  EXPECT_GE(bob_shed.load(), 1) << "storm never pressured bob's bucket";
  const double bob_budget = 2.0 + 5.0 * elapsed + 2.0;
  EXPECT_LE(static_cast<double>(bob_ok.load()), bob_budget)
      << "bob served past his token budget (elapsed " << elapsed << "s)";
  EXPECT_GE(alice_ok.load(), bob_ok.load());
  EXPECT_GE(alice_ok.load(), 24) << "alice (unthrottled) should serve nearly all requests";

  // The storm's malformed/teardown traffic must not leak connections.
  EXPECT_EQ(fixture.server().active_connections(), 0u);
}

// Cancel for a *different* request id must not cancel the in-flight scan.
TEST(NetStorm, CancelIsScopedToRequestId) {
  svc::net::ServerConfig cfg;
  cfg.service.cpu_workers = 1;
  test::NetServerFixture fixture("net_cancel_scope.swdb", cfg);

  ScanClient client = fixture.connect();
  const std::uint64_t id = 42;
  ASSERT_TRUE(client.send_frame(FrameType::Request, encode(test::planted_request(id))));
  ASSERT_TRUE(client.send_cancel(id + 1));  // someone else's id

  ClientFrame frame;
  std::string error;
  WireDone done;
  bool got_done = false;
  for (int reads = 0; reads < 64 && !got_done; ++reads) {
    ASSERT_TRUE(client.read_frame(frame, 10000ms, error)) << error;
    if (frame.type == FrameType::Done) {
      const auto d = decode_done(frame.payload);
      ASSERT_TRUE(d.has_value());
      done = *d;
      got_done = true;
    }
  }
  ASSERT_TRUE(got_done);
  EXPECT_EQ(done.status, static_cast<std::uint8_t>(svc::QueryStatus::Done))
      << "a mismatched cancel id must not cancel the scan";
}

}  // namespace
