// Seeded byte-mutation fuzz against a live loopback server.
//
// Each round takes a valid frame, applies a random mutation (bit flips,
// truncation, duplication, splicing, length/checksum corruption), writes
// it to the socket, and then proves the server neither crashed nor hung:
// every read is deadline-bounded, and a follow-up ping (reconnecting when
// the server rightfully closed the connection) must succeed. Run under
// ASan+UBSan in CI, this is the memory-safety net for the parse path.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <thread>
#include <vector>

#include "svc/net/client.hpp"
#include "svc/net/wire.hpp"
#include "net_test_util.hpp"

namespace {

using namespace swr;
using namespace swr::svc::net;
using namespace std::chrono_literals;

svc::net::ServerConfig fuzz_config() {
  svc::net::ServerConfig cfg;
  cfg.service.cpu_workers = 1;
  // A tight write timeout keeps rounds where the server answers into a
  // dead buffer from stretching the test.
  cfg.write_timeout = 2000ms;
  return cfg;
}

std::vector<std::uint8_t> seed_frame(std::mt19937_64& rng) {
  switch (rng() % 4) {
    case 0: {
      WireRequest req = test::planted_request(rng() % 1000);
      req.top_k = static_cast<std::uint32_t>(rng() % 8);
      req.align = static_cast<std::uint8_t>(rng() % 2);
      return make_frame(FrameType::Request, encode(req));
    }
    case 1: return make_frame(FrameType::Ping, {1, 2, 3, 4});
    case 2: return make_frame(FrameType::Cancel, encode(WireCancel{rng()}));
    default: {
      WireError err;
      err.code = ErrorCode::Internal;
      err.message = "x";
      return make_frame(FrameType::Error, encode(err));
    }
  }
}

void mutate(std::vector<std::uint8_t>& frame, std::mt19937_64& rng) {
  if (frame.empty()) return;
  switch (rng() % 6) {
    case 0: {  // flip a handful of bits anywhere
      const int flips = 1 + static_cast<int>(rng() % 8);
      for (int k = 0; k < flips; ++k) {
        frame[rng() % frame.size()] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
      }
      break;
    }
    case 1:  // truncate
      frame.resize(rng() % frame.size());
      break;
    case 2: {  // duplicate a slice into the middle
      const std::size_t at = rng() % frame.size();
      const std::size_t len = std::min<std::size_t>(rng() % 32, frame.size() - at);
      std::vector<std::uint8_t> slice(frame.begin() + static_cast<long>(at),
                                      frame.begin() + static_cast<long>(at + len));
      frame.insert(frame.begin() + static_cast<long>(rng() % frame.size()), slice.begin(),
                   slice.end());
      break;
    }
    case 3:  // corrupt the declared length
      if (frame.size() >= 12) frame[8 + rng() % 4] = static_cast<std::uint8_t>(rng());
      break;
    case 4:  // corrupt the checksum
      if (frame.size() >= 16) frame[12 + rng() % 4] ^= 0xff;
      break;
    default:  // random garbage prefix
      frame.insert(frame.begin(), static_cast<std::uint8_t>(rng()));
      break;
  }
}

TEST(WireFuzz, MutatedFramesNeverCrashOrHang) {
  test::NetServerFixture fixture("wire_fuzz.swdb", fuzz_config());
  std::mt19937_64 rng(0xf422u);

  ScanClient client = fixture.connect();
  int reconnects = 0;
  for (int round = 0; round < 300; ++round) {
    std::vector<std::uint8_t> frame = seed_frame(rng);
    mutate(frame, rng);
    if (!client.send_bytes(frame.data(), frame.size())) {
      // The previous round's garbage got the connection closed mid-write.
      std::string error;
      ASSERT_TRUE(client.connect("127.0.0.1", fixture.port(), error)) << error;
      ++reconnects;
      continue;
    }

    // Drain whatever the server answered (error frames, pongs, responses).
    // Bounded reads, entered only when bytes are pending — a hang fails
    // the test via the deadline instead of wedging it.
    std::this_thread::sleep_for(5ms);
    ClientFrame fr;
    std::string error;
    while (readable_now(client.fd()) && client.read_frame(fr, 250ms, error)) {
    }

    // Liveness probe. A mutation may leave the stream mid-frame (e.g. a
    // corrupted length swallowing our next header), so a failed ping is
    // only fatal if a fresh connection also fails.
    if (!client.ping(250ms)) {
      client.close();
      ASSERT_TRUE(client.connect("127.0.0.1", fixture.port(), error))
          << "server dead after round " << round << ": " << error;
      ASSERT_TRUE(client.ping(5000ms)) << "fresh connection unhealthy after round " << round;
      ++reconnects;
    }
  }

  // Finish with a real request: the server must still serve correct scans.
  std::string error;
  ScanClient fresh;
  ASSERT_TRUE(fresh.connect("127.0.0.1", fixture.port(), error)) << error;
  const ClientResponse resp = fresh.scan(test::planted_request(7777));
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_GT(resp.hits.size(), 0u);
  RecordProperty("reconnects", reconnects);
}

// Structured-payload fuzz: valid frames whose *payloads* are random bytes
// exercise every decoder's bounds checks behind a correct checksum.
TEST(WireFuzz, RandomPayloadsBehindValidFraming) {
  test::NetServerFixture fixture("wire_fuzz2.swdb", fuzz_config());
  std::mt19937_64 rng(0xbeef);

  ScanClient client = fixture.connect();
  for (int round = 0; round < 200; ++round) {
    const auto type = static_cast<FrameType>(1 + rng() % 7);
    std::vector<std::uint8_t> payload(rng() % 64);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
    ASSERT_TRUE(client.send_frame(type, payload));
    std::this_thread::sleep_for(5ms);
    ClientFrame fr;
    std::string error;
    while (readable_now(client.fd()) && client.read_frame(fr, 250ms, error)) {
    }
    if (!client.ping(500ms)) {
      client.close();
      ASSERT_TRUE(client.connect("127.0.0.1", fixture.port(), error)) << error;
    }
  }
  EXPECT_TRUE(client.ping(5000ms));
}

}  // namespace
