// svc::ScanService: parity with the direct scans (any executor mix),
// admission control, cancellation, deadlines, shutdown.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "db/builder.hpp"
#include "db/store.hpp"
#include "host/scan_engine.hpp"
#include "svc/scan_service.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace std::chrono_literals;

std::vector<seq::Sequence> service_records() {
  std::vector<seq::Sequence> recs;
  for (int k = 0; k < 40; ++k) {
    seq::Sequence s = test::random_dna(10 + 23 * static_cast<std::size_t>(k % 9), 4100 + k);
    s.set_name("rec" + std::to_string(k));
    recs.push_back(std::move(s));
  }
  recs.push_back(seq::Sequence::dna("ACGTACGTACGTACGTACGT", "planted"));
  return recs;
}

db::Store open_service_store(const std::vector<seq::Sequence>& recs, const std::string& leaf) {
  const std::string path = testing::TempDir() + "/" + leaf;
  db::build_store(recs, path);
  return db::Store::open(path);
}

void expect_same_hits(const host::ScanResult& a, const host::ScanResult& b) {
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t k = 0; k < a.hits.size(); ++k) {
    EXPECT_EQ(a.hits[k].record, b.hits[k].record) << "hit " << k;
    EXPECT_EQ(a.hits[k].result.score, b.hits[k].result.score) << "hit " << k;
    EXPECT_EQ(a.hits[k].result.end.i, b.hits[k].result.end.i) << "hit " << k;
    EXPECT_EQ(a.hits[k].result.end.j, b.hits[k].result.end.j) << "hit " << k;
  }
}

host::ScanOptions default_opt() {
  host::ScanOptions opt;
  opt.top_k = 8;
  return opt;
}

TEST(ScanService, ConfigValidation) {
  const std::vector<seq::Sequence> recs = service_records();
  svc::ServiceConfig cfg;
  cfg.cpu_workers = 0;
  cfg.boards = 0;
  EXPECT_THROW(svc::ScanService(recs, cfg), std::invalid_argument);
  cfg = {};
  cfg.queue_capacity = 0;
  EXPECT_THROW(svc::ScanService(recs, cfg), std::invalid_argument);
  cfg = {};
  cfg.chunk_records = 0;
  EXPECT_THROW(svc::ScanService(recs, cfg), std::invalid_argument);
}

TEST(ScanService, AlphabetMismatchRejected) {
  const std::vector<seq::Sequence> recs = service_records();
  svc::ScanService service(recs, {});
  EXPECT_THROW((void)service.submit(test::random_protein(10, 1), default_opt()),
               std::invalid_argument);
}

// A query served over a store — chunked over schedule_order, executed by
// several CPU workers — must be bit-identical to the direct scan.
TEST(ScanService, StoreQueryMatchesDirectScan) {
  const std::vector<seq::Sequence> recs = service_records();
  const db::Store store = open_service_store(recs, "svc_direct.swdb");
  const seq::Sequence query = seq::Sequence::dna("ACGTACGTACGTACGTACGT", "q");
  const host::ScanOptions opt = default_opt();
  const host::ScanResult direct =
      host::scan_database_cpu(query, store, align::Scoring::paper_default(), opt);

  svc::ServiceConfig cfg;
  cfg.cpu_workers = 4;
  cfg.chunk_records = 7;  // many chunks, deliberately not a divisor
  svc::ScanService service(store, cfg);
  const svc::ScanResponse resp = service.submit(query, opt).response.get();
  EXPECT_EQ(resp.status, svc::QueryStatus::Done);
  expect_same_hits(direct, resp.result);
  EXPECT_EQ(resp.result.records_scanned, recs.size());
  EXPECT_EQ(resp.result.cell_updates, direct.cell_updates);
  EXPECT_EQ(resp.result.swar8_fallbacks, direct.swar8_fallbacks);
  EXPECT_EQ(service.resolved(), 1u);
}

// Same query, but the chunks are drawn by a mix of CPU workers and
// accelerator board threads — the executor mix must not change the hits.
TEST(ScanService, MixedCpuAndBoardExecutorsBitIdentical) {
  const std::vector<seq::Sequence> recs = service_records();
  const db::Store store = open_service_store(recs, "svc_mixed.swdb");
  const seq::Sequence query = seq::Sequence::dna("ACGTACGTACGTACGTACGT", "q");
  const host::ScanOptions opt = default_opt();
  const host::ScanResult direct =
      host::scan_database_cpu(query, store, align::Scoring::paper_default(), opt);

  svc::ServiceConfig cfg;
  cfg.cpu_workers = 2;
  cfg.boards = 2;
  cfg.board_pes = 32;
  cfg.chunk_records = 5;
  svc::ScanService service(store, cfg);
  const svc::ScanResponse resp = service.submit(query, opt).response.get();
  EXPECT_EQ(resp.status, svc::QueryStatus::Done);
  expect_same_hits(direct, resp.result);
}

// Boards as the only executors: every chunk runs on the cycle-level
// accelerator model, and the hits still match the CPU engine exactly.
TEST(ScanService, BoardOnlyExecutorsBitIdentical) {
  const std::vector<seq::Sequence> recs = service_records();
  const db::Store store = open_service_store(recs, "svc_boards.swdb");
  const seq::Sequence query = seq::Sequence::dna("ACGTACGTACGTACGTACGT", "q");
  const host::ScanOptions opt = default_opt();
  const host::ScanResult direct =
      host::scan_database_cpu(query, store, align::Scoring::paper_default(), opt);

  svc::ServiceConfig cfg;
  cfg.cpu_workers = 0;
  cfg.boards = 2;
  cfg.board_pes = 32;
  cfg.chunk_records = 8;
  svc::ScanService service(store, cfg);
  const svc::ScanResponse resp = service.submit(query, opt).response.get();
  EXPECT_EQ(resp.status, svc::QueryStatus::Done);
  expect_same_hits(direct, resp.result);
  EXPECT_GT(resp.result.board_seconds, 0.0);  // the board model really ran
}

TEST(ScanService, VectorDatabaseMatchesDirectScan) {
  const std::vector<seq::Sequence> recs = service_records();
  const seq::Sequence query = seq::Sequence::dna("ACGTACGTACGTACGTACGT", "q");
  const host::ScanOptions opt = default_opt();
  const host::ScanResult direct =
      host::scan_database_cpu(query, recs, align::Scoring::paper_default(), opt);

  svc::ServiceConfig cfg;
  cfg.cpu_workers = 3;
  cfg.chunk_records = 4;
  svc::ScanService service(recs, cfg);
  const svc::ScanResponse resp = service.submit(query, opt).response.get();
  EXPECT_EQ(resp.status, svc::QueryStatus::Done);
  expect_same_hits(direct, resp.result);
}

TEST(ScanService, ManyConcurrentQueriesEachCorrect) {
  const std::vector<seq::Sequence> recs = service_records();
  const db::Store store = open_service_store(recs, "svc_many.swdb");

  std::vector<seq::Sequence> queries;
  for (int k = 0; k < 10; ++k) queries.push_back(test::random_dna(24, 7100 + k));
  queries.push_back(seq::Sequence::dna("ACGTACGTACGTACGTACGT", "planted-q"));

  svc::ServiceConfig cfg;
  cfg.cpu_workers = 4;
  cfg.max_inflight = 3;
  cfg.chunk_records = 6;
  svc::ScanService service(store, cfg);

  const host::ScanOptions opt = default_opt();
  std::vector<svc::Ticket> tickets;
  for (const auto& q : queries) tickets.push_back(service.submit(q, opt));
  for (std::size_t k = 0; k < queries.size(); ++k) {
    const svc::ScanResponse resp = tickets[k].response.get();
    EXPECT_EQ(resp.status, svc::QueryStatus::Done) << "query " << k;
    const host::ScanResult direct =
        host::scan_database_cpu(queries[k], store, align::Scoring::paper_default(), opt);
    SCOPED_TRACE("query " + std::to_string(k));
    expect_same_hits(direct, resp.result);
  }
  EXPECT_EQ(service.resolved(), queries.size());
  EXPECT_EQ(service.live(), 0u);
}

TEST(ScanService, QueueFullRejectsDeterministically) {
  const std::vector<seq::Sequence> recs = service_records();
  svc::ServiceConfig cfg;
  cfg.queue_capacity = 2;
  cfg.start_paused = true;  // nothing dispatches, so the queue must fill
  svc::ScanService service(recs, cfg);
  const seq::Sequence q = test::random_dna(20, 1);
  ASSERT_TRUE(service.try_submit(q, default_opt()).has_value());
  ASSERT_TRUE(service.try_submit(q, default_opt()).has_value());
  EXPECT_FALSE(service.try_submit(q, default_opt()).has_value());
  EXPECT_THROW((void)service.submit(q, default_opt()), std::runtime_error);
  EXPECT_EQ(service.live(), 2u);
}

TEST(ScanService, CancelBeforeDispatchResolvesCancelled) {
  const std::vector<seq::Sequence> recs = service_records();
  svc::ServiceConfig cfg;
  cfg.start_paused = true;
  svc::ScanService service(recs, cfg);
  svc::Ticket t = service.submit(test::random_dna(20, 2), default_opt());
  EXPECT_TRUE(service.cancel(t.id));
  const svc::ScanResponse resp = t.response.get();
  EXPECT_EQ(resp.status, svc::QueryStatus::Cancelled);
  EXPECT_TRUE(resp.result.hits.empty());
  EXPECT_FALSE(service.cancel(t.id));  // already resolved
  service.resume();
}

TEST(ScanService, ExpiredDeadlineResolvesDeadlineExpired) {
  const std::vector<seq::Sequence> recs = service_records();
  svc::ServiceConfig cfg;
  cfg.start_paused = true;
  svc::ScanService service(recs, cfg);
  svc::Ticket t = service.submit(test::random_dna(20, 3), default_opt(), 1ms);
  std::this_thread::sleep_for(10ms);  // deadline passes while paused
  service.resume();
  const svc::ScanResponse resp = t.response.get();
  EXPECT_EQ(resp.status, svc::QueryStatus::DeadlineExpired);
}

TEST(ScanService, DestructorResolvesLiveQueriesAsCancelled) {
  const std::vector<seq::Sequence> recs = service_records();
  std::shared_future<svc::ScanResponse> pending;
  {
    svc::ServiceConfig cfg;
    cfg.start_paused = true;
    svc::ScanService service(recs, cfg);
    pending = service.submit(test::random_dna(20, 4), default_opt()).response;
  }
  EXPECT_EQ(pending.get().status, svc::QueryStatus::Cancelled);
}

TEST(ScanService, EmptyDatabaseResolvesDoneWithNoHits) {
  const std::vector<seq::Sequence> none;
  svc::ScanService service(none, {});
  const svc::ScanResponse resp = service.submit(test::random_dna(20, 5), default_opt())
                                     .response.get();
  EXPECT_EQ(resp.status, svc::QueryStatus::Done);
  EXPECT_TRUE(resp.result.hits.empty());
  EXPECT_EQ(resp.result.records_scanned, 0u);
}

}  // namespace
