// Service stress tests: concurrent submit/cancel/deadline storms against a
// tiny admission queue, designed to run under TSan. The invariants: no
// ticket is ever lost (every future resolves), nothing resolves Failed,
// and the observability counters reconcile exactly with what the
// producers saw — admitted + rejected == attempts, terminal status
// counters sum to admitted, and record/cell totals equal the sums over
// the resolved responses.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "db/builder.hpp"
#include "db/store.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "svc/scan_service.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace std::chrono_literals;

std::vector<seq::Sequence> stress_records() {
  std::vector<seq::Sequence> recs;
  for (int k = 0; k < 48; ++k) {
    seq::Sequence s = test::random_dna(8 + 17 * static_cast<std::size_t>(k % 11), 7700 + k);
    s.set_name("rec" + std::to_string(k));
    recs.push_back(std::move(s));
  }
  return recs;
}

struct StormOutcome {
  std::uint64_t attempts = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t done = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t failed = 0;
  std::uint64_t records_scanned = 0;
  std::uint64_t cells = 0;
  std::uint64_t swar8_fallbacks = 0;
};

// Runs `producers` threads, each submitting `per_producer` queries against
// `service`; every admitted ticket's future is drained and tallied.
// `cancel_every` > 0 cancels every n-th admitted query immediately;
// `deadline` (zero = none) is applied to every submission.
StormOutcome run_storm(svc::ScanService& service, int producers, int per_producer,
                       int cancel_every, std::chrono::milliseconds deadline) {
  std::mutex mu;
  StormOutcome total;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      StormOutcome local;
      std::vector<svc::Ticket> tickets;
      for (int i = 0; i < per_producer; ++i) {
        host::ScanOptions opt;
        opt.top_k = 4;
        seq::Sequence query =
            test::random_dna(12 + static_cast<std::size_t>((p + i) % 7), 900 + p * 131 + i);
        ++local.attempts;
        std::optional<svc::Ticket> t = service.try_submit(std::move(query), opt, deadline);
        if (!t) {
          ++local.rejected;
          continue;
        }
        ++local.admitted;
        if (cancel_every > 0 && i % cancel_every == 0) (void)service.cancel(t->id);
        tickets.push_back(std::move(*t));
      }
      // Drain every future this producer holds — none may hang or be lost.
      for (svc::Ticket& t : tickets) {
        const svc::ScanResponse resp = t.response.get();
        switch (resp.status) {
          case svc::QueryStatus::Done: ++local.done; break;
          case svc::QueryStatus::Cancelled: ++local.cancelled; break;
          case svc::QueryStatus::DeadlineExpired: ++local.deadline_expired; break;
          case svc::QueryStatus::Failed: ++local.failed; break;
        }
        local.records_scanned += resp.result.records_scanned;
        local.cells += resp.result.cell_updates;
        local.swar8_fallbacks += resp.result.swar8_fallbacks;
      }
      const std::lock_guard<std::mutex> lock(mu);
      total.attempts += local.attempts;
      total.admitted += local.admitted;
      total.rejected += local.rejected;
      total.done += local.done;
      total.cancelled += local.cancelled;
      total.deadline_expired += local.deadline_expired;
      total.failed += local.failed;
      total.records_scanned += local.records_scanned;
      total.cells += local.cells;
      total.swar8_fallbacks += local.swar8_fallbacks;
    });
  }
  for (std::thread& th : threads) th.join();
  return total;
}

void expect_reconciled(const StormOutcome& got, const obs::Registry& reg,
                       const svc::ScanService& service) {
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(got.admitted + got.rejected, got.attempts);
  EXPECT_EQ(got.done + got.cancelled + got.deadline_expired + got.failed, got.admitted);
  EXPECT_EQ(got.failed, 0u);

  EXPECT_EQ(snap.counter("svc.queries_admitted"), got.admitted);
  EXPECT_EQ(snap.counter("svc.queries_rejected"), got.rejected);
  EXPECT_EQ(snap.counter("svc.queries_done"), got.done);
  EXPECT_EQ(snap.counter("svc.queries_cancelled"), got.cancelled);
  EXPECT_EQ(snap.counter("svc.queries_deadline_expired"), got.deadline_expired);
  EXPECT_EQ(snap.counter("svc.queries_failed"), 0u);
  EXPECT_EQ(snap.counter("svc.records_scanned"), got.records_scanned);
  EXPECT_EQ(snap.counter("svc.cells"), got.cells);
  EXPECT_EQ(snap.counter("svc.swar8_fallbacks"), got.swar8_fallbacks);

  EXPECT_EQ(service.resolved(), got.admitted);
  EXPECT_EQ(service.live(), 0u);
  // At rest the depth/dispatch gauges must have returned to zero.
  for (const auto& [name, value] : snap.gauges) {
    EXPECT_EQ(value, 0) << name;
  }
  // Every resolved query observed one end-to-end latency sample.
  for (const auto& [name, hist] : snap.histograms) {
    if (name == "svc.query_us") {
      EXPECT_EQ(hist.count, got.admitted);
    }
  }
}

// Many producers against a deliberately tiny queue: heavy rejection
// traffic, but never a lost or unresolved ticket.
TEST(ServiceStress, TinyQueueSubmitStorm) {
  const std::vector<seq::Sequence> recs = stress_records();
  obs::Registry reg;
  svc::ServiceConfig cfg;
  cfg.cpu_workers = 3;
  cfg.queue_capacity = 2;  // almost everything races against a full queue
  cfg.max_inflight = 2;
  cfg.chunk_records = 16;
  cfg.metrics = &reg;
  StormOutcome got;
  {
    svc::ScanService service(recs, cfg);
    got = run_storm(service, /*producers=*/8, /*per_producer=*/40, /*cancel_every=*/0, 0ms);
    EXPECT_GT(got.admitted, 0u);
    expect_reconciled(got, reg, service);
  }
}

// Cancellation storm: every other admitted query is cancelled right after
// submission, racing the dispatcher. Cancelled queries must still resolve
// (with partial results) and the status counters must still sum up.
TEST(ServiceStress, CancelStorm) {
  const std::vector<seq::Sequence> recs = stress_records();
  obs::Registry reg;
  obs::TraceRing trace(4'096);
  svc::ServiceConfig cfg;
  cfg.cpu_workers = 2;
  cfg.queue_capacity = 8;
  cfg.chunk_records = 8;
  cfg.metrics = &reg;
  cfg.trace = &trace;
  StormOutcome got;
  {
    svc::ScanService service(recs, cfg);
    got = run_storm(service, /*producers=*/6, /*per_producer=*/30, /*cancel_every=*/2, 0ms);
    expect_reconciled(got, reg, service);
  }
  // Every resolved query left exactly one trace span.
  EXPECT_EQ(trace.recorded(), got.admitted);
}

// Deadline storm: a zero-millisecond deadline expires every query that is
// not resolved instantaneously; whichever way each race lands, the
// counters and futures must reconcile.
TEST(ServiceStress, DeadlineStorm) {
  const std::vector<seq::Sequence> recs = stress_records();
  obs::Registry reg;
  svc::ServiceConfig cfg;
  cfg.cpu_workers = 2;
  cfg.queue_capacity = 4;
  cfg.chunk_records = 4;
  cfg.metrics = &reg;
  StormOutcome got;
  {
    svc::ScanService service(recs, cfg);
    got = run_storm(service, /*producers=*/4, /*per_producer=*/25, /*cancel_every=*/0, 1ms);
    expect_reconciled(got, reg, service);
  }
}

// Mixed-executor storm over a store, with cancels AND deadlines at once —
// the worst-case interleaving, still no lost tickets.
TEST(ServiceStress, MixedExecutorCancelAndDeadlineStorm) {
  const std::vector<seq::Sequence> recs = stress_records();
  const std::string path = testing::TempDir() + "/svc_stress.swdb";
  db::build_store(recs, path);
  const db::Store store = db::Store::open(path);

  obs::Registry reg;
  svc::ServiceConfig cfg;
  cfg.cpu_workers = 2;
  cfg.boards = 2;
  cfg.board_pes = 16;
  cfg.queue_capacity = 3;
  cfg.chunk_records = 8;
  cfg.metrics = &reg;
  StormOutcome got;
  {
    svc::ScanService service(store, cfg);
    got = run_storm(service, /*producers=*/6, /*per_producer=*/20, /*cancel_every=*/3, 5ms);
    expect_reconciled(got, reg, service);
  }
}

// Shutdown race: destroy the service while producers still hold futures.
// The destructor must resolve every live query (as Cancelled) before the
// futures are drained — nothing may hang.
TEST(ServiceStress, ShutdownResolvesEverything) {
  const std::vector<seq::Sequence> recs = stress_records();
  obs::Registry reg;
  svc::ServiceConfig cfg;
  cfg.cpu_workers = 1;
  cfg.queue_capacity = 16;
  cfg.chunk_records = 4;
  cfg.start_paused = true;  // nothing dispatches, so everything is live
  cfg.metrics = &reg;

  std::vector<svc::Ticket> tickets;
  std::uint64_t admitted = 0;
  {
    svc::ScanService service(recs, cfg);
    for (int i = 0; i < 16; ++i) {
      host::ScanOptions opt;
      opt.top_k = 4;
      auto t = service.try_submit(test::random_dna(10, 50 + i), opt);
      ASSERT_TRUE(t.has_value());
      tickets.push_back(std::move(*t));
      ++admitted;
    }
  }  // destructor: joins workers, resolves all live queries
  std::uint64_t cancelled = 0;
  for (svc::Ticket& t : tickets) {
    const svc::ScanResponse resp = t.response.get();
    if (resp.status == svc::QueryStatus::Cancelled) ++cancelled;
  }
  EXPECT_EQ(cancelled, admitted);
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("svc.queries_admitted"), admitted);
  EXPECT_EQ(snap.counter("svc.queries_cancelled"), cancelled);
}

}  // namespace
