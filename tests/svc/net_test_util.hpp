// Shared fixture for the svc/net test rig: a small deterministic store on
// disk and a loopback ScanServer wired to a fresh metrics registry.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "db/builder.hpp"
#include "db/store.hpp"
#include "obs/metrics.hpp"
#include "svc/net/client.hpp"
#include "svc/net/server.hpp"
#include "test_util.hpp"

namespace swr::test {

inline std::vector<seq::Sequence> net_records(int n = 48, std::uint64_t seed = 9100) {
  std::vector<seq::Sequence> recs;
  for (int k = 0; k < n; ++k) {
    seq::Sequence s = random_dna(12 + 17 * static_cast<std::size_t>(k % 7),
                                 seed + static_cast<std::uint64_t>(k));
    s.set_name("rec" + std::to_string(k));
    recs.push_back(std::move(s));
  }
  recs.push_back(seq::Sequence::dna("ACGTACGTACGTACGTACGTACGT", "planted"));
  return recs;
}

/// Builds a .swdb (with its default k-mer index) under the test temp dir.
inline std::string build_net_store(const std::vector<seq::Sequence>& recs,
                                   const std::string& leaf) {
  const std::string path = testing::TempDir() + "/" + unique_leaf(leaf);
  db::build_store(recs, path);
  return path;
}

/// Store + registry + running loopback server, torn down in order.
class NetServerFixture {
 public:
  explicit NetServerFixture(const std::string& leaf,
                            svc::net::ServerConfig cfg = {},
                            std::vector<seq::Sequence> recs = net_records())
      : store_(db::Store::open(build_net_store(recs, leaf))) {
    cfg.service.metrics = &registry_;
    cfg.metrics = &registry_;
    server_ = std::make_unique<svc::net::ScanServer>(store_, cfg);
    std::string error;
    if (!server_->start(error)) throw std::runtime_error("server start failed: " + error);
  }

  [[nodiscard]] const db::Store& store() const { return store_; }
  [[nodiscard]] obs::Registry& registry() { return registry_; }
  [[nodiscard]] svc::net::ScanServer& server() { return *server_; }
  [[nodiscard]] std::uint16_t port() const { return server_->port(); }

  /// A connected client (fails the test on connection error).
  [[nodiscard]] svc::net::ScanClient connect() {
    svc::net::ScanClient client;
    std::string error;
    EXPECT_TRUE(client.connect("127.0.0.1", port(), error)) << error;
    return client;
  }

 private:
  obs::Registry registry_;
  db::Store store_;
  std::unique_ptr<svc::net::ScanServer> server_;
};

/// A request the fixture store always finds hits for.
inline svc::net::WireRequest planted_request(std::uint64_t id, const std::string& tenant = "") {
  svc::net::WireRequest req;
  req.request_id = id;
  req.tenant = tenant;
  req.query_name = "q";
  req.query = "ACGTACGTACGTACGTACGT";
  req.top_k = 5;
  req.min_score = 1;
  return req;
}

}  // namespace swr::test
