// Wire-protocol conformance: golden byte vectors (the committed wire ABI),
// encode/decode round trips, decoder rejection of structural violations,
// and the server's malformed-frame contract — every malformed class gets
// one typed Error frame and the connection keeps working afterwards.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "svc/net/client.hpp"
#include "svc/net/server.hpp"
#include "svc/net/wire.hpp"
#include "net_test_util.hpp"

namespace {

using namespace swr;
using namespace swr::svc::net;
using namespace std::chrono_literals;

// ---- golden vectors -------------------------------------------------------
// These bytes ARE the protocol. A failure here means the wire ABI changed;
// that requires a version bump, not a vector update.

TEST(WireGolden, RequestPayload) {
  WireRequest req;
  req.request_id = 0x0102030405060708ull;
  req.tenant = "t1";
  req.query_name = "q";
  req.query = "ACGT";
  req.top_k = 5;
  req.min_score = 7;
  req.filter = 1;
  req.filter_threshold = 9;
  req.align = 1;
  req.max_hits = 3;
  req.deadline_ms = 250;

  const std::vector<std::uint8_t> expected = {
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // request_id
      0x02, 0x00, 0x00, 0x00, 0x74, 0x31,              // "t1"
      0x01, 0x00, 0x00, 0x00, 0x71,                    // "q"
      0x04, 0x00, 0x00, 0x00, 0x41, 0x43, 0x47, 0x54,  // "ACGT"
      0x05, 0x00, 0x00, 0x00,                          // top_k
      0x07, 0x00, 0x00, 0x00,                          // min_score
      0x01,                                            // filter
      0x09, 0x00, 0x00, 0x00,                          // filter_threshold
      0x01,                                            // align
      0x03, 0x00, 0x00, 0x00,                          // max_hits
      0xfa, 0x00, 0x00, 0x00,                          // deadline_ms
  };
  EXPECT_EQ(encode(req), expected);
  EXPECT_EQ(frame_checksum(expected.data(), expected.size()), 0x6c8fe8c6u);

  const auto back = decode_request(expected);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->request_id, req.request_id);
  EXPECT_EQ(back->tenant, "t1");
  EXPECT_EQ(back->query, "ACGT");
  EXPECT_EQ(back->deadline_ms, 250u);
}

TEST(WireGolden, CancelFrame) {
  const std::vector<std::uint8_t> frame = make_frame(FrameType::Cancel, encode(WireCancel{42}));
  const std::vector<std::uint8_t> expected = {
      'S',  'W',  'R',  'F',                           // magic
      0x01,                                            // version
      0x07,                                            // type = Cancel
      0x00, 0x00,                                      // reserved
      0x08, 0x00, 0x00, 0x00,                          // length
      0x84, 0x07, 0xb3, 0xc8,                          // checksum
      0x2a, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // request_id = 42
  };
  EXPECT_EQ(frame, expected);
}

TEST(WireGolden, ErrorPayload) {
  const std::vector<std::uint8_t> bytes = {
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // request_id
      0x07, 0x00,                                      // code = Shed
      0xdc, 0x05, 0x00, 0x00,                          // retry_after_ms = 1500
      0x04, 0x00, 0x00, 0x00, 's', 'l', 'o', 'w',      // message
  };
  EXPECT_EQ(frame_checksum(bytes.data(), bytes.size()), 0x7c7d850du);
  const auto err = decode_error(bytes);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ErrorCode::Shed);
  EXPECT_EQ(err->retry_after_ms, 1500u);
  EXPECT_EQ(err->message, "slow");
  EXPECT_EQ(encode(*err), bytes);
}

TEST(WireGolden, EmptyPayloadChecksum) {
  EXPECT_EQ(frame_checksum(nullptr, 0), 0x4fd0bfc1u);
}

// ---- round trips ----------------------------------------------------------

std::string random_text(std::mt19937_64& rng, std::size_t max_len) {
  std::uniform_int_distribution<std::size_t> len(0, max_len);
  std::uniform_int_distribution<int> ch(0, 255);
  std::string s(len(rng), '\0');
  for (char& c : s) c = static_cast<char>(ch(rng));
  return s;
}

TEST(WireRoundTrip, Request) {
  std::mt19937_64 rng(101);
  for (int k = 0; k < 200; ++k) {
    WireRequest m;
    m.request_id = rng();
    m.tenant = random_text(rng, 12);
    m.query_name = random_text(rng, 30);
    m.query = random_text(rng, 200);
    m.top_k = static_cast<std::uint32_t>(rng());
    m.min_score = static_cast<std::int32_t>(rng());
    m.filter = static_cast<std::uint8_t>(rng() % 2);
    m.filter_threshold = static_cast<std::int32_t>(rng());
    m.align = static_cast<std::uint8_t>(rng() % 2);
    m.max_hits = static_cast<std::uint32_t>(rng());
    m.deadline_ms = static_cast<std::uint32_t>(rng());
    const auto back = decode_request(encode(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->request_id, m.request_id);
    EXPECT_EQ(back->tenant, m.tenant);
    EXPECT_EQ(back->query_name, m.query_name);
    EXPECT_EQ(back->query, m.query);
    EXPECT_EQ(back->top_k, m.top_k);
    EXPECT_EQ(back->min_score, m.min_score);
    EXPECT_EQ(back->filter, m.filter);
    EXPECT_EQ(back->filter_threshold, m.filter_threshold);
    EXPECT_EQ(back->align, m.align);
    EXPECT_EQ(back->max_hits, m.max_hits);
    EXPECT_EQ(back->deadline_ms, m.deadline_ms);
  }
}

TEST(WireRoundTrip, HitWithAndWithoutAlignment) {
  std::mt19937_64 rng(202);
  for (int k = 0; k < 200; ++k) {
    WireHit m;
    m.request_id = rng();
    m.rank = static_cast<std::uint32_t>(rng());
    m.record = static_cast<std::uint32_t>(rng());
    m.name = random_text(rng, 40);
    m.score = static_cast<std::int32_t>(rng());
    m.end_i = static_cast<std::uint32_t>(rng());
    m.end_j = static_cast<std::uint32_t>(rng());
    m.has_alignment = static_cast<std::uint8_t>(rng() % 2);
    if (m.has_alignment) {
      m.begin_i = static_cast<std::uint32_t>(rng());
      m.begin_j = static_cast<std::uint32_t>(rng());
      m.identity_bits = rng();
      m.coverage_bits = rng();
      m.cigar = random_text(rng, 60);
    }
    const auto back = decode_hit(encode(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->name, m.name);
    EXPECT_EQ(back->score, m.score);
    EXPECT_EQ(back->has_alignment, m.has_alignment);
    EXPECT_EQ(back->begin_i, m.begin_i);
    EXPECT_EQ(back->identity_bits, m.identity_bits);
    EXPECT_EQ(back->cigar, m.cigar);
  }
}

TEST(WireRoundTrip, DoneErrorCancel) {
  std::mt19937_64 rng(303);
  for (int k = 0; k < 200; ++k) {
    WireDone d;
    d.request_id = rng();
    d.status = static_cast<std::uint8_t>(rng() % 4);
    d.error = random_text(rng, 50);
    d.hit_count = static_cast<std::uint32_t>(rng());
    d.records_scanned = rng();
    d.cell_updates = rng();
    d.swar8_fallbacks = rng();
    d.filter_candidates = rng();
    d.filter_rescored = rng();
    d.filter_rejected = rng();
    d.filter_recall_guard = rng();
    const auto dback = decode_done(encode(d));
    ASSERT_TRUE(dback.has_value());
    EXPECT_EQ(dback->error, d.error);
    EXPECT_EQ(dback->cell_updates, d.cell_updates);
    EXPECT_EQ(dback->filter_recall_guard, d.filter_recall_guard);

    WireError e;
    e.request_id = rng();
    e.code = static_cast<ErrorCode>(1 + rng() % 10);
    e.retry_after_ms = static_cast<std::uint32_t>(rng());
    e.message = random_text(rng, 50);
    const auto eback = decode_error(encode(e));
    ASSERT_TRUE(eback.has_value());
    EXPECT_EQ(eback->code, e.code);
    EXPECT_EQ(eback->retry_after_ms, e.retry_after_ms);
    EXPECT_EQ(eback->message, e.message);

    const auto cback = decode_cancel(encode(WireCancel{rng()}));
    ASSERT_TRUE(cback.has_value());
  }
}

// ---- decoder rejections ---------------------------------------------------

TEST(WireDecode, RejectsEveryTruncation) {
  WireRequest req;
  req.request_id = 7;
  req.tenant = "acme";
  req.query_name = "qname";
  req.query = "ACGTACGT";
  const std::vector<std::uint8_t> full = encode(req);
  for (std::size_t n = 0; n < full.size(); ++n) {
    const std::vector<std::uint8_t> cut(full.begin(), full.begin() + static_cast<long>(n));
    EXPECT_FALSE(decode_request(cut).has_value()) << "prefix " << n;
  }
}

TEST(WireDecode, RejectsTrailingGarbage) {
  for (std::uint8_t extra : {std::uint8_t{0x00}, std::uint8_t{0xff}}) {
    auto p = encode(WireCancel{9});
    p.push_back(extra);
    EXPECT_FALSE(decode_cancel(p).has_value());
    auto q = encode(test::planted_request(1));
    q.push_back(extra);
    EXPECT_FALSE(decode_request(q).has_value());
  }
}

TEST(WireDecode, RejectsStringOverrunningPayload) {
  // A tenant length field claiming more bytes than the payload holds.
  std::vector<std::uint8_t> p(8, 0);              // request_id
  p.insert(p.end(), {0xff, 0xff, 0xff, 0x7f});    // tenant length = 2^31-1
  EXPECT_FALSE(decode_request(p).has_value());
}

TEST(WireDecode, RejectsBadEnumValues) {
  WireHit h;
  h.name = "r";
  auto p = encode(h);
  // has_alignment is the last byte of the alignment-free layout.
  p.back() = 2;
  EXPECT_FALSE(decode_hit(p).has_value());

  WireError e;
  e.message = "m";
  auto q = encode(e);
  q[8] = 0;  // code low byte -> 0 (below BadMagic)
  q[9] = 0;
  EXPECT_FALSE(decode_error(q).has_value());
  q[8] = 11;  // above Shutdown
  EXPECT_FALSE(decode_error(q).has_value());
}

TEST(WireHeader, ParseClassesAndPrecedence) {
  FrameHeader h;
  h.type = FrameType::Ping;
  h.length = 4;
  h.checksum = 0xdeadbeef;
  std::uint8_t buf[kFrameHeaderBytes];
  put_frame_header(h, buf);

  FrameHeader out;
  EXPECT_EQ(parse_frame_header(buf, out), HeaderStatus::Ok);
  EXPECT_EQ(out.length, 4u);
  EXPECT_EQ(out.checksum, 0xdeadbeefu);
  EXPECT_EQ(out.type, FrameType::Ping);

  std::uint8_t bad[kFrameHeaderBytes];
  std::memcpy(bad, buf, sizeof buf);
  bad[0] = 'X';
  EXPECT_EQ(parse_frame_header(bad, out), HeaderStatus::BadMagic);

  std::memcpy(bad, buf, sizeof buf);
  bad[4] = kWireVersion + 1;
  EXPECT_EQ(parse_frame_header(bad, out), HeaderStatus::BadVersion);
  EXPECT_EQ(out.length, 4u) << "resync needs the declared length";

  std::memcpy(bad, buf, sizeof buf);
  bad[5] = 0x7f;
  EXPECT_EQ(parse_frame_header(bad, out), HeaderStatus::BadType);

  // Oversized wins over a bad version: the length cannot be trusted, so
  // its no-consume resync policy must apply.
  std::memcpy(bad, buf, sizeof buf);
  bad[4] = kWireVersion + 1;
  bad[11] = 0xff;  // length high byte -> way past kMaxFrameBytes
  EXPECT_EQ(parse_frame_header(bad, out), HeaderStatus::Oversized);
}

// ---- server malformed-frame contract --------------------------------------

class WireConformance : public ::testing::Test {
 protected:
  static svc::net::ServerConfig config() {
    svc::net::ServerConfig cfg;
    cfg.service.cpu_workers = 1;
    return cfg;
  }

  test::NetServerFixture fixture_{"wire_conformance.swdb", config()};

  // Asserts the next frame is Error(code), then proves the connection
  // still works end to end: ping echoes and a real scan resolves.
  void expect_error_then_healthy(ScanClient& client, ErrorCode code) {
    ClientFrame frame;
    std::string error;
    ASSERT_TRUE(client.read_frame(frame, 5000ms, error)) << error;
    ASSERT_EQ(frame.type, FrameType::Error);
    const auto err = decode_error(frame.payload);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->code, code);
    EXPECT_EQ(err->request_id, 0u) << "header-level errors are unattributable";

    EXPECT_TRUE(client.ping());
    const ClientResponse resp = client.scan(test::planted_request(99));
    EXPECT_TRUE(resp.ok) << resp.error;
    EXPECT_GT(resp.hits.size(), 0u);
  }
};

TEST_F(WireConformance, BadMagicRecovers) {
  ScanClient client = fixture_.connect();
  std::uint8_t junk[kFrameHeaderBytes];
  std::memset(junk, 'Z', sizeof junk);
  ASSERT_TRUE(client.send_bytes(junk, sizeof junk));
  expect_error_then_healthy(client, ErrorCode::BadMagic);
  EXPECT_GE(fixture_.registry().snapshot().counter("svc.net.errors.bad_magic"), 1u);
}

TEST_F(WireConformance, BadVersionRecovers) {
  ScanClient client = fixture_.connect();
  std::vector<std::uint8_t> frame = make_frame(FrameType::Ping, {1, 2, 3});
  frame[4] = kWireVersion + 1;
  ASSERT_TRUE(client.send_bytes(frame.data(), frame.size()));
  expect_error_then_healthy(client, ErrorCode::BadVersion);
  EXPECT_GE(fixture_.registry().snapshot().counter("svc.net.errors.bad_version"), 1u);
}

TEST_F(WireConformance, BadChecksumRecovers) {
  ScanClient client = fixture_.connect();
  std::vector<std::uint8_t> frame = make_frame(FrameType::Ping, {1, 2, 3});
  frame[12] ^= 0xff;
  ASSERT_TRUE(client.send_bytes(frame.data(), frame.size()));
  expect_error_then_healthy(client, ErrorCode::BadChecksum);
  EXPECT_GE(fixture_.registry().snapshot().counter("svc.net.errors.bad_checksum"), 1u);
}

TEST_F(WireConformance, OversizedRecoversWithoutConsuming) {
  ScanClient client = fixture_.connect();
  FrameHeader h;
  h.type = FrameType::Request;
  h.length = static_cast<std::uint32_t>(kMaxFrameBytes) + 1;
  std::uint8_t buf[kFrameHeaderBytes];
  put_frame_header(h, buf);
  // Only the header goes out — if the server tried to consume the claimed
  // payload it would hang here, and the follow-up ping would time out.
  ASSERT_TRUE(client.send_bytes(buf, sizeof buf));
  expect_error_then_healthy(client, ErrorCode::Oversized);
  EXPECT_GE(fixture_.registry().snapshot().counter("svc.net.errors.oversized"), 1u);
}

TEST_F(WireConformance, BadTypeRecovers) {
  ScanClient client = fixture_.connect();
  std::vector<std::uint8_t> frame = make_frame(FrameType::Ping, {9, 9});
  frame[5] = 0x6e;
  ASSERT_TRUE(client.send_bytes(frame.data(), frame.size()));
  expect_error_then_healthy(client, ErrorCode::BadType);
  EXPECT_GE(fixture_.registry().snapshot().counter("svc.net.errors.bad_type"), 1u);
}

TEST_F(WireConformance, ServerOnlyFrameTypeIsBadRequest) {
  ScanClient client = fixture_.connect();
  ASSERT_TRUE(client.send_frame(FrameType::Done, encode(WireDone{})));
  expect_error_then_healthy(client, ErrorCode::BadRequest);
}

TEST_F(WireConformance, MalformedRequestPayloadIsBadRequest) {
  ScanClient client = fixture_.connect();
  // Structurally valid frame, undecodable Request payload.
  ASSERT_TRUE(client.send_frame(FrameType::Request, {0xde, 0xad}));
  expect_error_then_healthy(client, ErrorCode::BadRequest);
  EXPECT_GE(fixture_.registry().snapshot().counter("svc.net.errors.bad_request"), 1u);
}

TEST_F(WireConformance, InvalidResidueQueryIsBadRequest) {
  ScanClient client = fixture_.connect();
  WireRequest req = test::planted_request(5);
  req.query = "NOT-DNA-123";
  const ClientResponse resp = client.scan(req);
  EXPECT_FALSE(resp.ok);
  ASSERT_EQ(resp.errors.size(), 1u);
  EXPECT_EQ(resp.errors[0].code, ErrorCode::BadRequest);
  EXPECT_EQ(resp.errors[0].request_id, 5u);
  // The connection survives a rejected request.
  EXPECT_TRUE(client.ping());
}

TEST_F(WireConformance, TruncatedFrameClosesConnectionServerStaysUp) {
  {
    ScanClient client = fixture_.connect();
    std::vector<std::uint8_t> frame = make_frame(FrameType::Ping, {1, 2, 3, 4});
    ASSERT_TRUE(client.send_bytes(frame.data(), frame.size() - 2));
    client.close();  // EOF mid-frame
  }
  // A fresh connection is served normally.
  ScanClient client = fixture_.connect();
  EXPECT_TRUE(client.ping());
  const ClientResponse resp = client.scan(test::planted_request(1));
  EXPECT_TRUE(resp.ok) << resp.error;
}

TEST_F(WireConformance, PingEchoesPayload) {
  ScanClient client = fixture_.connect();
  const std::vector<std::uint8_t> token{0xab, 0x00, 0xcd};
  ASSERT_TRUE(client.send_frame(FrameType::Ping, token));
  ClientFrame frame;
  std::string error;
  ASSERT_TRUE(client.read_frame(frame, 5000ms, error)) << error;
  EXPECT_EQ(frame.type, FrameType::Pong);
  EXPECT_EQ(frame.payload, token);
}

}  // namespace
