// Cache + admission correctness: token-bucket math under a fake clock,
// result-cache LRU byte bounds and metrics, profile-cache reuse with
// bit-identical hits, and generation-keyed invalidation — a rebuilt store
// can never serve stale cached results.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "db/builder.hpp"
#include "db/store.hpp"
#include "host/profile_cache.hpp"
#include "host/scan_engine.hpp"
#include "obs/metrics.hpp"
#include "svc/net/result_cache.hpp"
#include "svc/net/token_bucket.hpp"
#include "net_test_util.hpp"

namespace {

using namespace swr;
using namespace swr::svc::net;
using namespace std::chrono_literals;

constexpr std::uint64_t kNs = 1;
constexpr std::uint64_t kMs = 1000000;
constexpr std::uint64_t kSec = 1000000000;

// ---- token bucket ---------------------------------------------------------

TEST(TokenBucket, BurstThenRefillAtRate) {
  TokenBucket bucket(2.0, 3.0);  // 2 tokens/s, burst 3
  std::uint32_t retry = 0;
  std::uint64_t now = kSec;  // first call pins the clock

  EXPECT_TRUE(bucket.try_acquire(now, &retry));
  EXPECT_TRUE(bucket.try_acquire(now, &retry));
  EXPECT_TRUE(bucket.try_acquire(now, &retry));
  EXPECT_FALSE(bucket.try_acquire(now, &retry)) << "burst exhausted";
  // One token accrues in 500ms; the hint rounds up past the deficit.
  EXPECT_GE(retry, 1u);
  EXPECT_LE(retry, 501u);

  now += 500 * kMs;
  EXPECT_TRUE(bucket.try_acquire(now, &retry)) << "refilled at 2/s";
  EXPECT_FALSE(bucket.try_acquire(now, &retry));
}

TEST(TokenBucket, CapsAtBurst) {
  TokenBucket bucket(100.0, 2.0);
  std::uint32_t retry = 0;
  std::uint64_t now = kSec;
  EXPECT_TRUE(bucket.try_acquire(now, &retry));
  now += 3600 * kSec;  // an hour idle refills to burst, not rate*3600
  EXPECT_TRUE(bucket.try_acquire(now, &retry));
  EXPECT_TRUE(bucket.try_acquire(now, &retry));
  EXPECT_FALSE(bucket.try_acquire(now, &retry));
}

TEST(TokenBucket, WaitingTheHintAlwaysFindsAToken) {
  TokenBucket bucket(7.0, 1.0);
  std::uint32_t retry = 0;
  std::uint64_t now = kSec;
  EXPECT_TRUE(bucket.try_acquire(now, &retry));
  for (int k = 0; k < 20; ++k) {
    ASSERT_FALSE(bucket.try_acquire(now, &retry));
    now += static_cast<std::uint64_t>(retry) * kMs;
    ASSERT_TRUE(bucket.try_acquire(now, &retry)) << "hint " << retry << "ms undershot";
  }
}

TEST(TokenBucket, ZeroRateDisablesLimiting) {
  TokenBucket bucket(0.0, 1.0);
  for (int k = 0; k < 100; ++k) EXPECT_TRUE(bucket.try_acquire(kNs * 5, nullptr));
}

TEST(TenantTable, OverridesAndIsolation) {
  TenantTable table({0.0, 1.0}, {{"tight", {1.0, 1.0}}});
  EXPECT_TRUE(table.configured("tight"));
  EXPECT_FALSE(table.configured("anyone"));

  std::uint64_t now = kSec;
  EXPECT_TRUE(table.try_acquire("tight", now, nullptr));
  EXPECT_FALSE(table.try_acquire("tight", now, nullptr));
  // Other tenants ride the (unlimited) default and are unaffected.
  for (int k = 0; k < 10; ++k) EXPECT_TRUE(table.try_acquire("anyone", now, nullptr));
}

// ---- result cache (unit) --------------------------------------------------

CachedResponse small_response(const std::string& name, std::uint32_t score) {
  CachedResponse r;
  WireHit h;
  h.rank = 1;
  h.name = name;
  h.score = static_cast<std::int32_t>(score);
  r.hits.push_back(h);
  r.trailer.hit_count = 1;
  r.trailer.records_scanned = 10;
  return r;
}

TEST(ResultCache, HitMissCountersAndPromotion) {
  obs::Registry reg;
  ResultCache cache(1 << 20, &reg, "svc.cache.result");
  const ResultKey a{1, 2, 3};
  const ResultKey b{4, 5, 6};

  EXPECT_FALSE(cache.lookup(a).has_value());
  cache.insert(a, small_response("a", 10));
  cache.insert(b, small_response("b", 20));
  const auto hit = cache.lookup(a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->hits[0].name, "a");

  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("svc.cache.result.hits"), 1u);
  EXPECT_EQ(snap.counter("svc.cache.result.misses"), 1u);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.bytes(),
            ResultCache::response_bytes(small_response("a", 10)) +
                ResultCache::response_bytes(small_response("b", 20)));
}

TEST(ResultCache, EvictsLeastRecentlyUsedUnderByteBound) {
  obs::Registry reg;
  const std::size_t one = ResultCache::response_bytes(small_response("xx", 1));
  ResultCache cache(one * 2, &reg, "svc.cache.result");

  cache.insert({1, 0, 0}, small_response("r1", 1));
  cache.insert({2, 0, 0}, small_response("r2", 1));
  ASSERT_TRUE(cache.lookup({1, 0, 0}).has_value());  // promote r1 to MRU

  cache.insert({3, 0, 0}, small_response("r3", 1));  // evicts r2 (LRU)
  EXPECT_LE(cache.bytes(), cache.max_bytes());
  EXPECT_TRUE(cache.lookup({1, 0, 0}).has_value());
  EXPECT_FALSE(cache.lookup({2, 0, 0}).has_value());
  EXPECT_TRUE(cache.lookup({3, 0, 0}).has_value());
  EXPECT_EQ(reg.snapshot().counter("svc.cache.result.evictions"), 1u);
}

TEST(ResultCache, OversizedResponseAndZeroBoundAreDropped) {
  ResultCache off(0, nullptr, "svc.cache.result");
  off.insert({1, 1, 1}, small_response("x", 1));
  EXPECT_FALSE(off.lookup({1, 1, 1}).has_value());
  EXPECT_EQ(off.entries(), 0u);

  ResultCache tiny(8, nullptr, "svc.cache.result");  // smaller than any response
  tiny.insert({1, 1, 1}, small_response("x", 1));
  EXPECT_EQ(tiny.entries(), 0u);
}

TEST(ResultCache, OptionsHashCoversResponseShapingFieldsOnly) {
  WireRequest a = test::planted_request(1, "alice");
  WireRequest b = a;
  b.request_id = 999;
  b.tenant = "bob";
  b.query_name = "other-name";
  EXPECT_EQ(request_options_hash(a), request_options_hash(b))
      << "request identity fields must not split cache entries";

  WireRequest c = a;
  c.top_k = a.top_k + 1;
  EXPECT_NE(request_options_hash(a), request_options_hash(c));
  WireRequest d = a;
  d.align = 1;
  EXPECT_NE(request_options_hash(a), request_options_hash(d));
}

// ---- store generation -----------------------------------------------------

TEST(StoreGeneration, StableAcrossOpensChangesWithContent) {
  const std::vector<seq::Sequence> recs = test::net_records(12, 100);
  const std::string path = test::build_net_store(recs, "gen_a.swdb");
  const std::uint64_t g1 = db::Store::open(path).generation();
  const std::uint64_t g2 = db::Store::open(path).generation();
  EXPECT_EQ(g1, g2) << "generation is a pure content stamp";

  // Rebuild the same path with different content: generation must move.
  std::vector<seq::Sequence> changed = recs;
  changed.push_back(seq::Sequence::dna("TTTTCCCCGGGGAAAA", "extra"));
  db::build_store(changed, path);
  const std::uint64_t g3 = db::Store::open(path).generation();
  EXPECT_NE(g1, g3) << "swdb rebuild with new content must bump the generation";

  // Same content rebuilt => same generation (content-addressed, not timestamped).
  const std::string path2 = test::build_net_store(recs, "gen_b.swdb");
  EXPECT_EQ(db::Store::open(path2).generation(), g1);
}

// ---- profile cache --------------------------------------------------------

TEST(ProfileCache, ReuseIsCountedAndHitsAreBitIdentical) {
  const std::vector<seq::Sequence> recs = test::net_records(24, 500);
  const db::Store store = db::Store::open(test::build_net_store(recs, "profcache.swdb"));
  const seq::Sequence query = seq::Sequence::dna("ACGTACGTACGTACGTACGT", "q");
  const align::Scoring sc;

  obs::Registry reg;
  host::ProfileCache cache(8, &reg, "svc.cache.profile");

  host::ScanOptions cold;
  cold.top_k = 6;
  host::ScanOptions cached = cold;
  cached.profile_cache = &cache;

  const host::ScanResult base = host::scan_database_cpu(query, store, sc, cold);
  const host::ScanResult warm1 = host::scan_database_cpu(query, store, sc, cached);
  const host::ScanResult warm2 = host::scan_database_cpu(query, store, sc, cached);

  ASSERT_EQ(base.hits.size(), warm1.hits.size());
  for (std::size_t k = 0; k < base.hits.size(); ++k) {
    EXPECT_EQ(base.hits[k].record, warm1.hits[k].record);
    EXPECT_EQ(base.hits[k].result.score, warm1.hits[k].result.score);
    EXPECT_EQ(base.hits[k].result.end.i, warm1.hits[k].result.end.i);
    EXPECT_EQ(warm1.hits[k].record, warm2.hits[k].record);
    EXPECT_EQ(warm1.hits[k].result.score, warm2.hits[k].result.score);
  }

  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("svc.cache.profile.misses"), 1u) << "one build for two scans";
  EXPECT_GE(snap.counter("svc.cache.profile.hits"), 1u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(ProfileCache, EvictsByEntryBound) {
  host::ProfileCache cache(2);
  const align::Scoring sc;
  for (int k = 0; k < 5; ++k) {
    (void)cache.acquire(test::random_dna(24, 7000 + static_cast<std::uint64_t>(k)), sc, 0);
  }
  EXPECT_EQ(cache.entries(), 2u);
}

// ---- end-to-end over the wire ---------------------------------------------

class ServeCaches : public ::testing::Test {
 protected:
  static svc::net::ServerConfig config() {
    svc::net::ServerConfig cfg;
    cfg.service.cpu_workers = 1;
    cfg.result_cache_bytes = 1 << 20;
    return cfg;
  }
  test::NetServerFixture fixture_{"serve_caches.swdb", config()};
};

TEST_F(ServeCaches, WarmHitIsBitIdenticalToColdScan) {
  ScanClient client = fixture_.connect();
  WireRequest req = test::planted_request(1);
  req.align = 1;

  const ClientResponse cold = client.scan(req);
  ASSERT_TRUE(cold.ok) << cold.error;
  ASSERT_GT(cold.hits.size(), 0u);

  const ClientResponse warm = client.scan(req);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.raw_bytes, cold.raw_bytes)
      << "result-cache replay must be byte-identical on the wire";

  // Different request_id: same content, different id stamps.
  WireRequest req2 = req;
  req2.request_id = 2;
  const ClientResponse warm2 = client.scan(req2);
  ASSERT_TRUE(warm2.ok) << warm2.error;
  EXPECT_NE(warm2.raw_bytes, cold.raw_bytes);
  ASSERT_EQ(warm2.hits.size(), cold.hits.size());
  for (std::size_t k = 0; k < cold.hits.size(); ++k) {
    EXPECT_EQ(warm2.hits[k].name, cold.hits[k].name);
    EXPECT_EQ(warm2.hits[k].score, cold.hits[k].score);
    EXPECT_EQ(warm2.hits[k].cigar, cold.hits[k].cigar);
    EXPECT_EQ(warm2.hits[k].request_id, 2u);
  }

  const obs::Snapshot snap = fixture_.registry().snapshot();
  EXPECT_EQ(snap.counter("svc.cache.result.hits"), 2u);
  EXPECT_EQ(snap.counter("svc.cache.result.misses"), 1u);
  EXPECT_GE(snap.counter("svc.cache.profile.misses"), 1u);
}

TEST_F(ServeCaches, ProfileCacheReuseVisibleInServerCounters) {
  ScanClient client = fixture_.connect();
  // Same query, different top_k: result cache misses both times, but the
  // profile bundle is shared.
  WireRequest a = test::planted_request(1);
  a.top_k = 3;
  WireRequest b = test::planted_request(2);
  b.top_k = 4;
  ASSERT_TRUE(client.scan(a).ok);
  ASSERT_TRUE(client.scan(b).ok);

  const obs::Snapshot snap = fixture_.registry().snapshot();
  EXPECT_EQ(snap.counter("svc.cache.result.hits"), 0u);
  EXPECT_EQ(snap.counter("svc.cache.result.misses"), 2u);
  EXPECT_EQ(snap.counter("svc.cache.profile.misses"), 1u);
  EXPECT_GE(snap.counter("svc.cache.profile.hits"), 1u);
}

// A `swdb build` that changes the database invalidates every cached
// result: the generation is part of the key, so the new server instance
// can never replay the old store's hits.
TEST(ServeCachesGeneration, RebuildInvalidatesResultCache) {
  const std::vector<seq::Sequence> recs_v1 = test::net_records(20, 808);
  std::vector<seq::Sequence> recs_v2 = recs_v1;
  recs_v2.push_back(seq::Sequence::dna("ACGTACGTACGTACGTACGTACGT", "planted2"));

  const std::uint64_t g1 =
      db::Store::open(test::build_net_store(recs_v1, "gen_inv1.swdb")).generation();
  const std::uint64_t g2 =
      db::Store::open(test::build_net_store(recs_v2, "gen_inv2.swdb")).generation();
  ASSERT_NE(g1, g2);

  // The cache key is exactly (query, options, generation): same request
  // against the two generations lands in different entries.
  const WireRequest req = test::planted_request(1);
  const ResultKey k1{query_text_hash(req.query), request_options_hash(req), g1};
  const ResultKey k2{query_text_hash(req.query), request_options_hash(req), g2};

  ResultCache cache(1 << 20, nullptr, "svc.cache.result");
  cache.insert(k1, small_response("stale", 99));
  EXPECT_FALSE(cache.lookup(k2).has_value())
      << "a rebuilt store must never see the old generation's entries";
  EXPECT_TRUE(cache.lookup(k1).has_value());
}

}  // namespace
