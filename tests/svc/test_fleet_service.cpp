// Board-fleet serving through svc::ScanService: catalog-named devices,
// scheduler modes, the bus model and the analytic cycle cross-check. The
// service's board executors reuse the same accelerator model as the
// direct fleet scan, so everything here is a parity statement.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/performance_model.hpp"
#include "db/builder.hpp"
#include "db/store.hpp"
#include "host/scan_engine.hpp"
#include "hw/sched.hpp"
#include "svc/scan_service.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;

std::vector<seq::Sequence> fleet_records() {
  std::vector<seq::Sequence> recs;
  for (int k = 0; k < 24; ++k) {
    seq::Sequence s = test::random_dna(15 + 31 * static_cast<std::size_t>(k % 7), 7700 + k);
    s.set_name("rec" + std::to_string(k));
    recs.push_back(std::move(s));
  }
  recs.push_back(seq::Sequence::dna("ACGTACGTACGTACGTACGT", "planted"));
  return recs;
}

db::Store open_fleet_store(const std::vector<seq::Sequence>& recs, const std::string& leaf) {
  const std::string path = testing::TempDir() + "/" + leaf;
  db::build_store(recs, path);
  return db::Store::open(path);
}

host::ScanOptions default_opt() {
  host::ScanOptions opt;
  opt.top_k = 8;
  return opt;
}

void expect_same_hits(const host::ScanResult& a, const host::ScanResult& b) {
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t k = 0; k < a.hits.size(); ++k) {
    EXPECT_EQ(a.hits[k].record, b.hits[k].record) << "hit " << k;
    EXPECT_EQ(a.hits[k].result, b.hits[k].result) << "hit " << k;
  }
}

TEST(FleetService, CatalogDeviceAndBothSchedulersMatchDirectScan) {
  const std::vector<seq::Sequence> recs = fleet_records();
  const db::Store store = open_fleet_store(recs, "svc_fleet_catalog.swdb");
  const seq::Sequence query = seq::Sequence::dna("ACGTACGTACGTACGTACGT", "q");
  const host::ScanOptions opt = default_opt();
  const host::ScanResult direct =
      host::scan_database_cpu(query, store, align::Scoring::paper_default(), opt);

  for (const char* device : {"xc2vp70", "xc2v6000"}) {
    for (const hw::SchedMode sched : {hw::SchedMode::Dense, hw::SchedMode::Event}) {
      svc::ServiceConfig cfg;
      cfg.cpu_workers = 0;
      cfg.boards = 2;
      cfg.board_pes = 32;
      cfg.board_device_name = device;
      cfg.board_sched = sched;
      cfg.chunk_records = 6;
      svc::ScanService service(store, cfg);
      const svc::ScanResponse resp = service.submit(query, opt).response.get();
      EXPECT_EQ(resp.status, svc::QueryStatus::Done);
      expect_same_hits(direct, resp.result);
      EXPECT_GT(resp.result.board_cycles, 0u)
          << device << "/" << hw::sched_mode_name(sched);
    }
  }
}

TEST(FleetService, UnknownDeviceNameThrowsAtConstruction) {
  const std::vector<seq::Sequence> recs = fleet_records();
  svc::ServiceConfig cfg;
  cfg.cpu_workers = 0;
  cfg.boards = 1;
  cfg.board_device_name = "nosuch-fpga";
  EXPECT_THROW(svc::ScanService(recs, cfg), std::invalid_argument);
}

TEST(FleetService, BoardCyclesMatchAnalyticModel) {
  // Boards-only serving: every record crosses the cycle-level model once,
  // so the response's board_cycles must equal the analytic sum exactly —
  // under both schedulers (the event scheduler changes work, not time).
  const std::vector<seq::Sequence> recs = fleet_records();
  const db::Store store = open_fleet_store(recs, "svc_fleet_cycles.swdb");
  const seq::Sequence query = seq::Sequence::dna("ACGTACGTACGTACGTACGT", "q");
  const host::ScanOptions opt = default_opt();

  std::uint64_t expected = 0;
  for (const seq::Sequence& r : recs) {
    expected += core::predict_cycles(query.size(), r.size(), 32, true).total_cycles;
  }

  for (const hw::SchedMode sched : {hw::SchedMode::Dense, hw::SchedMode::Event}) {
    svc::ServiceConfig cfg;
    cfg.cpu_workers = 0;
    cfg.boards = 3;
    cfg.board_pes = 32;
    cfg.board_sched = sched;
    cfg.chunk_records = 4;
    svc::ScanService service(store, cfg);
    const svc::ScanResponse resp = service.submit(query, opt).response.get();
    EXPECT_EQ(resp.status, svc::QueryStatus::Done);
    EXPECT_EQ(resp.result.board_cycles, expected) << hw::sched_mode_name(sched);
  }
}

TEST(FleetService, BusModelAddsWallTimeWithoutMovingHits) {
  const std::vector<seq::Sequence> recs = fleet_records();
  const db::Store store = open_fleet_store(recs, "svc_fleet_bus.swdb");
  const seq::Sequence query = seq::Sequence::dna("ACGTACGTACGTACGTACGT", "q");
  const host::ScanOptions opt = default_opt();

  svc::ServiceConfig cfg;
  cfg.cpu_workers = 0;
  cfg.boards = 2;
  cfg.board_pes = 32;
  cfg.chunk_records = 6;

  svc::ScanService compute_only(store, cfg);
  const svc::ScanResponse a = compute_only.submit(query, opt).response.get();

  cfg.board_bus = true;
  svc::ScanService with_bus(store, cfg);
  const svc::ScanResponse b = with_bus.submit(query, opt).response.get();

  EXPECT_EQ(a.status, svc::QueryStatus::Done);
  EXPECT_EQ(b.status, svc::QueryStatus::Done);
  expect_same_hits(a.result, b.result);
  EXPECT_EQ(a.result.board_cycles, b.result.board_cycles);
  EXPECT_GT(b.result.board_seconds, a.result.board_seconds);
}

}  // namespace
