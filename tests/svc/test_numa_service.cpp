// Service-side NUMA placement: a fake multi-node config must leave every
// response bit-identical to the direct engine, and the per-node chunk
// accounting must reconcile — every chunk the service dispatched was
// claimed exactly once, as local or remote
// (svc.numa.local_chunks + svc.numa.remote_chunks == svc.chunks_cpu +
// svc.chunks_board).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "align/scoring.hpp"
#include "core/topology.hpp"
#include "db/builder.hpp"
#include "db/store.hpp"
#include "host/batch.hpp"
#include "host/scan_engine.hpp"
#include "obs/metrics.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"
#include "svc/scan_service.hpp"

namespace {

using namespace swr;

std::string temp_path(const std::string& leaf) { return testing::TempDir() + "/" + leaf; }

struct SvcDb {
  seq::Sequence query;
  std::vector<seq::Sequence> records;

  explicit SvcDb(std::uint64_t seed, std::size_t n_records = 90) {
    seq::RandomSequenceGenerator gen(seed);
    query = gen.uniform(seq::dna(), 110, "q");
    for (std::size_t r = 0; r < n_records; ++r) {
      seq::Sequence rec =
          gen.uniform(seq::dna(), 70 + 29 * (r % 8), "rec" + std::to_string(r));
      if (r % 6 == 2) rec.append(seq::point_mutate(query, 0.05, gen.engine()));
      records.push_back(std::move(rec));
    }
  }
};

db::Store build_open(const std::vector<seq::Sequence>& recs, const std::string& leaf) {
  const std::string path = temp_path(leaf);
  db::BuildOptions opt;
  opt.kmer_index = true;
  db::build_store(recs, path, opt);
  return db::Store::open(path);
}

void expect_same_hits(const host::ScanResult& got, const host::ScanResult& want,
                      const std::string& what) {
  ASSERT_EQ(got.hits.size(), want.hits.size()) << what;
  for (std::size_t k = 0; k < got.hits.size(); ++k) {
    EXPECT_EQ(got.hits[k].record, want.hits[k].record) << what << " hit " << k;
    EXPECT_EQ(got.hits[k].result, want.hits[k].result) << what << " hit " << k;
  }
}

TEST(NumaService, FakeTopologyParityAndChunkReconciliation) {
  const SvcDb db(2101);
  const db::Store store = build_open(db.records, "numa_svc.swdb");

  host::ScanOptions opt;
  opt.top_k = 16;
  opt.min_score = 40;
  const host::ScanResult want = host::scan_database_cpu(db.query, store, align::Scoring{}, opt);
  ASSERT_FALSE(want.hits.empty());

  // Small chunks so both nodes' runs are non-trivial and stealing can
  // actually happen; an asymmetric spec exercises uneven run bounds.
  for (const char* mode : {"fake:2x2", "fake:0-2,8/3-5"}) {
    obs::Registry reg;
    svc::ServiceConfig cfg;
    cfg.cpu_workers = 3;
    cfg.chunk_records = 7;
    cfg.numa = core::parse_numa_request(mode);
    cfg.metrics = &reg;
    svc::ScanService service(store, cfg);
    const svc::ScanResponse resp = service.submit(db.query, opt).response.get();
    ASSERT_EQ(resp.status, svc::QueryStatus::Done) << resp.error;
    expect_same_hits(resp.result, want, mode);

    const obs::Snapshot snap = reg.snapshot();
    const std::uint64_t placed =
        snap.counter("svc.numa.local_chunks") + snap.counter("svc.numa.remote_chunks");
    const std::uint64_t executed =
        snap.counter("svc.chunks_cpu") + snap.counter("svc.chunks_board");
    EXPECT_EQ(placed, executed) << mode;
    EXPECT_GT(placed, 0u) << mode;
    bool saw_nodes = false;
    for (const auto& [name, value] : snap.gauges) {
      if (name == "svc.numa.nodes") {
        saw_nodes = true;
        EXPECT_EQ(value, 2) << mode;
      }
    }
    EXPECT_TRUE(saw_nodes) << mode;
  }
}

TEST(NumaService, OffConfigIsAStrictNoOp) {
  const SvcDb db(2102, 40);
  const db::Store store = build_open(db.records, "numa_svc_off.swdb");
  obs::Registry reg;
  svc::ServiceConfig cfg;
  cfg.cpu_workers = 2;
  cfg.chunk_records = 11;
  cfg.numa = core::parse_numa_request("off");
  cfg.metrics = &reg;
  svc::ScanService service(store, cfg);

  host::ScanOptions opt;
  opt.top_k = 8;
  opt.min_score = 40;
  const svc::ScanResponse resp = service.submit(db.query, opt).response.get();
  ASSERT_EQ(resp.status, svc::QueryStatus::Done) << resp.error;

  const obs::Snapshot snap = reg.snapshot();
  for (const auto& [name, value] : snap.counters) {
    EXPECT_EQ(name.rfind("svc.numa.", 0), std::string::npos) << name;
  }
  for (const auto& [name, value] : snap.gauges) {
    EXPECT_EQ(name.rfind("svc.numa.", 0), std::string::npos) << name;
  }
}

TEST(NumaService, MultipleQueriesUnderFakeTopology) {
  // Concurrent queries share the pinned executor fleet; every one must
  // still resolve to the direct-engine answer.
  const SvcDb db(2103, 60);
  const db::Store store = build_open(db.records, "numa_svc_multi.swdb");
  host::ScanOptions opt;
  opt.top_k = 10;
  opt.min_score = 40;
  const host::ScanResult want = host::scan_database_cpu(db.query, store, align::Scoring{}, opt);

  svc::ServiceConfig cfg;
  cfg.cpu_workers = 4;
  cfg.chunk_records = 9;
  cfg.max_inflight = 4;
  cfg.numa = core::parse_numa_request("fake:2x2");
  svc::ScanService service(store, cfg);

  std::vector<svc::Ticket> tickets;
  tickets.reserve(6);
  for (int q = 0; q < 6; ++q) tickets.push_back(service.submit(db.query, opt));
  for (std::size_t q = 0; q < tickets.size(); ++q) {
    const svc::ScanResponse resp = tickets[q].response.get();
    ASSERT_EQ(resp.status, svc::QueryStatus::Done) << resp.error;
    expect_same_hits(resp.result, want, "query " + std::to_string(q));
  }
}

}  // namespace
