// `scan --align / --max-hits / --format` plus `swdb info --json` and
// `align --matrix` through run_command — the CI alignment leg drives
// this file by suite name (AlignLeg*).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cli/commands.hpp"
#include "seq/fasta.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"

namespace {

using namespace swr;

struct RunResult {
  int code;
  std::string out;
  std::string err;
};

RunResult run(const std::string& cmd, const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = cli::run_command(cmd, args, out, err);
  return {code, out.str(), err.str()};
}

std::size_t count_lines_with(const std::string& text, const std::string& needle) {
  std::size_t n = 0;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) {
    if (line.find(needle) != std::string::npos) ++n;
  }
  return n;
}

// One query + database pair shared by every test in this file; the
// database holds random background plus planted homologs.
struct Fixture {
  std::string query_fa;
  std::string db_fa;
  std::string db_swdb;

  Fixture() {
    seq::RandomSequenceGenerator gen(71801);
    const seq::Sequence query = gen.uniform(seq::dna(), 90, "q");
    std::vector<seq::Sequence> recs;
    for (int r = 0; r < 30; ++r) {
      seq::Sequence rec = gen.uniform(seq::dna(), 120, "rec" + std::to_string(r));
      if (r % 9 == 4) rec.append(seq::point_mutate(query, 0.04, gen.engine()));
      recs.push_back(std::move(rec));
    }
    query_fa = testing::TempDir() + "/retrieve_q.fa";
    db_fa = testing::TempDir() + "/retrieve_db.fa";
    db_swdb = testing::TempDir() + "/retrieve_db.swdb";
    seq::write_fasta_file(query_fa, {query});
    seq::write_fasta_file(db_fa, recs);
    EXPECT_EQ(run("swdb", {"build", db_fa, db_swdb}).code, 0);
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

TEST(AlignLegText, AlignAddsTranscriptLinesToEveryHit) {
  const Fixture& f = fixture();
  const RunResult r = run("scan", {f.query_fa, f.db_swdb, "--engine", "cpu", "--min-score", "50",
                                   "--align"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("hits (top"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("identity"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("coverage"), std::string::npos) << r.out;
  EXPECT_GE(count_lines_with(r.out, "cigar:"), 1u) << r.out;
}

TEST(AlignLegText, RankedPrefixIdenticalWithAndWithoutAlign) {
  // The tentpole invariant at the CLI boundary: turning --align on must
  // not move a single hit line.
  const Fixture& f = fixture();
  const std::vector<std::string> base{f.query_fa, f.db_swdb, "--engine", "cpu",
                                      "--min-score", "50", "--top", "8"};
  auto aligned = base;
  aligned.push_back("--align");
  const RunResult off = run("scan", base);
  const RunResult on = run("scan", aligned);
  ASSERT_EQ(off.code, 0) << off.err;
  ASSERT_EQ(on.code, 0) << on.err;

  // Strip the alignment detail lines (indented) from the aligned output;
  // what remains must equal the score-only report.
  std::ostringstream stripped;
  std::istringstream in(on.out);
  for (std::string line; std::getline(in, line);) {
    if (line.rfind("     ", 0) == 0) continue;
    stripped << line << '\n';
  }
  EXPECT_EQ(stripped.str(), off.out);
}

TEST(AlignLegTsv, HeaderAndAlignmentColumns) {
  const Fixture& f = fixture();
  const RunResult r = run("scan", {f.query_fa, f.db_swdb, "--engine", "cpu", "--min-score", "50",
                                   "--align", "--format", "tsv"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("#rank\tname\tscore\tevalue\tend_rec\tend_query\tbegin_rec\tbegin_query"
                       "\tidentity\tcoverage\tcigar"),
            std::string::npos)
      << r.out;
  // Every aligned row ends in a CIGAR, so no row carries the '*' padding.
  EXPECT_EQ(r.out.find("\t*"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("hits (top"), std::string::npos) << r.out;  // no text header in tsv
}

TEST(AlignLegTsv, MaxHitsPadsUnalignedRows) {
  const Fixture& f = fixture();
  const RunResult r = run("scan", {f.query_fa, f.db_swdb, "--engine", "cpu", "--min-score", "50",
                                   "--top", "8", "--align", "--max-hits", "1", "--format", "tsv"});
  ASSERT_EQ(r.code, 0) << r.err;
  // Exactly one row got a transcript; the rest are star-padded.
  EXPECT_GE(count_lines_with(r.out, "\t*\t*\t*\t*\t*"), 1u) << r.out;
  EXPECT_GE(count_lines_with(r.out, "M"), 1u) << r.out;
}

TEST(AlignLegTsv, WorksWithoutAlignUsingStarColumns) {
  const Fixture& f = fixture();
  const RunResult r = run("scan", {f.query_fa, f.db_swdb, "--engine", "cpu", "--min-score", "50",
                                   "--format", "tsv"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("#rank"), std::string::npos) << r.out;
  EXPECT_GE(count_lines_with(r.out, "\t*\t*\t*\t*\t*"), 1u) << r.out;
}

TEST(AlignLegPretty, RendersTheThreeLineAlignment) {
  const Fixture& f = fixture();
  const RunResult r = run("scan", {f.query_fa, f.db_swdb, "--engine", "cpu", "--min-score", "50",
                                   "--align", "--format", "pretty"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("cigar:"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find('|'), std::string::npos) << r.out;  // the bars line
}

TEST(AlignLegBatch, BatchServiceRetrievesAlignments) {
  const Fixture& f = fixture();
  const RunResult r = run("scan", {f.query_fa, f.db_swdb, "--batch", "--min-score", "50",
                                   "--align"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("cigar:"), std::string::npos) << r.out;

  const RunResult tsv = run("scan", {f.query_fa, f.db_swdb, "--batch", "--min-score", "50",
                                     "--align", "--format", "tsv"});
  ASSERT_EQ(tsv.code, 0) << tsv.err;
  EXPECT_NE(tsv.out.find("#rank"), std::string::npos) << tsv.out;
}

TEST(AlignLegBatch, TraceTableShowsTheTracebackColumn) {
  const Fixture& f = fixture();
  const RunResult r = run("scan", {f.query_fa, f.db_swdb, "--batch", "--min-score", "50",
                                   "--align", "--stats"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("trcback"), std::string::npos) << r.out;
}

TEST(AlignLegErrors, OptionValidation) {
  const Fixture& f = fixture();
  // --max-hits and --format pretty both need --align.
  EXPECT_EQ(run("scan", {f.query_fa, f.db_swdb, "--max-hits", "3"}).code, 2);
  EXPECT_EQ(run("scan", {f.query_fa, f.db_swdb, "--format", "pretty"}).code, 2);
  EXPECT_EQ(run("scan", {f.query_fa, f.db_swdb, "--align", "--max-hits", "-1"}).code, 2);
  EXPECT_EQ(run("scan", {f.query_fa, f.db_swdb, "--format", "bogus"}).code, 2);
}

TEST(AlignLegInfo, JsonReportCoversTheStore) {
  const Fixture& f = fixture();
  const RunResult r = run("swdb", {"info", f.db_swdb, "--json"});
  ASSERT_EQ(r.code, 0) << r.err;
  for (const char* key : {"\"format_version\"", "\"records\"", "\"residues\"",
                          "\"record_length\"", "\"kmer_index\"", "\"payload_verified\""}) {
    EXPECT_NE(r.out.find(key), std::string::npos) << key << " missing from:\n" << r.out;
  }
  EXPECT_EQ(r.out.front(), '{') << r.out;
  // Balanced braces — the cheap structural sanity check without a parser.
  EXPECT_EQ(count_lines_with(r.out, "{"), count_lines_with(r.out, "}"));

  const RunResult verified = run("swdb", {"info", f.db_swdb, "--json", "--verify"});
  ASSERT_EQ(verified.code, 0) << verified.err;
  EXPECT_NE(verified.out.find("\"payload_verified\": true"), std::string::npos) << verified.out;
}

TEST(AlignLegMatrix, RendersFigureTwoForSmallPairs) {
  const std::string a_fa = testing::TempDir() + "/matrix_a.fa";
  const std::string b_fa = testing::TempDir() + "/matrix_b.fa";
  const std::string big_fa = testing::TempDir() + "/matrix_big.fa";
  seq::write_fasta_file(a_fa, {seq::Sequence::dna("ACTTGTCCG", "a")});
  seq::write_fasta_file(b_fa, {seq::Sequence::dna("AGTGTCAGA", "b")});
  seq::write_fasta_file(big_fa, {seq::Sequence::dna(std::string(120, 'A'), "big")});

  const RunResult r = run("align", {a_fa, b_fa, "--matrix"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("cigar:"), std::string::npos) << r.out;

  // Guard rails: affine / global modes and oversized inputs are refused.
  EXPECT_EQ(run("align", {a_fa, b_fa, "--matrix", "--affine"}).code, 2);
  EXPECT_EQ(run("align", {a_fa, b_fa, "--matrix", "--mode", "global"}).code, 2);
  EXPECT_EQ(run("align", {big_fa, big_fa, "--matrix"}).code, 2);
}

}  // namespace
