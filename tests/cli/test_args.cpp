#include <gtest/gtest.h>

#include "cli/args.hpp"

namespace {

using namespace swr::cli;

TEST(Args, PositionalsAndFlags) {
  ArgParser p;
  p.flag("verbose").option("top", "10");
  p.parse({"a.fa", "--verbose", "b.fa"});
  EXPECT_EQ(p.positionals(), (std::vector<std::string>{"a.fa", "b.fa"}));
  EXPECT_TRUE(p.has("verbose"));
  EXPECT_EQ(p.get("top"), "10");  // default
}

TEST(Args, OptionBothSyntaxes) {
  ArgParser p;
  p.option("k").option("mode");
  p.parse({"--k", "11", "--mode=local"});
  EXPECT_EQ(p.get("k"), "11");
  EXPECT_EQ(p.get("mode"), "local");
}

TEST(Args, DoubleDashEndsOptions) {
  ArgParser p;
  p.flag("x");
  p.parse({"--", "--x"});
  EXPECT_FALSE(p.has("x"));
  EXPECT_EQ(p.positionals(), (std::vector<std::string>{"--x"}));
}

TEST(Args, UnknownOptionRejected) {
  ArgParser p;
  p.option("top");
  EXPECT_THROW(p.parse({"--nope", "5"}), ArgError);
}

TEST(Args, MissingValueRejected) {
  ArgParser p;
  p.option("top");
  EXPECT_THROW(p.parse({"--top"}), ArgError);
}

TEST(Args, FlagWithValueRejected) {
  ArgParser p;
  p.flag("verbose");
  EXPECT_THROW(p.parse({"--verbose=yes"}), ArgError);
}

TEST(Args, RequiredOptionWithoutDefault) {
  ArgParser p;
  p.option("in");
  p.parse({});
  EXPECT_THROW((void)p.get("in"), ArgError);
  EXPECT_EQ(p.get_optional("in"), std::nullopt);
}

TEST(Args, TypedAccessors) {
  ArgParser p;
  p.option("n").option("x");
  p.parse({"--n", "42", "--x", "2.5"});
  EXPECT_EQ(p.get_int("n"), 42);
  EXPECT_DOUBLE_EQ(p.get_double("x"), 2.5);
}

TEST(Args, TypedAccessorsRejectGarbage) {
  ArgParser p;
  p.option("n");
  p.parse({"--n", "12abc"});
  EXPECT_THROW((void)p.get_int("n"), ArgError);
  EXPECT_THROW((void)p.get_double("n"), ArgError);
}

TEST(Args, UndeclaredAccessRejected) {
  ArgParser p;
  p.parse({});
  EXPECT_THROW((void)p.has("nope"), ArgError);
  EXPECT_THROW((void)p.get("nope"), ArgError);
}

TEST(Args, ShortDashStringsArePositionals) {
  ArgParser p;
  p.parse({"-x", "a"});
  EXPECT_EQ(p.positionals().size(), 2u);
}

}  // namespace
