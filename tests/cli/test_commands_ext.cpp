// Tests of the extended swr subcommands: affine alignment, nearbest, map.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "align/gotoh.hpp"
#include "cli/commands.hpp"
#include "seq/fasta.hpp"
#include "seq/fastq.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"

namespace {

using namespace swr;

std::string write_fa(const std::string& stem, const std::vector<seq::Sequence>& recs) {
  const std::string path = testing::TempDir() + "/" + stem + ".fa";
  seq::write_fasta_file(path, recs);
  return path;
}

struct RunResult {
  int code;
  std::string out;
  std::string err;
};

RunResult run(const std::string& cmd, const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = cli::run_command(cmd, args, out, err);
  return {code, out.str(), err.str()};
}

TEST(CliAffine, LocalAffineMatchesGotoh) {
  seq::RandomSequenceGenerator gen(3);
  const seq::Sequence a = gen.uniform(seq::dna(), 200, "a");
  const seq::Sequence b = gen.uniform(seq::dna(), 60, "b");
  const std::string fa = write_fa("cli_aff_a", {a});
  const std::string fb = write_fa("cli_aff_b", {b});
  const RunResult r = run("align", {fa, fb, "--affine"});
  EXPECT_EQ(r.code, 0) << r.err;
  align::AffineScoring sc;  // CLI defaults for DNA
  const align::LocalScoreResult oracle = align::gotoh_local_score(a.codes(), b.codes(), sc);
  EXPECT_NE(r.out.find("score: " + std::to_string(oracle.score)), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("(affine)"), std::string::npos);
}

TEST(CliAffine, GlobalAffineRuns) {
  const std::string fa = write_fa("cli_aff_g1", {seq::Sequence::dna("ACGTACCCCGT", "a")});
  const std::string fb = write_fa("cli_aff_g2", {seq::Sequence::dna("ACGTACGT", "b")});
  const RunResult r = run("align", {fa, fb, "--affine", "--mode", "global", "--gap-open", "-4",
                                    "--gap-extend", "-1"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("mode: global (affine)"), std::string::npos);
}

TEST(CliAffine, FittingAffineRejected) {
  EXPECT_EQ(run("align", {"x.fa", "y.fa", "--affine", "--mode", "fitting"}).code, 2);
}

TEST(CliNearBest, EnumeratesPlantedCopies) {
  seq::RandomSequenceGenerator gen(4);
  const seq::Sequence q = gen.uniform(seq::dna(), 50, "q");
  seq::Sequence db = gen.uniform(seq::dna(), 800);
  db.append(q);
  db.append(gen.uniform(seq::dna(), 800));
  db.append(seq::point_mutate(q, 0.05, gen.engine()));
  db.append(gen.uniform(seq::dna(), 800));
  db.set_name("db");
  const std::string fdb = write_fa("cli_nb_db", {db});
  const std::string fq = write_fa("cli_nb_q", {q});
  const RunResult r = run("nearbest", {fdb, fq, "--max", "4", "--min-score", "25"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("2 non-overlapping alignments"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("1. score 50"), std::string::npos) << r.out;
}

TEST(CliMap, MapsReadsToReference) {
  seq::RandomSequenceGenerator gen(5);
  const seq::Sequence ref = gen.uniform(seq::dna(), 5000, "ref");
  std::vector<seq::FastqRecord> reads;
  for (int k = 0; k < 4; ++k) {
    seq::FastqRecord rec;
    rec.sequence = seq::point_mutate(ref.subsequence(500 + 900 * static_cast<std::size_t>(k), 60),
                                     0.02, gen.engine());
    rec.sequence.set_name("r" + std::to_string(k));
    rec.qualities.assign(rec.sequence.size(), 35);
    reads.push_back(std::move(rec));
  }
  const std::string fq_path = testing::TempDir() + "/cli_reads.fq";
  {
    std::ofstream f(fq_path);
    seq::write_fastq(f, reads);
  }
  const std::string ref_path = write_fa("cli_map_ref", {ref});
  const RunResult r = run("map", {fq_path, ref_path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("mapped 4/4 reads"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("r0\t"), std::string::npos);
}

TEST(CliMap, UnmappableReadReported) {
  seq::RandomSequenceGenerator gen(6);
  const seq::Sequence ref = gen.uniform(seq::dna(), 2000, "ref");
  seq::FastqRecord alien;
  alien.sequence = seq::Sequence::dna(std::string(50, 'A'), "alien");
  alien.qualities.assign(50, 30);
  const std::string fq_path = testing::TempDir() + "/cli_alien.fq";
  {
    std::ofstream f(fq_path);
    seq::write_fastq(f, {alien});
  }
  const std::string ref_path = write_fa("cli_map_ref2", {ref});
  const RunResult r = run("map", {fq_path, ref_path});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("unmapped"), std::string::npos) << r.out;
}

TEST(CliHelp, MentionsNewCommands) {
  const RunResult r = run("help", {});
  EXPECT_NE(r.out.find("nearbest"), std::string::npos);
  EXPECT_NE(r.out.find("map <reads.fq>"), std::string::npos);
  EXPECT_NE(r.out.find("--affine"), std::string::npos);
  EXPECT_NE(r.out.find("swdb build"), std::string::npos);
  EXPECT_NE(r.out.find("--batch"), std::string::npos);
}

// ---- swdb + .swdb-aware scan --------------------------------------------

std::vector<seq::Sequence> swdb_db_records() {
  seq::RandomSequenceGenerator gen(91);
  std::vector<seq::Sequence> recs;
  for (int k = 0; k < 9; ++k) {
    recs.push_back(gen.uniform(seq::dna(), 80 + 13 * static_cast<std::size_t>(k),
                               "rec" + std::to_string(k)));
  }
  recs.push_back(seq::Sequence::dna("ACGTACGTACGTACGTACGTACGT", "planted"));
  return recs;
}

TEST(CliSwdb, BuildInfoAndScanParity) {
  const auto recs = swdb_db_records();
  const std::string fa = write_fa("cli_swdb_db", recs);
  const std::string swdb = testing::TempDir() + "/cli_swdb_db.swdb";
  const RunResult built = run("swdb", {"build", fa, swdb});
  EXPECT_EQ(built.code, 0) << built.err;
  EXPECT_NE(built.out.find("10 records"), std::string::npos) << built.out;
  EXPECT_NE(built.out.find("packed2"), std::string::npos) << built.out;

  const RunResult info = run("swdb", {"info", swdb, "--verify"});
  EXPECT_EQ(info.code, 0) << info.err;
  EXPECT_NE(info.out.find("alphabet dna"), std::string::npos) << info.out;
  EXPECT_NE(info.out.find("payload hash OK"), std::string::npos) << info.out;

  // scan against the .swdb store (sniffed, not by extension) must print
  // exactly what the FASTA path prints.
  const std::string q = write_fa("cli_swdb_q", {seq::Sequence::dna("ACGTACGTACGTACGTACGT", "q")});
  const RunResult from_fasta = run("scan", {q, fa, "--min-score", "10"});
  const RunResult from_store = run("scan", {q, swdb, "--min-score", "10"});
  EXPECT_EQ(from_fasta.code, 0) << from_fasta.err;
  EXPECT_EQ(from_store.code, 0) << from_store.err;
  EXPECT_EQ(from_fasta.out, from_store.out);
  EXPECT_NE(from_store.out.find("planted"), std::string::npos) << from_store.out;
  EXPECT_NE(from_store.out.find("stats:"), std::string::npos) << from_store.out;
}

TEST(CliSwdb, InfoReportsScheduleStats) {
  // 7 equal-length records: median == min == max, and the predicted
  // inter-sequence occupancy is exactly 7/16 and 7/32 (one batch, the
  // empty lanes idle the whole makespan).
  seq::RandomSequenceGenerator gen(92);
  std::vector<seq::Sequence> recs;
  for (int k = 0; k < 7; ++k) {
    recs.push_back(gen.uniform(seq::dna(), 120, "eq" + std::to_string(k)));
  }
  const std::string fa = write_fa("cli_swdb_sched", recs);
  const std::string swdb = testing::TempDir() + "/cli_swdb_sched.swdb";
  ASSERT_EQ(run("swdb", {"build", fa, swdb}).code, 0);
  const RunResult info = run("swdb", {"info", swdb});
  EXPECT_EQ(info.code, 0) << info.err;
  EXPECT_NE(info.out.find("record length 120..120, median 120"), std::string::npos) << info.out;
  EXPECT_NE(info.out.find("interseq lane occupancy: 43.8% @16 lanes, 21.9% @32 lanes"),
            std::string::npos)
      << info.out;
}

TEST(CliScan, EveryKernelShapeProducesTheSameReport) {
  const auto recs = swdb_db_records();
  const std::string fa = write_fa("cli_kernel_db", recs);
  const std::string swdb = testing::TempDir() + "/cli_kernel_db.swdb";
  ASSERT_EQ(run("swdb", {"build", fa, swdb}).code, 0);
  const std::string q =
      write_fa("cli_kernel_q", {seq::Sequence::dna("ACGTACGTACGTACGTACGT", "q")});

  for (const std::string* db : {&fa, &swdb}) {
    const RunResult ref = run("scan", {q, *db, "--min-score", "10", "--engine", "cpu"});
    ASSERT_EQ(ref.code, 0) << ref.err;
    // A shape the machine cannot run degrades (one-time stderr warning),
    // so every spelling succeeds everywhere with identical hits.
    for (const std::string kernel : {"auto", "striped", "interseq"}) {
      for (const std::string threads : {"1", "2"}) {
        const RunResult r = run("scan", {q, *db, "--min-score", "10", "--engine", "cpu",
                                         "--kernel", kernel, "--threads", threads});
        EXPECT_EQ(r.code, 0) << kernel << ": " << r.err;
        EXPECT_EQ(r.out, ref.out) << "--kernel " << kernel << " --threads " << threads;
      }
    }
  }
}

TEST(CliScan, UnknownKernelShapeListsChoices) {
  const RunResult r = run("scan", {"q.fa", "db.fa", "--kernel", "systolic"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("systolic"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("choices: auto|striped|interseq"), std::string::npos) << r.err;
}

TEST(CliSwdb, InfoRejectsCorruptedFile) {
  const std::string path = testing::TempDir() + "/cli_swdb_bad.swdb";
  std::ofstream(path, std::ios::binary) << "SWRSWDB1 but then garbage";
  const RunResult r = run("swdb", {"info", path});
  EXPECT_NE(r.code, 0);
  EXPECT_FALSE(r.err.empty());
}

TEST(CliSwdb, UsageErrors) {
  EXPECT_NE(run("swdb", {}).code, 0);
  EXPECT_NE(run("swdb", {"frobnicate"}).code, 0);
  EXPECT_NE(run("swdb", {"build", "only_one_arg.fa"}).code, 0);
}

TEST(CliScanBatch, ServesEveryQueryIdenticallyToSingleScans) {
  const auto recs = swdb_db_records();
  const std::string fa = write_fa("cli_batch_db", recs);
  const std::string swdb = testing::TempDir() + "/cli_batch_db.swdb";
  ASSERT_EQ(run("swdb", {"build", fa, swdb}).code, 0);

  seq::RandomSequenceGenerator gen(92);
  const seq::Sequence q1 = seq::Sequence::dna("ACGTACGTACGTACGTACGT", "q1");
  const seq::Sequence q2 = gen.uniform(seq::dna(), 30, "q2");
  const std::string queries = write_fa("cli_batch_q", {q1, q2});

  const RunResult batch = run("scan", {queries, swdb, "--min-score", "10", "--batch",
                                       "--cpu-workers", "2", "--chunk", "3"});
  EXPECT_EQ(batch.code, 0) << batch.err;
  EXPECT_NE(batch.out.find("query 1/2: q1"), std::string::npos) << batch.out;
  EXPECT_NE(batch.out.find("query 2/2: q2"), std::string::npos) << batch.out;

  // Each per-query hit block must equal the single-query scan's.
  for (const seq::Sequence& q : {q1, q2}) {
    const std::string qf = write_fa("cli_batch_" + q.name(), {q});
    const RunResult single = run("scan", {qf, swdb, "--min-score", "10"});
    ASSERT_EQ(single.code, 0) << single.err;
    const std::size_t hits_pos = single.out.find("hits (");
    ASSERT_NE(hits_pos, std::string::npos);
    const std::string block = single.out.substr(hits_pos);
    EXPECT_NE(batch.out.find(block), std::string::npos)
        << "query " << q.name() << ": block\n" << block << "\nnot in batch output\n" << batch.out;
  }
}

}  // namespace
