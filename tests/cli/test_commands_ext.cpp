// Tests of the extended swr subcommands: affine alignment, nearbest, map.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "align/gotoh.hpp"
#include "cli/commands.hpp"
#include "seq/fasta.hpp"
#include "seq/fastq.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"

namespace {

using namespace swr;

std::string write_fa(const std::string& stem, const std::vector<seq::Sequence>& recs) {
  const std::string path = testing::TempDir() + "/" + stem + ".fa";
  seq::write_fasta_file(path, recs);
  return path;
}

struct RunResult {
  int code;
  std::string out;
  std::string err;
};

RunResult run(const std::string& cmd, const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = cli::run_command(cmd, args, out, err);
  return {code, out.str(), err.str()};
}

TEST(CliAffine, LocalAffineMatchesGotoh) {
  seq::RandomSequenceGenerator gen(3);
  const seq::Sequence a = gen.uniform(seq::dna(), 200, "a");
  const seq::Sequence b = gen.uniform(seq::dna(), 60, "b");
  const std::string fa = write_fa("cli_aff_a", {a});
  const std::string fb = write_fa("cli_aff_b", {b});
  const RunResult r = run("align", {fa, fb, "--affine"});
  EXPECT_EQ(r.code, 0) << r.err;
  align::AffineScoring sc;  // CLI defaults for DNA
  const align::LocalScoreResult oracle = align::gotoh_local_score(a.codes(), b.codes(), sc);
  EXPECT_NE(r.out.find("score: " + std::to_string(oracle.score)), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("(affine)"), std::string::npos);
}

TEST(CliAffine, GlobalAffineRuns) {
  const std::string fa = write_fa("cli_aff_g1", {seq::Sequence::dna("ACGTACCCCGT", "a")});
  const std::string fb = write_fa("cli_aff_g2", {seq::Sequence::dna("ACGTACGT", "b")});
  const RunResult r = run("align", {fa, fb, "--affine", "--mode", "global", "--gap-open", "-4",
                                    "--gap-extend", "-1"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("mode: global (affine)"), std::string::npos);
}

TEST(CliAffine, FittingAffineRejected) {
  EXPECT_EQ(run("align", {"x.fa", "y.fa", "--affine", "--mode", "fitting"}).code, 2);
}

TEST(CliNearBest, EnumeratesPlantedCopies) {
  seq::RandomSequenceGenerator gen(4);
  const seq::Sequence q = gen.uniform(seq::dna(), 50, "q");
  seq::Sequence db = gen.uniform(seq::dna(), 800);
  db.append(q);
  db.append(gen.uniform(seq::dna(), 800));
  db.append(seq::point_mutate(q, 0.05, gen.engine()));
  db.append(gen.uniform(seq::dna(), 800));
  db.set_name("db");
  const std::string fdb = write_fa("cli_nb_db", {db});
  const std::string fq = write_fa("cli_nb_q", {q});
  const RunResult r = run("nearbest", {fdb, fq, "--max", "4", "--min-score", "25"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("2 non-overlapping alignments"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("1. score 50"), std::string::npos) << r.out;
}

TEST(CliMap, MapsReadsToReference) {
  seq::RandomSequenceGenerator gen(5);
  const seq::Sequence ref = gen.uniform(seq::dna(), 5000, "ref");
  std::vector<seq::FastqRecord> reads;
  for (int k = 0; k < 4; ++k) {
    seq::FastqRecord rec;
    rec.sequence = seq::point_mutate(ref.subsequence(500 + 900 * static_cast<std::size_t>(k), 60),
                                     0.02, gen.engine());
    rec.sequence.set_name("r" + std::to_string(k));
    rec.qualities.assign(rec.sequence.size(), 35);
    reads.push_back(std::move(rec));
  }
  const std::string fq_path = testing::TempDir() + "/cli_reads.fq";
  {
    std::ofstream f(fq_path);
    seq::write_fastq(f, reads);
  }
  const std::string ref_path = write_fa("cli_map_ref", {ref});
  const RunResult r = run("map", {fq_path, ref_path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("mapped 4/4 reads"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("r0\t"), std::string::npos);
}

TEST(CliMap, UnmappableReadReported) {
  seq::RandomSequenceGenerator gen(6);
  const seq::Sequence ref = gen.uniform(seq::dna(), 2000, "ref");
  seq::FastqRecord alien;
  alien.sequence = seq::Sequence::dna(std::string(50, 'A'), "alien");
  alien.qualities.assign(50, 30);
  const std::string fq_path = testing::TempDir() + "/cli_alien.fq";
  {
    std::ofstream f(fq_path);
    seq::write_fastq(f, {alien});
  }
  const std::string ref_path = write_fa("cli_map_ref2", {ref});
  const RunResult r = run("map", {fq_path, ref_path});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("unmapped"), std::string::npos) << r.out;
}

TEST(CliHelp, MentionsNewCommands) {
  const RunResult r = run("help", {});
  EXPECT_NE(r.out.find("nearbest"), std::string::npos);
  EXPECT_NE(r.out.find("map <reads.fq>"), std::string::npos);
  EXPECT_NE(r.out.find("--affine"), std::string::npos);
}

}  // namespace
