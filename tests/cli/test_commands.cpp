// End-to-end tests of the swr tool's subcommands through run_command.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "cli/commands.hpp"
#include "seq/fasta.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"

namespace {

using namespace swr;

// Writes records to a temp FASTA and returns the path.
std::string write_fa(const std::string& stem, const std::vector<seq::Sequence>& recs) {
  const std::string path = testing::TempDir() + "/" + stem + ".fa";
  seq::write_fasta_file(path, recs);
  return path;
}

struct RunResult {
  int code;
  std::string out;
  std::string err;
};

RunResult run(const std::string& cmd, const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = cli::run_command(cmd, args, out, err);
  return {code, out.str(), err.str()};
}

TEST(CliAlign, LocalModeFigure2) {
  const std::string a = write_fa("cli_a", {seq::Sequence::dna("TATGGAC", "s")});
  const std::string b = write_fa("cli_b", {seq::Sequence::dna("TAGTGACT", "t")});
  const RunResult r = run("align", {a, b});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("score: 3"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("cigar: 3M"), std::string::npos);
}

TEST(CliAlign, AccelEngineMatchesSoftware) {
  seq::RandomSequenceGenerator gen(5);
  const std::string a = write_fa("cli_a2", {gen.uniform(seq::dna(), 300, "a")});
  const std::string b = write_fa("cli_b2", {gen.uniform(seq::dna(), 60, "b")});
  const RunResult sw = run("align", {a, b, "--engine", "sw"});
  const RunResult hw = run("align", {a, b, "--engine", "accel", "--pes", "32"});
  EXPECT_EQ(sw.code, 0);
  EXPECT_EQ(hw.code, 0);
  EXPECT_EQ(sw.out, hw.out);  // identical report, engine-independent
}

TEST(CliAlign, GlobalAndFittingModes) {
  const std::string a = write_fa("cli_a3", {seq::Sequence::dna("TTTTACGTACGTTTT", "a")});
  const std::string b = write_fa("cli_b3", {seq::Sequence::dna("ACGTACG", "b")});
  const RunResult fit = run("align", {a, b, "--mode", "fitting"});
  EXPECT_EQ(fit.code, 0);
  EXPECT_NE(fit.out.find("score: 7"), std::string::npos) << fit.out;
  const RunResult glob = run("align", {a, b, "--mode", "global"});
  EXPECT_EQ(glob.code, 0);
  EXPECT_NE(glob.out.find("mode: global"), std::string::npos);
}

TEST(CliAlign, BadUsageReturnsTwo) {
  EXPECT_EQ(run("align", {"only_one.fa"}).code, 2);
  EXPECT_EQ(run("align", {"a.fa", "b.fa", "--mode", "sideways"}).code, 2);
  const RunResult r = run("align", {"a.fa", "b.fa", "--bogus", "1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--bogus"), std::string::npos);
}

TEST(CliAlign, MissingFileReturnsOne) {
  EXPECT_EQ(run("align", {"/nonexistent/x.fa", "/nonexistent/y.fa"}).code, 1);
}

TEST(CliScan, FindsPlantedRecord) {
  seq::RandomSequenceGenerator gen(9);
  const seq::Sequence q = gen.uniform(seq::dna(), 50, "query");
  std::vector<seq::Sequence> db;
  for (int k = 0; k < 6; ++k) {
    seq::Sequence rec = gen.uniform(seq::dna(), 400, "rec" + std::to_string(k));
    if (k == 4) {
      rec.append(seq::point_mutate(q, 0.02, gen.engine()));
      rec.set_name("rec4_hit");
    }
    db.push_back(std::move(rec));
  }
  const std::string qf = write_fa("cli_q", {q});
  const std::string dbf = write_fa("cli_db", db);
  const RunResult r = run("scan", {qf, dbf, "--top", "3", "--pes", "50"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("1. rec4_hit"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("E "), std::string::npos);
}

TEST(CliScan, CpuEngineMatchesAcceleratorScan) {
  seq::RandomSequenceGenerator gen(10);
  const seq::Sequence q = gen.uniform(seq::dna(), 50, "query");
  std::vector<seq::Sequence> db;
  for (int k = 0; k < 8; ++k) {
    seq::Sequence rec = gen.uniform(seq::dna(), 300, "rec" + std::to_string(k));
    if (k == 2 || k == 6) rec.append(seq::point_mutate(q, 0.03 * k, gen.engine()));
    db.push_back(std::move(rec));
  }
  const std::string qf = write_fa("cli_q2", {q});
  const std::string dbf = write_fa("cli_db2", db);
  const RunResult accel = run("scan", {qf, dbf, "--top", "4", "--pes", "50"});
  EXPECT_EQ(accel.code, 0) << accel.err;
  for (const std::string threads : {"1", "2", "8"}) {
    const RunResult cpu =
        run("scan", {qf, dbf, "--top", "4", "--engine", "cpu", "--threads", threads});
    EXPECT_EQ(cpu.code, 0) << cpu.err;
    EXPECT_EQ(cpu.out, accel.out) << threads << " threads";  // identical report
  }
  // threads > 1 flips the auto engine to cpu — same output again.
  const RunResult auto2 = run("scan", {qf, dbf, "--top", "4", "--threads", "2"});
  EXPECT_EQ(auto2.code, 0) << auto2.err;
  EXPECT_EQ(auto2.out, accel.out);
}

TEST(CliScan, BadEngineOptionsReturnTwo) {
  EXPECT_EQ(run("scan", {"q.fa", "db.fa", "--simd", "avx512"}).code, 2);
  EXPECT_EQ(run("scan", {"q.fa", "db.fa", "--engine", "gpu"}).code, 2);
  EXPECT_EQ(run("scan", {"q.fa", "db.fa", "--engine", "accel", "--threads", "4"}).code, 2);
}

TEST(CliScan, UnknownSimdPolicyListsChoices) {
  // Rejected at parse time with the full choice list — never a silent
  // fallback to auto (the file args are never even opened).
  const RunResult r = run("scan", {"q.fa", "db.fa", "--simd", "avx512"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("avx512"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("choices: auto|scalar|swar16|swar8|sse41|avx2"), std::string::npos)
      << r.err;
}

TEST(CliScan, EverySimdPolicyProducesTheSameReport) {
  seq::RandomSequenceGenerator gen(11);
  const seq::Sequence q = gen.uniform(seq::dna(), 40, "query");
  std::vector<seq::Sequence> db;
  for (int k = 0; k < 6; ++k) {
    seq::Sequence rec = gen.uniform(seq::dna(), 250, "rec" + std::to_string(k));
    if (k == 3) rec.append(seq::point_mutate(q, 0.02, gen.engine()));
    db.push_back(std::move(rec));
  }
  const std::string qf = write_fa("cli_q3", {q});
  const std::string dbf = write_fa("cli_db3", db);
  const RunResult ref = run("scan", {qf, dbf, "--top", "3", "--engine", "cpu"});
  ASSERT_EQ(ref.code, 0) << ref.err;
  // An unsupported striped request degrades (one-time stderr warning)
  // rather than failing, so every spelling must succeed everywhere and
  // report identical hits.
  for (const std::string simd : {"auto", "scalar", "swar16", "swar8", "sse41", "avx2"}) {
    const RunResult r =
        run("scan", {qf, dbf, "--top", "3", "--engine", "cpu", "--simd", simd});
    EXPECT_EQ(r.code, 0) << simd << ": " << r.err;
    EXPECT_EQ(r.out, ref.out) << "--simd " << simd;
  }
}

TEST(CliTranslate, SingleFrameAndSix) {
  const std::string f = write_fa("cli_t", {seq::Sequence::dna("ATGGCTTAA", "g")});
  const RunResult one = run("translate", {f});
  EXPECT_EQ(one.code, 0);
  EXPECT_NE(one.out.find("MAX"), std::string::npos) << one.out;
  const RunResult six = run("translate", {f, "--six"});
  EXPECT_EQ(six.code, 0);
  EXPECT_NE(six.out.find("rev frame 0"), std::string::npos);
}

TEST(CliOrfs, ReportsPlantedOrf) {
  const std::string f = write_fa(
      "cli_o", {seq::Sequence::dna("CCCCATGAAACCCGGGTTTAAACCCGGGAAATTTCCCGGGAAATAACCCC", "g")});
  const RunResult r = run("orfs", {f, "--min-codons", "5"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("fwd frame"), std::string::npos) << r.out;
}

TEST(CliDesign, ListsDevices) {
  const RunResult r = run("design", {"--query", "200", "--db", "500000"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("xc2vp70"), std::string::npos);
  EXPECT_NE(r.out.find("passes"), std::string::npos);
}

TEST(CliHelp, UnknownCommand) {
  const RunResult r = run("frobnicate", {});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
  EXPECT_EQ(run("help", {}).code, 0);
}

}  // namespace
