// `scan --filter {exact,seeded}` through run_command — the CI filter
// matrix drives these suites by name (FilterLegExact* / FilterLegSeeded*),
// one leg per filter mode, plus the cross-mode output parity check.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cli/commands.hpp"
#include "seq/fasta.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;

struct RunResult {
  int code;
  std::string out;
  std::string err;
};

RunResult run(const std::string& cmd, const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = cli::run_command(cmd, args, out, err);
  return {code, out.str(), err.str()};
}

// One query + database pair shared by every test in this file; the
// database holds random background plus three planted homologs.
struct Fixture {
  std::string query_fa;
  std::string db_fa;
  std::string db_swdb;
  std::string db_v1;

  Fixture() {
    seq::RandomSequenceGenerator gen(60601);
    const seq::Sequence query = gen.uniform(seq::dna(), 100, "q");
    std::vector<seq::Sequence> recs;
    for (int r = 0; r < 40; ++r) {
      seq::Sequence rec = gen.uniform(seq::dna(), 150, "rec" + std::to_string(r));
      if (r % 13 == 5) rec.append(seq::point_mutate(query, 0.04, gen.engine()));
      recs.push_back(std::move(rec));
    }
    query_fa = testing::TempDir() + "/" + test::unique_leaf("filter_q.fa");
    db_fa = testing::TempDir() + "/" + test::unique_leaf("filter_db.fa");
    db_swdb = testing::TempDir() + "/" + test::unique_leaf("filter_db.swdb");
    db_v1 = testing::TempDir() + "/" + test::unique_leaf("filter_db_v1.swdb");
    seq::write_fasta_file(query_fa, {query});
    seq::write_fasta_file(db_fa, recs);
    EXPECT_EQ(run("swdb", {"build", db_fa, db_swdb}).code, 0);
    EXPECT_EQ(run("swdb", {"build", db_fa, db_v1, "--no-index"}).code, 0);
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

TEST(FilterLegExact, ScanReportsHitsWithoutFilterLine) {
  const Fixture& f = fixture();
  const RunResult r =
      run("scan", {f.query_fa, f.db_swdb, "--engine", "cpu", "--min-score", "50",
                   "--filter", "exact"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("hits (top"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("filter:"), std::string::npos) << r.out;  // exact mode: no filter line
}

TEST(FilterLegExact, RunsOnFastaAndV1Stores) {
  const Fixture& f = fixture();
  for (const std::string& db : {f.db_fa, f.db_v1}) {
    const RunResult r = run("scan", {f.query_fa, db, "--engine", "cpu", "--min-score", "50"});
    EXPECT_EQ(r.code, 0) << db << ": " << r.err;
  }
}

TEST(FilterLegSeeded, ScanReportsFilterFunnel) {
  const Fixture& f = fixture();
  const RunResult r = run("scan", {f.query_fa, f.db_swdb, "--min-score", "50",
                                   "--filter", "seeded", "--stats"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("filter:"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("rescored"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("scan.filter.rejected"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("scan.filter.candidate_ratio"), std::string::npos) << r.out;
}

TEST(FilterLegSeeded, MatchesExactHitReport) {
  const Fixture& f = fixture();
  const std::vector<std::string> base{f.query_fa, f.db_swdb, "--engine", "cpu",
                                      "--min-score", "50", "--top", "10"};
  auto seeded_args = base;
  seeded_args.insert(seeded_args.end(), {"--filter", "seeded"});
  const RunResult exact = run("scan", base);
  const RunResult seeded = run("scan", seeded_args);
  ASSERT_EQ(exact.code, 0) << exact.err;
  ASSERT_EQ(seeded.code, 0) << seeded.err;
  // The hit block (everything up to the stats footer) must be identical.
  const auto hits_of = [](const std::string& out) {
    return out.substr(0, out.find("stats:"));
  };
  EXPECT_EQ(hits_of(exact.out), hits_of(seeded.out));
}

TEST(FilterLegSeeded, FailsClearlyWithoutAnIndex) {
  const Fixture& f = fixture();
  const RunResult v1 = run("scan", {f.query_fa, f.db_v1, "--filter", "seeded"});
  EXPECT_EQ(v1.code, 2);
  EXPECT_NE(v1.err.find("rebuild"), std::string::npos) << v1.err;

  const RunResult fasta = run("scan", {f.query_fa, f.db_fa, "--filter", "seeded"});
  EXPECT_EQ(fasta.code, 2);
  EXPECT_NE(fasta.err.find("swdb build"), std::string::npos) << fasta.err;
}

TEST(FilterLegSeeded, RejectsIncompatibleOptions) {
  const Fixture& f = fixture();
  EXPECT_EQ(run("scan", {f.query_fa, f.db_swdb, "--filter", "seeded", "--engine", "accel"}).code,
            2);
  EXPECT_EQ(run("scan", {f.query_fa, f.db_swdb, "--filter", "bogus"}).code, 2);
  EXPECT_EQ(run("scan", {f.query_fa, f.db_swdb, "--filter", "seeded", "--filter-threshold",
                         "-3"}).code,
            2);
  EXPECT_EQ(run("scan", {f.query_fa, f.db_swdb, "--batch", "--filter", "seeded", "--boards",
                         "1"}).code,
            2);
}

TEST(FilterLegSeeded, BatchServiceReportsFilterFunnel) {
  const Fixture& f = fixture();
  const RunResult r = run("scan", {f.query_fa, f.db_swdb, "--batch", "--filter", "seeded",
                                   "--min-score", "50"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("filter:"), std::string::npos) << r.out;
}

TEST(FilterLegSeeded, SwdbInfoShowsIndexSection) {
  const Fixture& f = fixture();
  const RunResult indexed = run("swdb", {"info", f.db_swdb});
  EXPECT_EQ(indexed.code, 0) << indexed.err;
  EXPECT_NE(indexed.out.find("k-mer index: k="), std::string::npos) << indexed.out;
  EXPECT_NE(indexed.out.find("load factor"), std::string::npos) << indexed.out;

  const RunResult v1 = run("swdb", {"info", f.db_v1});
  EXPECT_EQ(v1.code, 0) << v1.err;
  EXPECT_NE(v1.out.find("no k-mer index"), std::string::npos) << v1.out;
}

TEST(FilterLegSeeded, BuildSeedKControlsIndex) {
  const Fixture& f = fixture();
  const std::string k5 = testing::TempDir() + "/" + test::unique_leaf("filter_db_k5.swdb");
  const RunResult b = run("swdb", {"build", f.db_fa, k5, "--seed-k", "5"});
  EXPECT_EQ(b.code, 0) << b.err;
  EXPECT_NE(b.out.find("k=5"), std::string::npos) << b.out;
  EXPECT_EQ(run("swdb", {"build", f.db_fa, k5, "--seed-k", "5", "--no-index"}).code, 2);
  EXPECT_EQ(run("swdb", {"build", f.db_fa, k5, "--seed-k", "1"}).code, 1);
}

}  // namespace
