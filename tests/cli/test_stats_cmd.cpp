// CLI observability edges: scan --stats / --metrics-out and the
// stats-dump command. The JSON written by --metrics-out must parse back
// through obs::from_json and its counters must reconcile with the totals
// the scan itself reported on stdout.
#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "cli/commands.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "seq/fasta.hpp"
#include "seq/random.hpp"

namespace {

using namespace swr;

std::string write_fa(const std::string& stem, const std::vector<seq::Sequence>& recs) {
  const std::string path = testing::TempDir() + "/" + stem + ".fa";
  seq::write_fasta_file(path, recs);
  return path;
}

struct RunResult {
  int code;
  std::string out;
  std::string err;
};

RunResult run(const std::string& cmd, const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = cli::run_command(cmd, args, out, err);
  return {code, out.str(), err.str()};
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

// gtest_discover_tests runs each TEST as its own process, and ctest runs
// them concurrently — temp files must be unique per test or one process
// reads a file another is mid-rewrite.
std::string test_stem() {
  return ::testing::UnitTest::GetInstance()->current_test_info()->name();
}

std::string query_path() {
  return write_fa("stats_q_" + test_stem(), {seq::Sequence::dna("ACGTACGTACGTACGTACGT", "q")});
}

std::string db_path() {
  seq::RandomSequenceGenerator gen(77);
  std::vector<seq::Sequence> recs;
  for (int k = 0; k < 12; ++k) {
    recs.push_back(gen.uniform(seq::dna(), 30 + 5 * static_cast<std::size_t>(k), "r" + std::to_string(k)));
  }
  recs.push_back(seq::Sequence::dna("ACGTACGTACGTACGTACGT", "planted"));
  return write_fa("stats_db_" + test_stem(), recs);
}

TEST(CliStats, ScanStatsPrintsTable) {
  const RunResult r = run("scan", {query_path(), db_path(), "--engine", "cpu", "--stats"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("-- stats"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("scan.records"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("scan.cells"), std::string::npos);
}

TEST(CliStats, StoreScanRecordsDbMetrics) {
  const std::string store_path = testing::TempDir() + "/stats_db.swdb";
  ASSERT_EQ(run("swdb", {"build", db_path(), store_path}).code, 0);
  const RunResult r = run("scan", {query_path(), store_path, "--engine", "cpu", "--stats"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("db.opens"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("db.bytes_mapped"), std::string::npos);
  EXPECT_NE(r.out.find("scan.records"), std::string::npos);
}

TEST(CliStats, ScanWithoutStatsPrintsNoTable) {
  const RunResult r = run("scan", {query_path(), db_path(), "--engine", "cpu"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.find("-- stats"), std::string::npos) << r.out;
}

TEST(CliStats, MetricsOutWritesValidReconcilingJson) {
  const std::string metrics_path = testing::TempDir() + "/stats_scan.json";
  const RunResult r = run("scan", {query_path(), db_path(), "--engine", "cpu", "--threads", "2",
                                   "--metrics-out", metrics_path});
  EXPECT_EQ(r.code, 0) << r.err;

  const obs::Snapshot snap = obs::from_json(read_file(metrics_path));
  // The scan line on stdout reports the same totals the JSON carries:
  // "stats: R records scanned, C cells, F swar8 fallbacks".
  std::size_t records = 0;
  std::uint64_t cells = 0;
  {
    const std::size_t at = r.out.find("stats: ");
    ASSERT_NE(at, std::string::npos) << r.out;
    std::istringstream line(r.out.substr(at + 7));
    std::string word;
    line >> records >> word >> word >> cells;
  }
  EXPECT_GE(snap.counter("scan.records"), records);
  EXPECT_GE(snap.counter("scan.cells"), cells);
  EXPECT_GT(records, 0u);
}

TEST(CliStats, BatchMetricsReconcileExactly) {
  // Two queries through scan --batch; svc.* counters in the JSON must
  // equal the per-query totals printed on stdout, summed.
  const std::string q2 = write_fa("stats_q2", {seq::Sequence::dna("ACGTACGTACGTACGTACGT", "qa"),
                                               seq::Sequence::dna("TTTTGGGGCCCCAAAA", "qb")});
  const std::string metrics_path = testing::TempDir() + "/stats_batch.json";
  const RunResult r = run("scan", {q2, db_path(), "--engine", "cpu", "--batch", "--cpu-workers",
                                   "2", "--chunk", "4", "--metrics-out", metrics_path, "--stats"});
  EXPECT_EQ(r.code, 0) << r.err;

  std::uint64_t records = 0, cells = 0, fallbacks = 0, queries = 0;
  std::istringstream lines(r.out);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t at = line.find("stats: ");
    if (at == std::string::npos) continue;
    std::istringstream fields(line.substr(at + 7));
    std::uint64_t rec = 0, cel = 0, fb = 0;
    std::string word;
    fields >> rec >> word >> word >> cel >> word >> fb;
    records += rec;
    cells += cel;
    fallbacks += fb;
    ++queries;
  }
  ASSERT_EQ(queries, 2u) << r.out;

  const obs::Snapshot snap = obs::from_json(read_file(metrics_path));
  EXPECT_EQ(snap.counter("svc.records_scanned"), records);
  EXPECT_EQ(snap.counter("svc.cells"), cells);
  EXPECT_EQ(snap.counter("svc.swar8_fallbacks"), fallbacks);
  EXPECT_EQ(snap.counter("svc.queries_done"), 2u);
  // The batch path prints the span table when observability is on.
  EXPECT_NE(r.out.find("-- trace spans"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("-- stats"), std::string::npos);
}

TEST(CliStats, StatsDumpRendersSavedJson) {
  const std::string metrics_path = testing::TempDir() + "/stats_dump_in.json";
  ASSERT_EQ(run("scan", {query_path(), db_path(), "--engine", "cpu", "--metrics-out",
                         metrics_path})
                .code,
            0);
  const RunResult table = run("stats-dump", {metrics_path});
  EXPECT_EQ(table.code, 0) << table.err;
  EXPECT_NE(table.out.find("scan.records"), std::string::npos) << table.out;
  EXPECT_NE(table.out.find("counters:"), std::string::npos);

  // --json re-emits the canonical JSON byte-for-byte.
  const RunResult json = run("stats-dump", {metrics_path, "--json"});
  EXPECT_EQ(json.code, 0);
  EXPECT_EQ(json.out, read_file(metrics_path));
}

TEST(CliStats, StatsDumpRejectsGarbage) {
  const std::string bad = testing::TempDir() + "/stats_bad.json";
  std::ofstream(bad) << "this is not a metrics dump";
  EXPECT_EQ(run("stats-dump", {bad}).code, 2);
  EXPECT_EQ(run("stats-dump", {"/no/such/file.json"}).code, 2);
  EXPECT_EQ(run("stats-dump", {bad, bad}).code, 2);  // at most one positional
}

TEST(CliStats, MetricsOutUnwritablePathFails) {
  const RunResult r = run("scan", {query_path(), db_path(), "--engine", "cpu", "--metrics-out",
                                   "/no/such/dir/metrics.json"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("metrics"), std::string::npos) << r.err;
}

}  // namespace
