// .swdb round-trip, corruption rejection, and the acceptance invariant:
// scans of a store are bit-identical to scans of the FASTA records it was
// built from, for every engine, thread count and SIMD policy.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/accelerator.hpp"
#include "core/multiboard.hpp"
#include "db/builder.hpp"
#include "db/store.hpp"
#include "host/batch.hpp"
#include "host/fleet_scan.hpp"
#include "host/scan_engine.hpp"
#include "seq/fasta.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;

std::string temp_path(const std::string& leaf) { return testing::TempDir() + "/" + leaf; }

std::vector<seq::Sequence> mixed_dna_records() {
  std::vector<seq::Sequence> recs;
  for (int k = 0; k < 12; ++k) {
    seq::Sequence s = test::random_dna(5 + 41 * static_cast<std::size_t>(k % 7), 900 + k);
    s.set_name("rec" + std::to_string(k));
    recs.push_back(std::move(s));
  }
  recs.push_back(seq::Sequence::dna("", "empty"));
  recs.push_back(seq::Sequence::dna("ACGTACGTACGTACGT", "planted"));
  return recs;
}

void expect_same_hits(const host::ScanResult& a, const host::ScanResult& b) {
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t k = 0; k < a.hits.size(); ++k) {
    EXPECT_EQ(a.hits[k].record, b.hits[k].record) << "hit " << k;
    EXPECT_EQ(a.hits[k].result.score, b.hits[k].result.score) << "hit " << k;
    EXPECT_EQ(a.hits[k].result.end.i, b.hits[k].result.end.i) << "hit " << k;
    EXPECT_EQ(a.hits[k].result.end.j, b.hits[k].result.end.j) << "hit " << k;
  }
  EXPECT_EQ(a.records_scanned, b.records_scanned);
  EXPECT_EQ(a.cell_updates, b.cell_updates);
}

void expect_round_trip(const std::vector<seq::Sequence>& recs, const db::Store& store) {
  ASSERT_EQ(store.size(), recs.size());
  std::vector<seq::Code> scratch;
  std::uint64_t residues = 0;
  for (std::size_t r = 0; r < recs.size(); ++r) {
    EXPECT_EQ(store.length(r), recs[r].size()) << "record " << r;
    EXPECT_EQ(store.name(r), recs[r].name()) << "record " << r;
    const auto codes = store.codes(r, scratch);
    ASSERT_EQ(codes.size(), recs[r].size());
    for (std::size_t i = 0; i < codes.size(); ++i) {
      EXPECT_EQ(codes[i], recs[r].codes()[i]) << "record " << r << " pos " << i;
    }
    EXPECT_EQ(store.sequence(r), recs[r]);
    residues += recs[r].size();
  }
  EXPECT_EQ(store.total_residues(), residues);
  EXPECT_NO_THROW(store.verify_payload());
}

TEST(SwdbStore, RoundTripPacked2) {
  const auto recs = mixed_dna_records();
  const std::string path = temp_path("roundtrip_p2.swdb");
  const db::BuildStats st = db::build_store(recs, path);
  EXPECT_EQ(st.encoding, db::Encoding::Packed2);  // Auto: DNA packs
  EXPECT_EQ(st.records, recs.size());
  const db::Store store = db::Store::open(path);
  EXPECT_EQ(store.encoding(), db::Encoding::Packed2);
  EXPECT_EQ(&store.alphabet(), &seq::dna());
  expect_round_trip(recs, store);
}

TEST(SwdbStore, RoundTripRaw8) {
  const auto recs = mixed_dna_records();
  const std::string path = temp_path("roundtrip_r8.swdb");
  db::BuildOptions opt;
  opt.encoding = db::BuildOptions::Pick::Raw8;
  const db::BuildStats st = db::build_store(recs, path, opt);
  EXPECT_EQ(st.encoding, db::Encoding::Raw8);
  const db::Store store = db::Store::open(path);
  EXPECT_EQ(store.encoding(), db::Encoding::Raw8);
  expect_round_trip(recs, store);
}

TEST(SwdbStore, AutoPicksRaw8ForProtein) {
  std::vector<seq::Sequence> recs;
  for (int k = 0; k < 4; ++k) {
    recs.push_back(test::random_protein(30 + static_cast<std::size_t>(k), 70 + k));
    recs.back().set_name("p" + std::to_string(k));
  }
  const std::string path = temp_path("protein.swdb");
  const db::BuildStats st = db::build_store(recs, path);
  EXPECT_EQ(st.encoding, db::Encoding::Raw8);
  const db::Store store = db::Store::open(path);
  EXPECT_EQ(&store.alphabet(), &seq::protein());
  expect_round_trip(recs, store);
}

TEST(SwdbStore, Packed2IsSmallerThanRaw8) {
  const auto recs = mixed_dna_records();
  db::BuildOptions raw;
  raw.encoding = db::BuildOptions::Pick::Raw8;
  const db::BuildStats r8 = db::build_store(recs, temp_path("size_r8.swdb"), raw);
  const db::BuildStats p2 = db::build_store(recs, temp_path("size_p2.swdb"));
  EXPECT_LT(p2.file_bytes, r8.file_bytes);
}

TEST(SwdbStore, EmptyDatabase) {
  const std::string path = temp_path("empty.swdb");
  db::build_store({}, path);
  const db::Store store = db::Store::open(path);
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.total_residues(), 0u);
  EXPECT_NO_THROW(store.verify_payload());
}

TEST(SwdbStore, ScheduleOrderIsLengthSortedPermutation) {
  const auto recs = mixed_dna_records();
  const std::string path = temp_path("order.swdb");
  db::build_store(recs, path);
  const db::Store store = db::Store::open(path);
  const auto order = store.schedule_order();
  ASSERT_EQ(order.size(), recs.size());
  std::vector<bool> seen(recs.size(), false);
  for (std::size_t k = 0; k < order.size(); ++k) {
    ASSERT_LT(order[k], recs.size());
    EXPECT_FALSE(seen[order[k]]) << "duplicate id " << order[k];
    seen[order[k]] = true;
    if (k > 0) {
      const std::size_t prev = store.length(order[k - 1]);
      const std::size_t cur = store.length(order[k]);
      EXPECT_TRUE(prev > cur || (prev == cur && order[k - 1] < order[k]))
          << "order not length-descending at " << k;
    }
  }
}

TEST(SwdbStore, BucketsMatchLengths) {
  const auto recs = mixed_dna_records();
  const std::string path = temp_path("buckets.swdb");
  db::build_store(recs, path);
  const db::Store store = db::Store::open(path);
  for (std::size_t r = 0; r < store.size(); ++r) {
    EXPECT_EQ(store.bucket(r), db::length_bucket(store.length(r)));
  }
}

// The acceptance invariant: build-from-FASTA -> mmap-read -> scan is
// bit-identical to the direct FASTA path for every engine, thread count
// and SIMD policy.
TEST(SwdbStore, ScanParityEveryEngine) {
  const auto recs = mixed_dna_records();
  const std::string fasta = temp_path("parity.fa");
  seq::write_fasta_file(fasta, recs);
  const std::string path = temp_path("parity.swdb");
  db::build_store_from_fasta(fasta, path, seq::dna());
  const db::Store store = db::Store::open(path);

  const seq::Sequence query = seq::Sequence::dna("ACGTACGTACGTACGT", "q");
  const align::Scoring sc = align::Scoring::paper_default();

  for (const auto policy : {host::SimdPolicy::Auto, host::SimdPolicy::Scalar,
                            host::SimdPolicy::Swar16, host::SimdPolicy::Swar8}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      host::ScanOptions opt;
      opt.top_k = 6;
      opt.threads = threads;
      opt.simd_policy = policy;
      const host::ScanResult direct = host::scan_database_cpu(query, recs, sc, opt);
      const host::ScanResult mapped = host::scan_database_cpu(query, store, sc, opt);
      SCOPED_TRACE("policy=" + std::to_string(static_cast<int>(policy)) +
                   " threads=" + std::to_string(threads));
      expect_same_hits(direct, mapped);
      EXPECT_EQ(direct.swar8_fallbacks, mapped.swar8_fallbacks);
    }
  }

  host::ScanOptions opt;
  opt.top_k = 6;
  core::SmithWatermanAccelerator acc(core::xc2vp70(), 32, sc);
  expect_same_hits(host::scan_database(acc, query, recs, opt),
                   host::scan_database(acc, query, store, opt));

  core::BoardFleet fleet = core::make_board_fleet(core::xc2vp70(), 3, 32, sc);
  expect_same_hits(host::scan_database_fleet(fleet, query, recs, opt),
                   host::scan_database_fleet(fleet, query, store, opt));
}

// ---- corruption rejection ------------------------------------------------

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class SwdbCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = temp_path("corrupt.swdb");
    db::build_store(mixed_dna_records(), path_);
    bytes_ = slurp(path_);
    ASSERT_GT(bytes_.size(), 64u);
  }
  std::string path_;
  std::vector<char> bytes_;
};

TEST_F(SwdbCorruption, BadMagicRejected) {
  bytes_[0] ^= 0x40;
  spit(path_, bytes_);
  EXPECT_THROW((void)db::Store::open(path_), db::StoreError);
}

TEST_F(SwdbCorruption, HeaderFlipRejected) {
  bytes_[12] ^= 0x01;  // inside the hashed 56 bytes
  spit(path_, bytes_);
  EXPECT_THROW((void)db::Store::open(path_), db::StoreError);
}

TEST_F(SwdbCorruption, TruncatedHeaderRejected) {
  bytes_.resize(32);
  spit(path_, bytes_);
  EXPECT_THROW((void)db::Store::open(path_), db::StoreError);
}

TEST_F(SwdbCorruption, TruncatedPayloadRejected) {
  bytes_.resize(bytes_.size() - 8);
  spit(path_, bytes_);
  EXPECT_THROW((void)db::Store::open(path_), db::StoreError);
}

TEST_F(SwdbCorruption, PayloadFlipCaughtByVerify) {
  bytes_.back() = static_cast<char>(bytes_.back() ^ 0x01);
  spit(path_, bytes_);
  const db::Store store = db::Store::open(path_);  // open stays O(1): no payload hash
  EXPECT_THROW(store.verify_payload(), db::StoreError);
}

TEST_F(SwdbCorruption, MissingFileRejected) {
  EXPECT_THROW((void)db::Store::open(temp_path("does_not_exist.swdb")), db::StoreError);
}

// ---- schedule / length-distribution stats (swdb info) --------------------

TEST(SwdbScheduleStats, KnownLengthsProduceExactStats) {
  std::vector<seq::Sequence> recs;
  for (const std::size_t len : {std::size_t{10}, std::size_t{30}, std::size_t{20}}) {
    recs.push_back(test::random_dna(len, 700 + len));
  }
  const std::string path = temp_path("sched_known.swdb");
  db::build_store(recs, path);
  const db::ScheduleStats st = db::schedule_stats(db::Store::open(path));
  EXPECT_EQ(st.min_length, 10u);
  EXPECT_EQ(st.median_length, 20u);  // middle of the length-sorted order
  EXPECT_EQ(st.max_length, 30u);
  // Greedy lane assignment: three lanes loaded 30/20/10, makespan 30,
  // useful residues 60 — occupancy 60/(30*L) exactly.
  EXPECT_DOUBLE_EQ(st.occupancy16, 60.0 / (30.0 * 16.0));
  EXPECT_DOUBLE_EQ(st.occupancy32, 60.0 / (30.0 * 32.0));
}

TEST(SwdbScheduleStats, EmptyStoreAndEmptyRecordsHandled) {
  const std::string empty_path = temp_path("sched_empty.swdb");
  db::build_store({}, empty_path);
  const db::ScheduleStats none = db::schedule_stats(db::Store::open(empty_path));
  EXPECT_EQ(none.max_length, 0u);
  EXPECT_DOUBLE_EQ(none.occupancy16, 0.0);

  // Empty records count in the length distribution (min 0) but never
  // enter a lane, so they do not drag occupancy down.
  std::vector<seq::Sequence> recs = {seq::Sequence::dna("", "e"),
                                     test::random_dna(50, 808)};
  const std::string path = temp_path("sched_mixed.swdb");
  db::build_store(recs, path);
  const db::ScheduleStats st = db::schedule_stats(db::Store::open(path));
  EXPECT_EQ(st.min_length, 0u);
  EXPECT_EQ(st.max_length, 50u);
  EXPECT_DOUBLE_EQ(st.occupancy16, 50.0 / (50.0 * 16.0));
}

TEST(SwdbScheduleStats, EqualLengthsFillEveryLane) {
  std::vector<seq::Sequence> recs;
  for (int k = 0; k < 32; ++k) recs.push_back(test::random_dna(64, 900 + k));
  const std::string path = temp_path("sched_full.swdb");
  db::build_store(recs, path);
  const db::ScheduleStats st = db::schedule_stats(db::Store::open(path));
  EXPECT_DOUBLE_EQ(st.occupancy16, 1.0);
  EXPECT_DOUBLE_EQ(st.occupancy32, 1.0);
}

}  // namespace
