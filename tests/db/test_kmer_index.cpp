// The format-v2 k-mer index section: build-time construction, mmap view
// round-trip, v1 compatibility (old files open and scan; seeded lookups
// fail with an actionable error), and corruption rejection.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "db/builder.hpp"
#include "db/format.hpp"
#include "db/store.hpp"
#include "host/scan_engine.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;

std::string temp_path(const std::string& leaf) { return testing::TempDir() + "/" + leaf; }

std::vector<seq::Sequence> indexable_records() {
  std::vector<seq::Sequence> recs;
  for (int k = 0; k < 10; ++k) {
    seq::Sequence s = test::random_dna(40 + 23 * static_cast<std::size_t>(k), 4200 + k);
    s.set_name("rec" + std::to_string(k));
    recs.push_back(std::move(s));
  }
  recs.push_back(seq::Sequence::dna("", "empty"));
  recs.push_back(seq::Sequence::dna("ACG", "tiny"));  // shorter than any k
  return recs;
}

void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5A);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

TEST(KmerIndexSection, BuildAppendsVerifiedSection) {
  const auto recs = indexable_records();
  const std::string path = temp_path("kidx_build.swdb");
  const db::BuildStats st = db::build_store(recs, path);
  EXPECT_NE(st.seed_k, 0u);
  EXPECT_NE(st.index_postings, 0u);

  const db::Store store = db::Store::open(path);
  EXPECT_EQ(store.header().version, db::kFormatVersionIndexed);
  ASSERT_TRUE(store.has_kmer_index());
  const db::KmerIndexView& idx = store.kmer_index();
  EXPECT_EQ(idx.k(), st.seed_k);
  EXPECT_EQ(idx.bucket_count(), st.index_buckets);
  EXPECT_EQ(idx.postings_count(), st.index_postings);
  EXPECT_GT(idx.load_factor(), 0.0);
  EXPECT_LE(idx.load_factor(), 1.0);
  EXPECT_NO_THROW(store.verify_payload());  // payload hash covers the index
}

TEST(KmerIndexSection, PostingsEnumerateEveryKmerOccurrence) {
  const auto recs = indexable_records();
  const std::string path = temp_path("kidx_postings.swdb");
  db::build_store(recs, path);
  const db::Store store = db::Store::open(path);
  const db::KmerIndexView& idx = store.kmer_index();
  const std::size_t k = idx.k();
  const std::size_t base = store.alphabet().size();

  // Brute-force reference: every k-mer of every record must be exactly
  // the postings of its bucket, sorted by (record, pos).
  std::uint64_t expected_total = 0;
  for (std::uint32_t r = 0; r < recs.size(); ++r) {
    const auto codes = recs[r].codes();
    if (codes.size() < k) continue;
    expected_total += codes.size() - k + 1;
    for (std::size_t p = 0; p + k <= codes.size(); ++p) {
      std::uint64_t code = 0;
      for (std::size_t t = 0; t < k; ++t) code = code * base + codes[p + t];
      const auto bucket = idx.postings_for(code);
      const bool found = std::any_of(bucket.begin(), bucket.end(), [&](const db::KmerPosting& e) {
        return e.record == r && e.pos == p;
      });
      EXPECT_TRUE(found) << "record " << r << " pos " << p;
    }
  }
  EXPECT_EQ(idx.postings_count(), expected_total);

  // Postings within every bucket ascend by (record, pos) — the layout the
  // prefilter's sequential merge depends on.
  for (std::uint64_t b = 0; b < idx.bucket_count(); ++b) {
    const auto span = idx.postings_for(b);
    for (std::size_t i = 1; i < span.size(); ++i) {
      EXPECT_TRUE(span[i - 1].record < span[i].record ||
                  (span[i - 1].record == span[i].record && span[i - 1].pos < span[i].pos))
          << "bucket " << b;
    }
  }
}

TEST(KmerIndexSection, NoIndexOptionWritesV1) {
  const auto recs = indexable_records();
  const std::string path = temp_path("kidx_v1.swdb");
  db::BuildOptions opt;
  opt.kmer_index = false;
  const db::BuildStats st = db::build_store(recs, path, opt);
  EXPECT_EQ(st.seed_k, 0u);
  EXPECT_EQ(st.index_bytes, 0u);

  const db::Store store = db::Store::open(path);
  EXPECT_EQ(store.header().version, db::kFormatVersion);
  EXPECT_FALSE(store.has_kmer_index());
  try {
    (void)store.kmer_index();
    FAIL() << "kmer_index() on a v1 store must throw";
  } catch (const db::StoreError& e) {
    EXPECT_NE(std::string(e.what()).find("rebuild"), std::string::npos) << e.what();
  }
}

TEST(KmerIndexSection, V1StoreStillScansExact) {
  const auto recs = indexable_records();
  const std::string path = temp_path("kidx_v1_scan.swdb");
  db::BuildOptions opt;
  opt.kmer_index = false;
  db::build_store(recs, path, opt);
  const db::Store store = db::Store::open(path);

  const seq::Sequence query = test::random_dna(80, 5000);
  host::ScanOptions so;
  so.min_score = 10;
  const host::ScanResult a = host::scan_database_cpu(query, store, align::Scoring{}, so);
  const host::ScanResult b = host::scan_database_cpu(query, recs, align::Scoring{}, so);
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].record, b.hits[i].record);
    EXPECT_EQ(a.hits[i].result.score, b.hits[i].result.score);
  }
}

TEST(KmerIndexSection, ExplicitSeedKRoundTripsAndValidates) {
  const auto recs = indexable_records();
  const std::string path = temp_path("kidx_k5.swdb");
  db::BuildOptions opt;
  opt.seed_k = 5;
  db::build_store(recs, path, opt);
  const db::Store store = db::Store::open(path);
  EXPECT_EQ(store.kmer_index().k(), 5u);
  EXPECT_EQ(store.kmer_index().bucket_count(), 1024u);  // 4^5

  db::BuildOptions bad;
  bad.seed_k = 1;
  EXPECT_THROW(db::build_store(recs, temp_path("kidx_bad1.swdb"), bad), db::StoreError);
  bad.seed_k = 32;
  EXPECT_THROW(db::build_store(recs, temp_path("kidx_bad32.swdb"), bad), db::StoreError);
  // 21^7 buckets blows the bucket-table cap for protein.
  std::vector<seq::Sequence> prot{test::random_protein(100, 9)};
  db::BuildOptions popt;
  popt.seed_k = 7;
  EXPECT_THROW(db::build_store(prot, temp_path("kidx_badp.swdb"), popt), db::StoreError);
}

TEST(KmerIndexSection, AutoSeedKTracksAlphabetAndSize) {
  // DNA: 4^k <= clamp(residues, 4096, 2^24).
  EXPECT_EQ(db::auto_seed_k(4, 0), 6u);          // clamp floor 4096 = 4^6
  EXPECT_EQ(db::auto_seed_k(4, 1u << 20), 10u);  // 4^10 = 2^20
  EXPECT_EQ(db::auto_seed_k(4, 1u << 30), 12u);  // clamp ceiling 2^24 = 4^12
  // Protein (21 letters): 21^2 = 441 <= 4096 < 21^3.
  EXPECT_EQ(db::auto_seed_k(21, 0), 2u);
  EXPECT_EQ(db::auto_seed_k(21, 1u << 30), 5u);  // 21^5 ~ 4.1M <= 2^24 < 21^6
}

TEST(KmerIndexSection, CorruptPostingsFailVerify) {
  const auto recs = indexable_records();
  const std::string path = temp_path("kidx_corrupt.swdb");
  const db::BuildStats st = db::build_store(recs, path);
  ASSERT_NE(st.index_postings, 0u);

  // Last byte of the file sits in the postings array.
  flip_byte(path, st.file_bytes - 1);
  const db::Store store = db::Store::open(path);  // open stays O(1), no hash
  EXPECT_THROW(store.verify_payload(), db::StoreError);
}

TEST(KmerIndexSection, CorruptIndexHeaderFailsOpen) {
  const auto recs = indexable_records();
  const std::string path = temp_path("kidx_corrupt_hdr.swdb");
  const db::BuildStats st = db::build_store(recs, path);
  // The index header starts index_bytes before EOF; byte 8 is inside the
  // hashed header prefix (version field).
  flip_byte(path, st.file_bytes - st.index_bytes + 8);
  EXPECT_THROW(db::Store::open(path), db::StoreError);
}

TEST(KmerIndexSection, RecordsRoundTripUnchangedWithIndex) {
  const auto recs = indexable_records();
  const std::string path = temp_path("kidx_roundtrip.swdb");
  db::build_store(recs, path);
  const db::Store store = db::Store::open(path);
  ASSERT_EQ(store.size(), recs.size());
  std::vector<seq::Code> scratch;
  for (std::size_t r = 0; r < recs.size(); ++r) {
    EXPECT_EQ(store.name(r), recs[r].name());
    const auto codes = store.codes(r, scratch);
    ASSERT_EQ(codes.size(), recs[r].size());
    EXPECT_TRUE(std::equal(codes.begin(), codes.end(), recs[r].codes().begin()));
  }
}

}  // namespace
