#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "par/thread_pool.hpp"

namespace {

using swr::par::ThreadPool;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int k = 0; k < 50; ++k) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, TasksMaySubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] {
    for (int k = 0; k < 10; ++k) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ParallelExecutionActuallyOverlaps) {
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  for (int k = 0; k < 8; ++k) {
    pool.submit([&] {
      const int now = in_flight.fetch_add(1) + 1;
      int seen = max_in_flight.load();
      while (seen < now && !max_in_flight.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      in_flight.fetch_sub(1);
    });
  }
  pool.wait_idle();
  // On a single-core host the scheduler may still serialise, so only
  // assert it never exceeds the worker count.
  EXPECT_LE(max_in_flight.load(), 2);
  EXPECT_GE(max_in_flight.load(), 1);
}

TEST(ThreadPool, RejectsBadUsage) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit({}), std::invalid_argument);
}

TEST(ThreadPool, SizeReportsWorkers) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPool, SubmitBulkRunsEveryTask) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int k = 0; k < 100; ++k) {
    tasks.emplace_back([&count] { count.fetch_add(1); });
  }
  pool.submit_bulk(std::move(tasks));
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitBulkRejectsAnyEmptyTaskBeforeEnqueuing) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([&count] { count.fetch_add(1); });
  tasks.emplace_back();  // empty — must poison the whole batch
  EXPECT_THROW(pool.submit_bulk(std::move(tasks)), std::invalid_argument);
  pool.wait_idle();
  EXPECT_EQ(count.load(), 0);  // nothing from the rejected batch ran
}

TEST(ThreadPool, SubmitBulkOfNothingIsANoOp) {
  ThreadPool pool(1);
  pool.submit_bulk({});
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, RepeatedBulkWaitCyclesAreLossless) {
  // Hammers the wait_idle handoff: many rounds of bulk submit + wait on a
  // small pool — a lost wakeup here would hang the test.
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 200; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int k = 0; k < 4; ++k) {
      tasks.emplace_back([&count] { count.fetch_add(1); });
    }
    pool.submit_bulk(std::move(tasks));
    pool.wait_idle();
    ASSERT_EQ(count.load(), (round + 1) * 4);
  }
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int k = 0; k < 20; ++k) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(count.load(), 20);
}

}  // namespace
