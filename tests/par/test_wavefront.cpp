#include <gtest/gtest.h>

#include <tuple>

#include "align/sw_linear.hpp"
#include "par/wavefront.hpp"
#include "seq/workload.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::par;

const align::Scoring kSc = align::Scoring::paper_default();

TEST(Wavefront, Figure2Example) {
  const seq::Sequence s = seq::Sequence::dna("TATGGAC");
  const seq::Sequence t = seq::Sequence::dna("TAGTGACT");
  WavefrontConfig cfg;
  cfg.threads = 2;
  cfg.row_block = 2;
  EXPECT_EQ(wavefront_sw(s, t, kSc, cfg), align::sw_linear(s, t, kSc));
}

TEST(Wavefront, EmptyInputs) {
  WavefrontConfig cfg;
  EXPECT_EQ(wavefront_sw(seq::Sequence::dna(""), seq::Sequence::dna("ACG"), kSc, cfg).score, 0);
  EXPECT_EQ(wavefront_sw(seq::Sequence::dna("ACG"), seq::Sequence::dna(""), kSc, cfg).score, 0);
}

TEST(Wavefront, ValidatesConfigAndAlphabets) {
  WavefrontConfig bad;
  bad.threads = 0;
  EXPECT_THROW(
      (void)wavefront_sw(seq::Sequence::dna("AC"), seq::Sequence::dna("AC"), kSc, bad),
      std::invalid_argument);
  bad = WavefrontConfig{};
  bad.row_block = 0;
  EXPECT_THROW(
      (void)wavefront_sw(seq::Sequence::dna("AC"), seq::Sequence::dna("AC"), kSc, bad),
      std::invalid_argument);
  EXPECT_THROW((void)wavefront_sw(seq::Sequence::dna("AC"), seq::Sequence::protein("AR"), kSc,
                                  WavefrontConfig{}),
               std::invalid_argument);
}

// Central property: identical to the sequential kernel — score AND
// canonical coordinates — across thread counts, block shapes and sizes.
class WavefrontEquivalence
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>> {
};

TEST_P(WavefrontEquivalence, MatchesSequentialKernel) {
  const auto [threads, row_block, m, n] = GetParam();
  const seq::Sequence a = swr::test::random_dna(m, m * 3 + n);
  const seq::Sequence b = swr::test::random_dna(n, n * 5 + m);
  WavefrontConfig cfg;
  cfg.threads = threads;
  cfg.row_block = row_block;
  EXPECT_EQ(wavefront_sw(a, b, kSc, cfg), align::sw_linear(a, b, kSc))
      << "threads=" << threads << " row_block=" << row_block << " m=" << m << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, WavefrontEquivalence,
                         testing::Combine(testing::Values<std::size_t>(1, 2, 4, 7),
                                          testing::Values<std::size_t>(1, 16, 500),
                                          testing::Values<std::size_t>(1, 50, 333),
                                          testing::Values<std::size_t>(1, 61, 256)));

TEST(Wavefront, MoreColumnBlocksThanColumnsIsClamped) {
  const seq::Sequence a = swr::test::random_dna(40, 1);
  const seq::Sequence b = swr::test::random_dna(3, 2);
  WavefrontConfig cfg;
  cfg.threads = 8;  // more workers than columns
  EXPECT_EQ(wavefront_sw(a, b, kSc, cfg), align::sw_linear(a, b, kSc));
}

TEST(Wavefront, ExplicitColBlocksOverride) {
  const seq::Sequence a = swr::test::random_dna(100, 5);
  const seq::Sequence b = swr::test::random_dna(100, 6);
  WavefrontConfig cfg;
  cfg.threads = 2;
  cfg.col_blocks = 13;  // deliberately mismatched with the thread count
  cfg.row_block = 7;
  EXPECT_EQ(wavefront_sw(a, b, kSc, cfg), align::sw_linear(a, b, kSc));
}

TEST(Wavefront, HomologWorkload) {
  seq::MutationModel mm;
  mm.substitution_rate = 0.05;
  mm.insertion_rate = 0.02;
  mm.deletion_rate = 0.02;
  const auto pair = seq::make_homolog_pair(2000, mm, 99);
  WavefrontConfig cfg;
  cfg.threads = 4;
  cfg.row_block = 128;
  EXPECT_EQ(wavefront_sw(pair.a, pair.b, kSc, cfg), align::sw_linear(pair.a, pair.b, kSc));
}

TEST(Wavefront, SubstitutionMatrixScoring) {
  align::Scoring sc;
  sc.matrix = &align::blosum62();
  sc.gap = -8;
  const seq::Sequence a = swr::test::random_protein(120, 7);
  const seq::Sequence b = swr::test::random_protein(140, 8);
  WavefrontConfig cfg;
  cfg.threads = 3;
  cfg.row_block = 32;
  EXPECT_EQ(wavefront_sw(a, b, sc, cfg), align::sw_linear(a, b, sc));
}

}  // namespace
