#include <gtest/gtest.h>

#include "align/sw_full.hpp"
#include "align/banded.hpp"
#include "par/zalign.hpp"
#include "seq/workload.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::par;

const align::Scoring kSc = align::Scoring::paper_default();

ZAlignOptions small_opts() {
  ZAlignOptions opt;
  opt.wavefront.threads = 2;
  opt.wavefront.row_block = 64;
  return opt;
}

TEST(ZAlign, MatchesFullMatrixOracleScore) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const seq::Sequence a = swr::test::random_dna(150, seed);
    const seq::Sequence b = swr::test::random_dna(120, seed + 50);
    const ZAlignResult z = zalign(a, b, kSc, small_opts());
    const align::LocalAlignment full = align::sw_align(a, b, kSc);
    EXPECT_EQ(z.alignment.score, full.score) << "seed " << seed;
    if (full.score > 0) {
      EXPECT_EQ(align::score_of(z.alignment.cigar, a, b, z.alignment.begin, kSc), full.score);
    }
  }
}

TEST(ZAlign, HomologsUseBandedRetrieval) {
  seq::MutationModel mm;
  mm.substitution_rate = 0.05;
  mm.insertion_rate = 0.01;
  mm.deletion_rate = 0.01;
  const auto pair = seq::make_homolog_pair(1500, mm, 77);
  const ZAlignResult z = zalign(pair.a, pair.b, kSc, small_opts());
  EXPECT_EQ(z.mode, RetrievalMode::Banded);
  EXPECT_GT(z.band, 0u);
  // Restricted memory: orders of magnitude below the full matrix.
  EXPECT_LT(z.retrieval_cells, pair.a.size() * pair.b.size() / 10);
  EXPECT_EQ(z.alignment.score, align::sw_align(pair.a, pair.b, kSc).score);
  EXPECT_EQ(align::score_of(z.alignment.cigar, pair.a, pair.b, z.alignment.begin, kSc),
            z.alignment.score);
}

TEST(ZAlign, TinyBudgetFallsBackToHirschberg) {
  seq::MutationModel mm;
  mm.substitution_rate = 0.05;
  const auto pair = seq::make_homolog_pair(600, mm, 31);
  ZAlignOptions opt = small_opts();
  opt.max_retrieval_cells = 16;  // nothing fits this
  const ZAlignResult z = zalign(pair.a, pair.b, kSc, opt);
  EXPECT_EQ(z.mode, RetrievalMode::Hirschberg);
  EXPECT_EQ(z.alignment.score, align::sw_align(pair.a, pair.b, kSc).score);
  EXPECT_EQ(align::score_of(z.alignment.cigar, pair.a, pair.b, z.alignment.begin, kSc),
            z.alignment.score);
}

TEST(ZAlign, BandCoversTheReportedAlignment) {
  seq::MutationModel mm;
  mm.substitution_rate = 0.04;
  mm.insertion_rate = 0.02;
  mm.deletion_rate = 0.02;
  const auto pair = seq::make_homolog_pair(900, mm, 41);
  const ZAlignResult z = zalign(pair.a, pair.b, kSc, small_opts());
  ASSERT_EQ(z.mode, RetrievalMode::Banded);
  // The transcript's drift (relative to the window origin) fits the band.
  EXPECT_LE(align::required_band(z.alignment.cigar, align::Cell{1, 1}), z.band);
}

TEST(ZAlign, NoPositiveAlignment) {
  const ZAlignResult z =
      zalign(seq::Sequence::dna("AAAA"), seq::Sequence::dna("TTTT"), kSc, small_opts());
  EXPECT_EQ(z.alignment.score, 0);
  EXPECT_EQ(z.mode, RetrievalMode::None);
}

TEST(ZAlign, Validation) {
  ZAlignOptions opt = small_opts();
  opt.max_retrieval_cells = 0;
  EXPECT_THROW((void)zalign(seq::Sequence::dna("AC"), seq::Sequence::dna("AC"), kSc, opt),
               std::invalid_argument);
  EXPECT_THROW(
      (void)zalign(seq::Sequence::dna("AC"), seq::Sequence::protein("AR"), kSc, small_opts()),
      std::invalid_argument);
}

}  // namespace
