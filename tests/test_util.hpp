// Shared helpers for the test suite.
#pragma once

#include <cstdint>
#include <random>

#include "seq/random.hpp"
#include "seq/sequence.hpp"

namespace swr::test {

/// Deterministic random DNA of length n.
inline seq::Sequence random_dna(std::size_t n, std::uint64_t seed) {
  seq::RandomSequenceGenerator gen(seed);
  return gen.uniform(seq::dna(), n);
}

/// Deterministic random protein of length n.
inline seq::Sequence random_protein(std::size_t n, std::uint64_t seed) {
  seq::RandomSequenceGenerator gen(seed);
  return gen.uniform(seq::protein(), n);
}

}  // namespace swr::test
