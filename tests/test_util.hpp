// Shared helpers for the test suite.
#pragma once

#include <cstdint>
#include <random>
#include <string>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "seq/random.hpp"
#include "seq/sequence.hpp"

namespace swr::test {

/// Temp-file leaf made unique per process. gtest_discover_tests runs
/// every TEST as its own process, so a fixture naming a fixed leaf under
/// testing::TempDir() collides when `ctest -j` schedules two tests of the
/// same suite together — one process's build_store truncates the .swdb
/// another process has mmap'd mid-scan (SIGBUS).
inline std::string unique_leaf(const std::string& leaf) {
#if defined(__linux__)
  return std::to_string(::getpid()) + "_" + leaf;
#else
  return leaf;
#endif
}

/// Deterministic random DNA of length n.
inline seq::Sequence random_dna(std::size_t n, std::uint64_t seed) {
  seq::RandomSequenceGenerator gen(seed);
  return gen.uniform(seq::dna(), n);
}

/// Deterministic random protein of length n.
inline seq::Sequence random_protein(std::size_t n, std::uint64_t seed) {
  seq::RandomSequenceGenerator gen(seed);
  return gen.uniform(seq::protein(), n);
}

}  // namespace swr::test
