#include <gtest/gtest.h>

#include <tuple>

#include "align/gotoh.hpp"
#include "align/sw_full.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::align;

AffineScoring default_affine() {
  AffineScoring sc;
  sc.match = 2;
  sc.mismatch = -1;
  sc.gap_open = -2;
  sc.gap_extend = -1;
  return sc;
}

TEST(GotohLocal, IdenticalSequences) {
  const seq::Sequence s = seq::Sequence::dna("ACGTACGT");
  const LocalAlignment al = gotoh_local_align(s, s, default_affine());
  EXPECT_EQ(al.score, 16);
  EXPECT_EQ(al.cigar.to_string(), "8M");
}

TEST(GotohLocal, LongGapCheaperThanTwoShortOnes) {
  // With open=-4/extend=-1 a single 2-gap costs 6, two separate 1-gaps
  // cost 10: the affine optimum must use the contiguous gap.
  AffineScoring sc;
  sc.match = 3;
  sc.mismatch = -3;
  sc.gap_open = -4;
  sc.gap_extend = -1;
  const seq::Sequence a = seq::Sequence::dna("ACGTCCGGTT");
  const seq::Sequence b = seq::Sequence::dna("ACGTGGTT");  // CC deleted
  const LocalAlignment al = gotoh_local_align(a, b, sc);
  EXPECT_EQ(al.score, 3 * 8 - (4 + 2 * 1));
  EXPECT_EQ(al.cigar.to_string(), "4M2D4M");
}

TEST(GotohLocal, ScoreOnlyMatchesFullTraceback) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const seq::Sequence a = swr::test::random_dna(60, 300 + seed);
    const seq::Sequence b = swr::test::random_dna(45, 400 + seed);
    const LocalAlignment full = gotoh_local_align(a, b, default_affine());
    const LocalScoreResult lin = gotoh_local_score(a.codes(), b.codes(), default_affine());
    EXPECT_EQ(lin.score, full.score) << "seed " << seed;
    EXPECT_EQ(lin.end, full.end) << "seed " << seed;
  }
}

TEST(GotohLocal, TracebackScoreConsistency) {
  AffineScoring sc = default_affine();
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const seq::Sequence a = swr::test::random_dna(50, 500 + seed);
    const seq::Sequence b = swr::test::random_dna(70, 600 + seed);
    const LocalAlignment al = gotoh_local_align(a, b, sc);
    if (al.score <= 0) continue;
    // Recompute the transcript score with affine gap accounting.
    Score total = 0;
    std::size_t i = al.begin.i;
    std::size_t j = al.begin.j;
    for (const EditRun& r : al.cigar.runs()) {
      switch (r.op) {
        case EditOp::Match:
        case EditOp::Mismatch:
          for (std::size_t k = 0; k < r.len; ++k) {
            total += sc.substitution(a[i - 1], b[j - 1]);
            ++i;
            ++j;
          }
          break;
        case EditOp::Insert:
          total += sc.gap_open + static_cast<Score>(r.len) * sc.gap_extend;
          j += r.len;
          break;
        case EditOp::Delete:
          total += sc.gap_open + static_cast<Score>(r.len) * sc.gap_extend;
          i += r.len;
          break;
      }
    }
    EXPECT_EQ(total, al.score) << "seed " << seed;
  }
}

TEST(GotohLocal, ReducesToLinearWhenOpenIsZero) {
  // With gap_open = 0 the affine model is exactly the linear model with
  // gap = gap_extend; Gotoh must agree with plain SW.
  AffineScoring affine;
  affine.match = 1;
  affine.mismatch = -1;
  affine.gap_open = 0;
  affine.gap_extend = -2;
  Scoring linear = Scoring::paper_default();

  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const seq::Sequence a = swr::test::random_dna(40, 700 + seed);
    const seq::Sequence b = swr::test::random_dna(55, 800 + seed);
    EXPECT_EQ(gotoh_local_score(a.codes(), b.codes(), affine).score,
              sw_best(sw_matrix(a, b, linear)).score)
        << "seed " << seed;
  }
}

TEST(GotohGlobal, IdenticalAndEmpty) {
  const AffineScoring sc = default_affine();
  const seq::Sequence s = seq::Sequence::dna("ACGT");
  EXPECT_EQ(gotoh_global_score(s.codes(), s.codes(), sc), 8);
  // Empty vs k bases: one gap of length k.
  const seq::Sequence e = seq::Sequence::dna("");
  EXPECT_EQ(gotoh_global_score(e.codes(), s.codes(), sc),
            sc.gap_open + 4 * sc.gap_extend);
  EXPECT_EQ(gotoh_global_score(e.codes(), e.codes(), sc), 0);
}

TEST(GotohGlobal, GlobalIsLowerBoundOfLocal) {
  const AffineScoring sc = default_affine();
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const seq::Sequence a = swr::test::random_dna(33, 900 + seed);
    const seq::Sequence b = swr::test::random_dna(47, 950 + seed);
    EXPECT_LE(gotoh_global_score(a.codes(), b.codes(), sc),
              gotoh_local_score(a.codes(), b.codes(), sc).score)
        << "seed " << seed;
  }
}

TEST(GotohLocal, ProteinBlosum62) {
  AffineScoring sc;
  sc.matrix = &blosum62();
  sc.gap_open = -10;
  sc.gap_extend = -1;
  const seq::Sequence a = swr::test::random_protein(60, 3);
  const seq::Sequence b = swr::test::random_protein(80, 4);
  const LocalAlignment full = gotoh_local_align(a, b, sc);
  const LocalScoreResult lin = gotoh_local_score(a.codes(), b.codes(), sc);
  EXPECT_EQ(lin.score, full.score);
  EXPECT_EQ(lin.end, full.end);
}

TEST(GotohLocal, AlphabetMismatchRejected) {
  EXPECT_THROW(
      (void)gotoh_local_align(seq::Sequence::dna("ACGT"), seq::Sequence::protein("ARND"),
                              default_affine()),
      std::invalid_argument);
}

}  // namespace
