// Inter-sequence (record-per-lane) kernels: profile tables, bit-identity
// vs sw_linear across batch shapes, lane-refill edge cases, and the exact
// per-lane saturation predicate shared with the SWAR/striped 8-bit tiers.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "align/sw_antidiag8.hpp"
#include "align/sw_interseq.hpp"
#include "align/sw_linear.hpp"
#include "core/cpu_features.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::align;

const Scoring kSc = Scoring::paper_default();

std::vector<unsigned> supported_lane_widths() {
  std::vector<unsigned> widths;
  if (core::cpu_supports(core::SimdIsa::Sse41)) widths.push_back(16);
  if (core::cpu_supports(core::SimdIsa::Avx2)) widths.push_back(32);
  return widths;
}

// Scores `records` through the interseq batch and checks every returned
// result against the sw_linear oracle: a present value must be
// bit-identical, and absence must coincide exactly with a true score
// > 255 (the swar8/striped saturation predicate).
void expect_batch_matches_oracle(const std::vector<seq::Sequence>& records,
                                 const seq::Sequence& query, const Scoring& sc, unsigned lanes,
                                 const std::string& what, InterSeqStats* stats = nullptr) {
  const auto batch = sw_interseq_batch(records, query, sc, lanes, stats);
  ASSERT_TRUE(batch.has_value()) << what;
  ASSERT_EQ(batch->size(), records.size()) << what;
  for (std::size_t r = 0; r < records.size(); ++r) {
    const LocalScoreResult oracle = sw_linear(records[r], query, sc);
    if (oracle.score > 255) {
      EXPECT_FALSE((*batch)[r].has_value()) << what << " record " << r << " (oracle score "
                                            << oracle.score << " must saturate the lane)";
    } else {
      ASSERT_TRUE((*batch)[r].has_value()) << what << " record " << r;
      EXPECT_EQ(*(*batch)[r], oracle) << what << " record " << r;
    }
  }
}

TEST(InterSeqProfile, RejectsUnsupportedLaneCount) {
  const seq::Sequence q = seq::Sequence::dna("ACGT");
  EXPECT_THROW(InterSeqProfile(q, kSc, 8), std::invalid_argument);
  EXPECT_THROW(InterSeqProfile(q, kSc, 0), std::invalid_argument);
}

TEST(InterSeqProfile, ColumnTablesHoldTheScalarScores) {
  const seq::Sequence q = swr::test::random_dna(23, 91);
  for (const unsigned lanes : {16u, 32u}) {
    const InterSeqProfile p(q, kSc, lanes);
    ASSERT_TRUE(p.usable());
    EXPECT_EQ(p.table_slots(), 16u);  // DNA: 4 residues + neutral fits one pshufb
    EXPECT_EQ(p.neutral_code(), seq::Code{4});
    for (std::size_t j = 1; j <= q.size(); ++j) {
      for (seq::Code c = 0; c < q.alphabet().size(); ++c) {
        const Score s = kSc.substitution(c, q.codes()[j - 1]);
        EXPECT_EQ(p.pos_tab(j)[c], s > 0 ? s : 0) << "j=" << j << " c=" << int(c);
        EXPECT_EQ(p.neg_tab(j)[c], s < 0 ? -s : 0) << "j=" << j << " c=" << int(c);
      }
      // Neutral and unused slots: pos 0 / neg max pins a lane to zero.
      for (std::size_t slot = q.alphabet().size(); slot < p.table_slots(); ++slot) {
        EXPECT_EQ(p.pos_tab(j)[slot], 0u);
        EXPECT_EQ(p.neg_tab(j)[slot], 0xFFu);
      }
    }
  }
}

TEST(InterSeqProfile, ProteinNeedsTheWideTable) {
  const seq::Sequence q = swr::test::random_protein(15, 92);
  Scoring sc;
  sc.matrix = &blosum62();
  const InterSeqProfile p(q, sc, 16);
  ASSERT_TRUE(p.usable());
  // 21 residues + neutral = 22 slots: lo/hi pshufb pair.
  EXPECT_EQ(p.table_slots(), 32u);
  EXPECT_EQ(p.neutral_code(), seq::Code{21});
}

TEST(InterSeqBatch, EquivalenceSweepVsSwLinear) {
  // Batch shapes around every lane boundary, record lengths mixed per
  // batch (the lane-refill machinery is exercised hardest when lengths
  // diverge), plus empty and 1-residue records in the middle.
  for (const unsigned lanes : supported_lane_widths()) {
    for (const std::size_t count : {1u, 2u, 15u, 16u, 17u, 31u, 32u, 33u, 67u}) {
      std::mt19937_64 lens(count * 977 + lanes);
      std::uniform_int_distribution<std::size_t> len(0, 90);
      std::vector<seq::Sequence> records;
      for (std::size_t r = 0; r < count; ++r) {
        records.push_back(swr::test::random_dna(len(lens), count * 1000 + r));
      }
      const seq::Sequence query = swr::test::random_dna(41, count + 7);
      expect_batch_matches_oracle(records, query, kSc, lanes,
                                  "lanes " + std::to_string(lanes) + " count " +
                                      std::to_string(count));
    }
  }
}

TEST(InterSeqBatch, EmptyAndTinyRecordsInsideABatch) {
  for (const unsigned lanes : supported_lane_widths()) {
    std::vector<seq::Sequence> records;
    records.push_back(seq::Sequence::dna(""));
    records.push_back(seq::Sequence::dna("A"));
    records.push_back(swr::test::random_dna(60, 5));
    records.push_back(seq::Sequence::dna(""));
    records.push_back(seq::Sequence::dna("G"));
    for (std::size_t r = 0; r < 20; ++r) records.push_back(swr::test::random_dna(3 + r, 50 + r));
    const seq::Sequence query = swr::test::random_dna(25, 3);
    expect_batch_matches_oracle(records, query, kSc, lanes,
                                "tiny records, lanes " + std::to_string(lanes));
  }
}

TEST(InterSeqBatch, EmptyBatchAndEmptyQuery) {
  for (const unsigned lanes : supported_lane_widths()) {
    const std::vector<seq::Sequence> none;
    const auto empty = sw_interseq_batch(none, seq::Sequence::dna("ACGT"), kSc, lanes);
    ASSERT_TRUE(empty.has_value());
    EXPECT_TRUE(empty->empty());

    const std::vector<seq::Sequence> recs = {seq::Sequence::dna("ACGT"),
                                             seq::Sequence::dna("")};
    const auto r = sw_interseq_batch(recs, seq::Sequence::dna(""), kSc, lanes);
    ASSERT_TRUE(r.has_value());
    ASSERT_EQ(r->size(), 2u);
    for (const auto& one : *r) {
      ASSERT_TRUE(one.has_value());
      EXPECT_EQ(*one, LocalScoreResult{});
    }
  }
}

TEST(InterSeqBatch, CanonicalTieBreakAcrossRepeats) {
  // A periodic query against periodic records produces many equal-scoring
  // cells; the per-lane rescan must keep the smallest-(j, i) cell exactly
  // like sw_linear.
  for (const unsigned lanes : supported_lane_widths()) {
    std::vector<seq::Sequence> records;
    for (std::size_t r = 0; r < 40; ++r) {
      std::string text;
      for (std::size_t k = 0; k < 8 + r; ++k) text += "ACGT"[k % 4];
      records.push_back(seq::Sequence::dna(text));
    }
    seq::Sequence query = seq::Sequence::dna("ACGTACGTACGTACGT");
    expect_batch_matches_oracle(records, query, kSc, lanes,
                                "periodic, lanes " + std::to_string(lanes));
  }
}

TEST(InterSeqBatch, ProteinBlosum62) {
  Scoring sc;
  sc.matrix = &blosum62();
  for (const unsigned lanes : supported_lane_widths()) {
    std::vector<seq::Sequence> records;
    std::mt19937_64 lens(88);
    std::uniform_int_distribution<std::size_t> len(0, 70);
    for (std::size_t r = 0; r < 45; ++r) {
      records.push_back(swr::test::random_protein(len(lens), 300 + r));
    }
    const seq::Sequence query = swr::test::random_protein(33, 17);
    expect_batch_matches_oracle(records, query, sc, lanes,
                                "blosum62, lanes " + std::to_string(lanes));
  }
}

// Straddle the 255/256 saturation boundary exactly: a record scoring 255
// must come back exact, 256 must come back absent, and absence must agree
// with the swar8 kernel's predicate record by record.
TEST(InterSeqBatch, SaturationBoundaryExactAndSwar8PredicateParity) {
  for (const unsigned lanes : supported_lane_widths()) {
    std::vector<seq::Sequence> records;
    std::vector<seq::Sequence> queries;  // matched per record below
    // Identical copies score exactly their length under +1 matches.
    const seq::Sequence q300 = swr::test::random_dna(300, 1234);
    for (const std::size_t score : {254u, 255u, 256u, 300u}) {
      records.push_back(q300.subsequence(0, score));
    }
    for (std::size_t r = 0; r < 12; ++r) records.push_back(swr::test::random_dna(80, 40 + r));

    const auto batch = sw_interseq_batch(records, q300, kSc, lanes);
    ASSERT_TRUE(batch.has_value());
    std::size_t absent = 0;
    Antidiag8Workspace ws8;
    for (std::size_t r = 0; r < records.size(); ++r) {
      const LocalScoreResult oracle = sw_linear(records[r], q300, kSc);
      const auto swar8 = sw_antidiag8_try(records[r].codes(), q300.codes(), kSc, ws8);
      EXPECT_EQ((*batch)[r].has_value(), swar8.has_value())
          << "record " << r << ": interseq and swar8 must saturate on exactly the same records";
      if ((*batch)[r].has_value()) {
        EXPECT_EQ(*(*batch)[r], oracle) << "record " << r;
      } else {
        EXPECT_GT(oracle.score, 255) << "record " << r;
        ++absent;
      }
    }
    EXPECT_EQ(absent, 2u);  // exactly the 256- and 300-scoring copies
  }
}

TEST(InterSeqBatch, EveryLaneSaturates) {
  // A batch wider than the lane count where every record overflows: every
  // result must be absent and the fallback count must equal the batch.
  for (const unsigned lanes : supported_lane_widths()) {
    const seq::Sequence query = swr::test::random_dna(400, 777);
    std::vector<seq::Sequence> records;
    for (std::size_t r = 0; r < lanes + 3; ++r) {
      seq::Sequence rec = swr::test::random_dna(10 + r, 900 + r);
      rec.append(query);  // embeds a 400-scoring copy: true score > 255
      records.push_back(std::move(rec));
    }
    InterSeqStats stats;
    const auto batch = sw_interseq_batch(records, query, kSc, lanes, &stats);
    ASSERT_TRUE(batch.has_value());
    for (std::size_t r = 0; r < records.size(); ++r) {
      EXPECT_FALSE((*batch)[r].has_value()) << "record " << r;
    }
    EXPECT_EQ(stats.fallbacks, records.size());
  }
}

TEST(InterSeqStatsAccounting, BatchesRefillsAndOccupancy) {
  for (const unsigned lanes : supported_lane_widths()) {
    // 3 full lane generations of equal-length records: the driver should
    // run at full occupancy throughout and refill exactly (count - lanes)
    // lanes.
    std::vector<seq::Sequence> records;
    for (std::size_t r = 0; r < 3 * lanes; ++r) {
      records.push_back(swr::test::random_dna(50, 60 + r));
    }
    InterSeqStats stats;
    const seq::Sequence query = swr::test::random_dna(30, 2);
    expect_batch_matches_oracle(records, query, kSc, lanes,
                                "occupancy, lanes " + std::to_string(lanes), &stats);
    EXPECT_EQ(stats.refills, records.size() - lanes);
    EXPECT_EQ(stats.fallbacks, 0u);
    std::uint64_t advances = 0;
    for (std::size_t occ = 0; occ <= kInterSeqMaxLanes; ++occ) {
      if (occ != lanes) {
        EXPECT_EQ(stats.occupancy[occ], 0u) << "occupancy " << occ;
      }
      advances += stats.occupancy[occ];
    }
    EXPECT_EQ(stats.occupancy[lanes], advances);
    EXPECT_EQ(stats.batches, advances);
    EXPECT_EQ(stats.batches, 3u);  // equal lengths: one advance per generation
  }
}

TEST(InterSeqBatch, UnavailableShapesReturnOuterNullopt) {
  // An alphabet too large for the pshufb tables is structurally unusable
  // regardless of ISA; the batch reports that as outer nullopt.
  const seq::Sequence q = seq::Sequence::dna("ACGT");
  const std::vector<seq::Sequence> recs = {q};
  InterSeqProfile p(q, kSc, 16);
  EXPECT_TRUE(p.table_slots() != 0);
  // Construct the structural failure via a fake alphabet size.
  const InterSeqProfile big(q.codes(), kSc, 16, 40);
  EXPECT_FALSE(big.usable());
  // Unusable profiles refuse to scan outright.
  InterSeqWorkspace ws;
  EXPECT_THROW(sw_interseq_scan(
                   big, ws, [](unsigned) { return std::optional<InterSeqRecord>{}; },
                   [](std::uint64_t, std::span<const seq::Code>,
                      const std::optional<LocalScoreResult>&) {}),
               std::logic_error);
}

TEST(InterSeqBatch, AlphabetMismatchThrows) {
  const std::vector<seq::Sequence> recs = {seq::Sequence::protein("ARND")};
  EXPECT_THROW((void)sw_interseq_batch(recs, seq::Sequence::dna("ACGT"), kSc, 16),
               std::invalid_argument);
}

TEST(InterSeqWorkspaceReuse, BackToBackBatchesStayExact) {
  // One workspace, many scans with different queries/records — stale lane
  // state must never leak across scans.
  for (const unsigned lanes : supported_lane_widths()) {
    InterSeqWorkspace ws;
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      const seq::Sequence query = swr::test::random_dna(20 + 13 * seed, seed);
      std::vector<seq::Sequence> records;
      std::mt19937_64 lens(seed);
      std::uniform_int_distribution<std::size_t> len(0, 70);
      for (std::size_t r = 0; r < 2 * lanes + 5; ++r) {
        records.push_back(swr::test::random_dna(len(lens), seed * 100 + r));
      }
      const InterSeqProfile profile(query, kSc, lanes);
      ASSERT_TRUE(profile.usable());
      std::vector<std::optional<LocalScoreResult>> out(records.size());
      std::size_t next = 0;
      sw_interseq_scan(
          profile, ws,
          [&](unsigned) -> std::optional<InterSeqRecord> {
            if (next >= records.size()) return std::nullopt;
            const std::size_t r = next++;
            return InterSeqRecord{r, records[r].codes()};
          },
          [&](std::uint64_t tag, std::span<const seq::Code>,
              const std::optional<LocalScoreResult>& result) { out[tag] = result; });
      for (std::size_t r = 0; r < records.size(); ++r) {
        const LocalScoreResult oracle = sw_linear(records[r], query, kSc);
        ASSERT_TRUE(out[r].has_value()) << "seed " << seed << " record " << r;
        EXPECT_EQ(*out[r], oracle) << "seed " << seed << " record " << r;
      }
    }
  }
}

}  // namespace
