#include <gtest/gtest.h>

#include <tuple>

#include "align/sw_full.hpp"
#include "align/sw_linear.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::align;

const Scoring kSc = Scoring::paper_default();

TEST(SwLinear, MatchesFullMatrixOnFigure2) {
  const seq::Sequence s = seq::Sequence::dna("TATGGAC");
  const seq::Sequence t = seq::Sequence::dna("TAGTGACT");
  EXPECT_EQ(sw_linear(s, t, kSc), sw_best(sw_matrix(s, t, kSc)));
}

TEST(SwLinear, EmptyInputsScoreZero) {
  EXPECT_EQ(sw_linear(seq::Sequence::dna(""), seq::Sequence::dna("ACG"), kSc).score, 0);
  EXPECT_EQ(sw_linear(seq::Sequence::dna("ACG"), seq::Sequence::dna(""), kSc).score, 0);
}

TEST(SwLinear, AlphabetMismatchRejected) {
  EXPECT_THROW((void)sw_linear(seq::Sequence::dna("ACGT"), seq::Sequence::protein("ARND"), kSc),
               std::invalid_argument);
}

// Property sweep: linear == full matrix (score AND canonical end cell)
// across sizes, seeds and scoring schemes.
class SwLinearEquivalence
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t, int>> {};

TEST_P(SwLinearEquivalence, AgreesWithFullMatrix) {
  const auto [m, n, seed, scheme] = GetParam();
  const seq::Sequence a = swr::test::random_dna(m, seed);
  const seq::Sequence b = swr::test::random_dna(n, seed + 9999);
  Scoring sc = kSc;
  if (scheme == 1) {
    sc.match = 2;
    sc.mismatch = -3;
    sc.gap = -5;
  } else if (scheme == 2) {
    sc.match = 5;
    sc.mismatch = -4;
    sc.gap = -1;
  }
  EXPECT_EQ(sw_linear(a, b, sc), sw_best(sw_matrix(a, b, sc)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SwLinearEquivalence,
    testing::Combine(testing::Values<std::size_t>(1, 7, 33, 128), testing::Values<std::size_t>(1, 13, 64, 200),
                     testing::Values<std::uint64_t>(1, 2, 3), testing::Values(0, 1, 2)));

TEST(SwLinear, ProteinWithBlosum62MatchesFull) {
  Scoring sc;
  sc.matrix = &blosum62();
  sc.gap = -8;
  const seq::Sequence a = swr::test::random_protein(70, 5);
  const seq::Sequence b = swr::test::random_protein(90, 6);
  EXPECT_EQ(sw_linear(a, b, sc), sw_best(sw_matrix(a, b, sc)));
}

TEST(SwLinearChunk, SingleChunkEqualsWhole) {
  const seq::Sequence a = swr::test::random_dna(120, 11);
  const seq::Sequence b = swr::test::random_dna(50, 12);
  const ChunkResult r = sw_linear_chunk(a.codes(), b.codes(), {}, 0, kSc);
  EXPECT_EQ(r.best, sw_linear(a, b, kSc));
  ASSERT_EQ(r.boundary.size(), a.size() + 1);
  // Boundary must equal the last column of the full matrix.
  const SimilarityMatrix m = sw_matrix(a, b, kSc);
  for (std::size_t i = 0; i <= a.size(); ++i) EXPECT_EQ(r.boundary[i], m(i, b.size()));
}

// Property: splitting the columns into chunks and chaining boundaries
// reproduces the monolithic result exactly — the software twin of the
// figure-7 partitioning the hardware relies on.
class SwLinearChunking : public testing::TestWithParam<std::size_t> {};

TEST_P(SwLinearChunking, ChainedChunksEqualMonolithic) {
  const std::size_t chunk_cols = GetParam();
  const seq::Sequence a = swr::test::random_dna(150, 21);
  const seq::Sequence b = swr::test::random_dna(97, 22);

  LocalScoreResult best;
  std::vector<Score> boundary;  // empty = zeros for the first chunk
  for (std::size_t q = 0; q < b.size(); q += chunk_cols) {
    const std::size_t len = std::min(chunk_cols, b.size() - q);
    const ChunkResult r =
        sw_linear_chunk(a.codes(), b.codes().subspan(q, len), boundary, q, kSc);
    fold_best(best, r.best.score, r.best.end);
    boundary = r.boundary;
  }
  EXPECT_EQ(best, sw_linear(a, b, kSc));
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, SwLinearChunking,
                         testing::Values<std::size_t>(1, 2, 5, 16, 50, 96, 97, 200));

TEST(SwLinearChunk, RejectsWrongBoundarySize) {
  const seq::Sequence a = swr::test::random_dna(10, 1);
  const seq::Sequence b = swr::test::random_dna(5, 2);
  const std::vector<Score> bad(3, 0);
  EXPECT_THROW((void)sw_linear_chunk(a.codes(), b.codes(), bad, 0, kSc), std::invalid_argument);
}

TEST(SwLinear, CanonicalTieBreakPrefersSmallestColumn) {
  // Two disjoint perfect hits of the same score; the canonical result is
  // the one in the leftmost column (smallest j), not the first in row
  // order.
  //        b:   G G G A C G T
  // a = ACGT appears at columns 4..7 (j); also plant an equal-scoring hit
  // earlier in rows but later in columns to stress the (j, i) order.
  const seq::Sequence a = seq::Sequence::dna("TTTTACGT");
  const seq::Sequence b = seq::Sequence::dna("ACGTTTTT");
  const LocalScoreResult r = sw_linear(a, b, kSc);
  const SimilarityMatrix m = sw_matrix(a, b, kSc);
  const auto cells = sw_all_best_cells(m);
  Cell canon = cells.front();
  for (const Cell& c : cells) {
    if (tie_break_prefers(c, canon)) canon = c;
  }
  EXPECT_EQ(r.end, canon);
}

}  // namespace
