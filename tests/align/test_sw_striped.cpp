// Striped (Farrar) native-SIMD kernels: profile layout, padding
// neutrality, bit-identity vs sw_linear, and the exact saturation /
// lazy 16-bit re-run boundary — per available lane width.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "align/sw_linear.hpp"
#include "align/sw_striped.hpp"
#include "core/cpu_features.hpp"
#include "seq/workload.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::align;

const Scoring kSc = Scoring::paper_default();

// Lane widths the machine running the tests can actually execute; empty
// on non-x86 builds, where every kernel test degenerates to a skip.
std::vector<unsigned> supported_lane_widths() {
  std::vector<unsigned> widths;
  if (core::cpu_supports(core::SimdIsa::Sse41)) widths.push_back(16);
  if (core::cpu_supports(core::SimdIsa::Avx2)) widths.push_back(32);
  return widths;
}

TEST(StripedProfile, RejectsUnsupportedLaneCount) {
  const seq::Sequence q = seq::Sequence::dna("ACGT");
  EXPECT_THROW(StripedProfile(q, kSc, 8), std::invalid_argument);
  EXPECT_THROW(StripedProfile(q, kSc, 0), std::invalid_argument);
}

TEST(StripedProfile, StripeInterleaveRoundTrip) {
  // Every query position must land in exactly one (stripe, lane) slot and
  // carry the scalar substitution score split into its pos/neg halves;
  // inverting slot -> j = lane * stripes + stripe must round-trip.
  const seq::Sequence q = swr::test::random_dna(37, 71);
  for (const unsigned lanes : {16u, 32u}) {
    const StripedProfile p(q, kSc, lanes);
    ASSERT_TRUE(p.fits8());
    const std::size_t t8 = p.stripes8();
    EXPECT_EQ(t8, (q.size() + lanes - 1) / lanes);
    for (seq::Code c = 0; c < q.alphabet().size(); ++c) {
      for (std::size_t j = 0; j < q.size(); ++j) {
        const Score s = kSc.substitution(c, q.codes()[j]);
        const std::size_t stripe = StripedProfile::stripe_of(j, t8);
        const std::size_t lane = StripedProfile::lane_of(j, t8);
        EXPECT_EQ(lane * t8 + stripe, j);  // the inverse mapping
        const std::size_t slot = stripe * lanes + lane;
        EXPECT_EQ(p.pos8(c)[slot], s > 0 ? s : 0) << "c=" << int(c) << " j=" << j;
        EXPECT_EQ(p.neg8(c)[slot], s < 0 ? -s : 0) << "c=" << int(c) << " j=" << j;
      }
      // 16-bit layout, half the lanes.
      const std::size_t t16 = p.stripes16();
      for (std::size_t j = 0; j < q.size(); ++j) {
        const Score s = kSc.substitution(c, q.codes()[j]);
        const std::size_t slot =
            StripedProfile::stripe_of(j, t16) * p.lanes16() + StripedProfile::lane_of(j, t16);
        EXPECT_EQ(p.pos16(c)[slot], s > 0 ? s : 0);
        EXPECT_EQ(p.neg16(c)[slot], s < 0 ? -s : 0);
      }
    }
  }
}

TEST(StripedProfile, PaddingSlotsAreScoreNeutral) {
  // Slots past the query length must hold pos 0 / neg max: their diagonal
  // recurrence is clamp(h + 0 - max) = 0 every row, so they can never
  // contribute a score or a false saturation.
  const seq::Sequence q = swr::test::random_dna(17, 72);  // 17 % 16 != 0: padding in every lane width
  for (const unsigned lanes : {16u, 32u}) {
    const StripedProfile p(q, kSc, lanes);
    const std::size_t t8 = p.stripes8();
    std::vector<bool> real(t8 * lanes, false);
    for (std::size_t j = 0; j < q.size(); ++j) {
      real[StripedProfile::stripe_of(j, t8) * lanes + StripedProfile::lane_of(j, t8)] = true;
    }
    for (seq::Code c = 0; c < q.alphabet().size(); ++c) {
      for (std::size_t slot = 0; slot < t8 * lanes; ++slot) {
        if (real[slot]) continue;
        EXPECT_EQ(p.pos8(c)[slot], 0) << "slot " << slot;
        EXPECT_EQ(p.neg8(c)[slot], 0xFF) << "slot " << slot;
      }
    }
    const std::size_t t16 = p.stripes16();
    std::vector<bool> real16(t16 * p.lanes16(), false);
    for (std::size_t j = 0; j < q.size(); ++j) {
      real16[StripedProfile::stripe_of(j, t16) * p.lanes16() +
             StripedProfile::lane_of(j, t16)] = true;
    }
    for (seq::Code c = 0; c < q.alphabet().size(); ++c) {
      for (std::size_t slot = 0; slot < t16 * p.lanes16(); ++slot) {
        if (real16[slot]) continue;
        EXPECT_EQ(p.pos16(c)[slot], 0);
        EXPECT_EQ(p.neg16(c)[slot], 0xFFFF);
      }
    }
  }
}

// ---- kernel equivalence ---------------------------------------------------

class StripedEquivalence
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t, int>> {};

TEST_P(StripedEquivalence, MatchesReferenceKernel) {
  const auto [m, n, seed, scheme] = GetParam();
  Scoring sc = kSc;
  if (scheme == 1) {
    sc.match = 4;
    sc.mismatch = -3;
    sc.gap = -5;
  }
  const seq::Sequence a = swr::test::random_dna(m, seed * 3 + 177);
  const seq::Sequence b = swr::test::random_dna(n, seed * 5 + 188);
  const LocalScoreResult ref = sw_linear(a, b, sc);
  for (const unsigned lanes : supported_lane_widths()) {
    EXPECT_EQ(sw_linear_striped(a, b, sc, lanes), ref) << "lanes=" << lanes;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StripedEquivalence,
    testing::Combine(testing::Values<std::size_t>(1, 2, 3, 7, 15, 16, 17, 31, 32, 33, 41, 250),
                     testing::Values<std::size_t>(1, 2, 7, 15, 16, 17, 32, 33, 180),
                     testing::Values<std::uint64_t>(1, 2), testing::Values(0, 1)));

TEST(Striped, TieBreakCanonical) {
  const seq::Sequence a = seq::Sequence::dna("TACGTTTTTTGGA");
  const seq::Sequence b = seq::Sequence::dna("GGACG");
  const LocalScoreResult ref = sw_linear(a, b, kSc);
  ASSERT_EQ(ref.end, (Cell{13, 3}));
  for (const unsigned lanes : supported_lane_widths()) {
    EXPECT_EQ(sw_linear_striped(a, b, kSc, lanes), ref) << "lanes=" << lanes;
  }
}

TEST(Striped, ProteinMatrixScoring) {
  Scoring sc;
  sc.matrix = &blosum62();
  sc.gap = -8;
  const seq::Sequence a = swr::test::random_protein(130, 15);
  const seq::Sequence b = swr::test::random_protein(90, 16);
  const LocalScoreResult ref = sw_linear(a, b, sc);
  for (const unsigned lanes : supported_lane_widths()) {
    EXPECT_EQ(sw_linear_striped(a, b, sc, lanes), ref) << "lanes=" << lanes;
  }
}

TEST(Striped, OverflowBoundaryExactly255Succeeds) {
  // Best cell EXACTLY 255 — the last representable 8-bit value. No add
  // ever exceeds the lane, so the 8-bit pass must succeed and be exact.
  const seq::Sequence s = seq::Sequence::dna(std::string(255, 'A'));
  for (const unsigned lanes : supported_lane_widths()) {
    const StripedProfile p(s, kSc, lanes);
    StripedWorkspace ws;
    const auto r = sw_striped8_try(s.codes(), p, ws);
    ASSERT_TRUE(r.has_value()) << "lanes=" << lanes;
    EXPECT_EQ(r->score, 255);
    EXPECT_EQ(*r, sw_linear(s, s, kSc));
  }
}

TEST(Striped, OverflowBoundaryExactly256FallsBackOnce) {
  // One base longer: best score 256. The 8-bit pass must detect the clamp
  // and bail; the 16-bit striped re-run must produce the exact result;
  // the ladder counts exactly one fallback — the swar8 accounting rule.
  const seq::Sequence s = seq::Sequence::dna(std::string(256, 'A'));
  const LocalScoreResult ref = sw_linear(s, s, kSc);
  ASSERT_EQ(ref.score, 256);
  for (const unsigned lanes : supported_lane_widths()) {
    const StripedProfile p(s, kSc, lanes);
    StripedWorkspace ws;
    EXPECT_FALSE(sw_striped8_try(s.codes(), p, ws).has_value()) << "lanes=" << lanes;
    const auto r16 = sw_striped16_try(s.codes(), p, ws);
    ASSERT_TRUE(r16.has_value()) << "lanes=" << lanes;
    EXPECT_EQ(*r16, ref);
    std::uint64_t fallbacks = 0;
    EXPECT_EQ(sw_linear_striped(s, s, kSc, lanes, &fallbacks), ref);
    EXPECT_EQ(fallbacks, 1u) << "lanes=" << lanes;
  }
}

TEST(Striped, SixteenBitOverflowFallsThroughToScalar) {
  // match=250 fits both lane widths, but 263 identical bases push the
  // best cell to 65750 > 0xFFFF: the 16-bit pass must ALSO bail and the
  // ladder must land on the scalar kernel, still exact.
  Scoring sc = kSc;
  sc.match = 250;
  sc.mismatch = -250;
  sc.gap = -250;
  const seq::Sequence s = seq::Sequence::dna(std::string(263, 'A'));
  const LocalScoreResult ref = sw_linear(s, s, sc);
  ASSERT_GT(ref.score, 0xFFFF);
  for (const unsigned lanes : supported_lane_widths()) {
    const StripedProfile p(s, sc, lanes);
    StripedWorkspace ws;
    EXPECT_FALSE(sw_striped8_try(s.codes(), p, ws).has_value());
    EXPECT_FALSE(sw_striped16_try(s.codes(), p, ws).has_value());
    std::uint64_t fallbacks = 0;
    EXPECT_EQ(sw_linear_striped(s, s, sc, lanes, &fallbacks), ref);
    EXPECT_EQ(fallbacks, 1u);
  }
}

TEST(Striped, SchemeMagnitudesBeyondOneByteAreRejected) {
  Scoring sc = kSc;
  sc.match = 300;
  sc.mismatch = -1;
  const seq::Sequence s = swr::test::random_dna(20, 19);
  for (const unsigned lanes : supported_lane_widths()) {
    const StripedProfile p(s, sc, lanes);
    EXPECT_FALSE(p.fits8());
    EXPECT_TRUE(p.fits16());
    StripedWorkspace ws;
    EXPECT_FALSE(sw_striped8_try(s.codes(), p, ws).has_value());
    EXPECT_EQ(sw_linear_striped(s, s, sc, lanes), sw_linear(s, s, sc));
  }
}

TEST(Striped, WorkspaceReuseAcrossRecordsIsExact) {
  // The scan engine reuses one workspace for every record a thread
  // claims; growing and shrinking records must not leak state.
  for (const unsigned lanes : supported_lane_widths()) {
    const seq::Sequence q = swr::test::random_dna(33, 4242);
    const StripedProfile p(q, kSc, lanes);
    StripedWorkspace ws;
    for (const std::size_t len : {40u, 200u, 8u, 97u, 3u, 250u}) {
      const seq::Sequence a = swr::test::random_dna(len, 1000 + len);
      const auto r = sw_striped8_try(a.codes(), p, ws);
      ASSERT_TRUE(r.has_value()) << len;
      EXPECT_EQ(*r, sw_linear(a, q, kSc)) << len;
    }
  }
}

TEST(Striped, EmptyAndMismatch) {
  for (const unsigned lanes : supported_lane_widths()) {
    EXPECT_EQ(
        sw_linear_striped(seq::Sequence::dna(""), seq::Sequence::dna("ACG"), kSc, lanes).score, 0);
    EXPECT_EQ(
        sw_linear_striped(seq::Sequence::dna("ACG"), seq::Sequence::dna(""), kSc, lanes).score, 0);
    EXPECT_THROW((void)sw_linear_striped(seq::Sequence::dna("ACGT"),
                                         seq::Sequence::protein("ARND"), kSc, lanes),
                 std::invalid_argument);
  }
}

TEST(Striped, DegenerateRecords) {
  // The fuzz pool's degenerate shapes, checked directly at the kernel
  // boundary: 1-residue, all-same, periodic.
  const std::vector<std::string> pool = {"A", "T", std::string(100, 'A'), std::string(64, 'C'),
                                         "ACACACACACACACACACAC", "ACGTACGTACGTACGTACGT"};
  for (const unsigned lanes : supported_lane_widths()) {
    for (const std::string& qs : pool) {
      const seq::Sequence q = seq::Sequence::dna(qs);
      const StripedProfile p(q, kSc, lanes);
      StripedWorkspace ws;
      for (const std::string& rs : pool) {
        const seq::Sequence r = seq::Sequence::dna(rs);
        const auto got = sw_striped8_try(r.codes(), p, ws);
        ASSERT_TRUE(got.has_value()) << qs << " vs " << rs;
        EXPECT_EQ(*got, sw_linear(r, q, kSc)) << qs << " vs " << rs;
      }
    }
  }
}

TEST(Striped, HomologPairStress) {
  seq::MutationModel mm;
  mm.substitution_rate = 0.30;  // score may or may not fit 8 bits; ladder must be exact either way
  mm.insertion_rate = 0.05;
  mm.deletion_rate = 0.05;
  const auto pair = seq::make_homolog_pair(1500, mm, 23);
  const LocalScoreResult ref = sw_linear(pair.a, pair.b, kSc);
  for (const unsigned lanes : supported_lane_widths()) {
    EXPECT_EQ(sw_linear_striped(pair.a, pair.b, kSc, lanes), ref) << "lanes=" << lanes;
  }
}

TEST(Striped, SaturationPredicateMatchesSwar8Exactly) {
  // The engine's fallback accounting requires the striped 8-bit kernel
  // and the swar8 anti-diagonal kernel to overflow on EXACTLY the same
  // records: both predicates are "some true cell value > 255". Randomized
  // homolog pairs near the boundary exercise both sides of it.
  std::mt19937_64 rng(97);
  for (int iter = 0; iter < 60; ++iter) {
    const std::size_t len = 40 + static_cast<std::size_t>(rng() % 80);
    seq::MutationModel mm;
    mm.substitution_rate = 0.05 + 0.001 * static_cast<double>(rng() % 50);
    const auto pair = seq::make_homolog_pair(len, mm, rng());
    const LocalScoreResult ref = sw_linear(pair.a, pair.b, kSc);
    const bool swar8_overflows = ref.score > 0xFF;
    for (const unsigned lanes : supported_lane_widths()) {
      const StripedProfile p(pair.b, kSc, lanes);
      StripedWorkspace ws;
      const auto got = sw_striped8_try(pair.a.codes(), p, ws);
      EXPECT_EQ(got.has_value(), !swar8_overflows)
          << "lanes=" << lanes << " score=" << ref.score;
      if (got.has_value()) EXPECT_EQ(*got, ref);
    }
  }
}

}  // namespace
