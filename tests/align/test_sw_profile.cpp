#include <gtest/gtest.h>

#include <tuple>

#include "align/sw_linear.hpp"
#include "align/sw_profile.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::align;

const Scoring kSc = Scoring::paper_default();

TEST(QueryProfile, RowsMatchScoringFunction) {
  const seq::Sequence q = seq::Sequence::dna("ACGTT");
  const QueryProfile prof(q, kSc);
  EXPECT_EQ(prof.query_len(), 5u);
  for (seq::Code c = 0; c < 4; ++c) {
    const Score* row = prof.row(c);
    for (std::size_t j = 0; j < q.size(); ++j) {
      EXPECT_EQ(row[j], kSc.substitution(c, q[j]));
    }
  }
}

// The profiled kernel must be bit-identical to sw_linear — score AND
// canonical coordinates — across sizes and schemes.
class ProfiledEquivalence
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(ProfiledEquivalence, MatchesReferenceKernel) {
  const auto [m, n, seed] = GetParam();
  const seq::Sequence a = swr::test::random_dna(m, seed * 3 + 11);
  const seq::Sequence q = swr::test::random_dna(n, seed * 5 + 13);
  EXPECT_EQ(sw_linear_profiled(a, q, kSc), sw_linear(a, q, kSc));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProfiledEquivalence,
                         testing::Combine(testing::Values<std::size_t>(1, 64, 500, 2000),
                                          testing::Values<std::size_t>(1, 16, 100),
                                          testing::Values<std::uint64_t>(1, 2, 3)));

TEST(Profiled, TieBreakAcrossRowsPrefersSmallerColumn) {
  // Two equal-scoring perfect hits: (later row, earlier column) must win
  // under the canonical (j, i) policy — the case a naive "first maximum
  // wins" kernel gets wrong.
  // "ACG" (query cols 3..5) hits a's rows 2..4; "GGA" (query cols 1..3)
  // hits rows 11..13. Both score 3; canonical (j, i) order selects the
  // row-13 hit because its column is smaller.
  const seq::Sequence a = seq::Sequence::dna("TACGTTTTTTGGA");
  const seq::Sequence q = seq::Sequence::dna("GGACG");
  const LocalScoreResult ref = sw_linear(a, q, kSc);
  ASSERT_EQ(ref.score, 3);
  ASSERT_EQ(ref.end, (Cell{13, 3}));
  EXPECT_EQ(sw_linear_profiled(a, q, kSc), ref);
}

TEST(Profiled, ProteinMatrixScoring) {
  Scoring sc;
  sc.matrix = &blosum62();
  sc.gap = -8;
  const seq::Sequence a = swr::test::random_protein(300, 21);
  const seq::Sequence q = swr::test::random_protein(40, 22);
  EXPECT_EQ(sw_linear_profiled(a, q, sc), sw_linear(a, q, sc));
}

TEST(Profiled, ProfileReuseAcrossRecords) {
  const seq::Sequence q = swr::test::random_dna(32, 31);
  const QueryProfile prof(q, kSc);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const seq::Sequence rec = swr::test::random_dna(200, 100 + seed);
    EXPECT_EQ(sw_linear_profiled(rec.codes(), prof), sw_linear(rec, q, kSc)) << seed;
  }
}

TEST(Profiled, EmptyInputs) {
  EXPECT_EQ(sw_linear_profiled(seq::Sequence::dna(""), seq::Sequence::dna("ACG"), kSc).score, 0);
  EXPECT_EQ(sw_linear_profiled(seq::Sequence::dna("ACG"), seq::Sequence::dna(""), kSc).score, 0);
}

TEST(Profiled, AlphabetMismatchRejected) {
  EXPECT_THROW(
      (void)sw_linear_profiled(seq::Sequence::dna("ACGT"), seq::Sequence::protein("ARND"), kSc),
      std::invalid_argument);
}

}  // namespace
