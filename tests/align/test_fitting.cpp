#include <gtest/gtest.h>

#include "align/fitting.hpp"
#include "align/nw.hpp"
#include "align/sw_full.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::align;

const Scoring kSc = Scoring::paper_default();

TEST(Fitting, ExactSubstringScoresFullQuery) {
  const seq::Sequence a = seq::Sequence::dna("TTTTACGTACGTTTT");
  const seq::Sequence b = seq::Sequence::dna("ACGTACG");
  const FittingResult r = fitting_score(a, b, kSc);
  EXPECT_EQ(r.score, 7);
  EXPECT_EQ(r.end, (Cell{11, 7}));
  const LocalAlignment al = fitting_align(a, b, kSc);
  EXPECT_EQ(al.score, 7);
  EXPECT_EQ(al.begin, (Cell{5, 1}));
  EXPECT_EQ(al.end, (Cell{11, 7}));
  EXPECT_EQ(al.cigar.to_string(), "7M");
}

TEST(Fitting, WholeQueryIsAlwaysConsumed) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const seq::Sequence a = swr::test::random_dna(120, 1000 + seed);
    const seq::Sequence b = swr::test::random_dna(30, 2000 + seed);
    const LocalAlignment al = fitting_align(a, b, kSc);
    EXPECT_EQ(al.cigar.consumed_j(), b.size()) << "seed " << seed;
    EXPECT_EQ(al.end.j, b.size()) << "seed " << seed;
  }
}

TEST(Fitting, ScoreBracketedByGlobalAndLocal) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const seq::Sequence a = swr::test::random_dna(90, 3000 + seed);
    const seq::Sequence b = swr::test::random_dna(40, 4000 + seed);
    const Score fit = fitting_score(a, b, kSc).score;
    EXPECT_GE(fit, nw_score(a.codes(), b.codes(), kSc)) << "seed " << seed;
    EXPECT_LE(fit, sw_best(sw_matrix(a, b, kSc)).score) << "seed " << seed;
  }
}

TEST(Fitting, ScoreOnlyMatchesTracebackVersion) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const seq::Sequence a = swr::test::random_dna(70, 5000 + seed);
    const seq::Sequence b = swr::test::random_dna(25, 6000 + seed);
    const FittingResult fast = fitting_score(a, b, kSc);
    const LocalAlignment full = fitting_align(a, b, kSc);
    EXPECT_EQ(fast.score, full.score) << "seed " << seed;
    EXPECT_EQ(fast.end, full.end) << "seed " << seed;
    EXPECT_EQ(score_of(full.cigar, a, b, full.begin, kSc), full.score) << "seed " << seed;
  }
}

TEST(Fitting, HostileQueryScoresNegative) {
  const seq::Sequence a = seq::Sequence::dna("AAAAAAAA");
  const seq::Sequence b = seq::Sequence::dna("TTT");
  // Best placement: three mismatches (-3) beats gaps.
  EXPECT_EQ(fitting_score(a, b, kSc).score, -3);
}

TEST(Fitting, EmptyQueryAndEmptyDatabase) {
  EXPECT_EQ(fitting_score(seq::Sequence::dna("ACGT"), seq::Sequence::dna(""), kSc).score, 0);
  // Empty database: the query must align against gaps.
  EXPECT_EQ(fitting_score(seq::Sequence::dna(""), seq::Sequence::dna("ACG"), kSc).score, -6);
}

TEST(Fitting, MappedHomologRecoversPosition) {
  seq::RandomSequenceGenerator gen(9);
  const seq::Sequence read = gen.uniform(seq::dna(), 50, "read");
  seq::Sequence genome = gen.uniform(seq::dna(), 700);
  const std::size_t at = genome.size();
  genome.append(seq::point_mutate(read, 0.06, gen.engine()));
  genome.append(gen.uniform(seq::dna(), 700));
  const LocalAlignment al = fitting_align(genome, read, kSc);
  EXPECT_GE(al.begin.i, at - 2);
  EXPECT_LE(al.end.i, at + read.size() + 4);
  EXPECT_GT(al.score, 25);
}

TEST(Fitting, AlphabetMismatchRejected) {
  EXPECT_THROW((void)fitting_score(seq::Sequence::dna("ACGT"), seq::Sequence::protein("ARND"),
                                   kSc),
               std::invalid_argument);
}

}  // namespace
