#include <gtest/gtest.h>

#include "align/banded.hpp"
#include "align/nw.hpp"
#include "align/sw_full.hpp"
#include "seq/workload.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::align;

const Scoring kSc = Scoring::paper_default();

TEST(BandedNw, FullBandEqualsExact) {
  const seq::Sequence a = swr::test::random_dna(50, 1);
  const seq::Sequence b = swr::test::random_dna(60, 2);
  const std::size_t full_band = a.size() + b.size();
  EXPECT_EQ(banded_nw_score(a.codes(), b.codes(), full_band, kSc),
            nw_score(a.codes(), b.codes(), kSc));
}

TEST(BandedNw, ScoreIsMonotoneInBand) {
  const seq::Sequence a = swr::test::random_dna(70, 5);
  const seq::Sequence b = swr::test::random_dna(70, 6);
  Score prev = kNegInf;
  for (std::size_t band = 0; band <= 70; band += 5) {
    const Score s = banded_nw_score(a.codes(), b.codes(), band, kSc);
    EXPECT_GE(s, prev) << "band " << band;
    prev = s;
  }
  EXPECT_EQ(prev, nw_score(a.codes(), b.codes(), kSc));
}

TEST(BandedNw, UnreachableCornerIsNegInf) {
  const seq::Sequence a = swr::test::random_dna(10, 1);
  const seq::Sequence b = swr::test::random_dna(30, 2);
  EXPECT_EQ(banded_nw_score(a.codes(), b.codes(), 5, kSc), kNegInf);
}

TEST(BandedNw, BandZeroIsDiagonalOnly) {
  // With band 0 and equal lengths, the only path is the pure diagonal.
  const seq::Sequence a = seq::Sequence::dna("ACGTAC");
  const seq::Sequence b = seq::Sequence::dna("ACCTAC");
  Score diag = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diag += kSc.substitution(a[i], b[i]);
  EXPECT_EQ(banded_nw_score(a.codes(), b.codes(), 0, kSc), diag);
}

TEST(BandedSw, WideBandEqualsUnbanded) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const seq::Sequence a = swr::test::random_dna(60, 100 + seed);
    const seq::Sequence b = swr::test::random_dna(45, 200 + seed);
    const LocalScoreResult exact = sw_best(sw_matrix(a, b, kSc));
    const LocalScoreResult banded = banded_sw(a.codes(), b.codes(), a.size() + b.size(), kSc);
    EXPECT_EQ(banded, exact) << "seed " << seed;
  }
}

TEST(BandedSw, NarrowBandIsLowerBound) {
  const seq::Sequence a = swr::test::random_dna(80, 9);
  const seq::Sequence b = swr::test::random_dna(80, 10);
  const LocalScoreResult exact = sw_best(sw_matrix(a, b, kSc));
  for (const std::size_t band : {0u, 1u, 2u, 4u, 8u}) {
    EXPECT_LE(banded_sw(a.codes(), b.codes(), band, kSc).score, exact.score) << "band " << band;
  }
}

TEST(BandedSw, ConvergesOnceBandCoversDivergence) {
  // Homologs with small indels: the optimal path drifts only a little, so
  // a modest band already recovers the exact score — the Z-align [3]
  // restricted-memory premise.
  seq::MutationModel mm;
  mm.substitution_rate = 0.05;
  mm.insertion_rate = 0.01;
  mm.deletion_rate = 0.01;
  const auto pair = seq::make_homolog_pair(600, mm, 123);
  const LocalAlignment exact = sw_align(pair.a, pair.b, kSc);
  const std::size_t needed = required_band(exact.cigar, exact.begin);
  const LocalScoreResult banded = banded_sw(pair.a.codes(), pair.b.codes(), needed, kSc);
  EXPECT_EQ(banded.score, exact.score);
  EXPECT_LT(needed, 60u);  // far below the 600-wide full matrix
}

TEST(RequiredBand, TracksPathDrift) {
  Cigar c;
  c.push(EditOp::Match, 3);
  c.push(EditOp::Delete, 2);  // drift +2
  c.push(EditOp::Match, 1);
  c.push(EditOp::Insert, 5);  // drift -3
  EXPECT_EQ(required_band(c, Cell{1, 1}), 3u);
  // A begin cell off the main diagonal contributes initial drift.
  EXPECT_EQ(required_band(Cigar{}, Cell{10, 4}), 6u);
}

}  // namespace
