#include <gtest/gtest.h>

#include "align/cigar.hpp"
#include "seq/sequence.hpp"

namespace {

using namespace swr;
using namespace swr::align;

TEST(Cigar, PushMergesAdjacentRuns) {
  Cigar c;
  c.push(EditOp::Match, 2);
  c.push(EditOp::Match, 3);
  c.push(EditOp::Insert);
  ASSERT_EQ(c.runs().size(), 2u);
  EXPECT_EQ(c.runs()[0], (EditRun{EditOp::Match, 5}));
  EXPECT_EQ(c.runs()[1], (EditRun{EditOp::Insert, 1}));
}

TEST(Cigar, PushZeroLenIsNoop) {
  Cigar c;
  c.push(EditOp::Match, 0);
  EXPECT_TRUE(c.empty());
}

TEST(Cigar, ConsumedCounts) {
  Cigar c;
  c.push(EditOp::Match, 3);
  c.push(EditOp::Mismatch, 1);
  c.push(EditOp::Insert, 2);
  c.push(EditOp::Delete, 4);
  EXPECT_EQ(c.columns(), 10u);
  EXPECT_EQ(c.consumed_i(), 8u);  // M + X + D
  EXPECT_EQ(c.consumed_j(), 6u);  // M + X + I
}

TEST(Cigar, ToStringMergesMatchAndMismatch) {
  Cigar c;
  c.push(EditOp::Match, 2);
  c.push(EditOp::Mismatch, 1);
  c.push(EditOp::Delete, 2);
  c.push(EditOp::Insert, 1);
  EXPECT_EQ(c.to_string(), "3M2D1I");
}

TEST(Cigar, ReverseAndAppend) {
  Cigar c;
  c.push(EditOp::Match, 2);
  c.push(EditOp::Insert, 1);
  c.reverse();
  EXPECT_EQ(c.to_string(), "1I2M");
  Cigar tail;
  tail.push(EditOp::Match, 4);
  c.append(tail);
  EXPECT_EQ(c.to_string(), "1I6M");
}

TEST(CigarIdentity, CountsMatchColumns) {
  Cigar c;
  c.push(EditOp::Match, 3);
  c.push(EditOp::Mismatch, 1);
  EXPECT_DOUBLE_EQ(cigar_identity(c), 0.75);
  EXPECT_DOUBLE_EQ(cigar_identity(Cigar{}), 1.0);
}

TEST(ScoreOf, DetectsOpResidueDisagreement) {
  const seq::Sequence a = seq::Sequence::dna("AC");
  const seq::Sequence b = seq::Sequence::dna("AG");
  Cigar c;
  c.push(EditOp::Match, 2);  // second column is actually a mismatch
  EXPECT_THROW((void)score_of(c, a, b, Cell{1, 1}, Scoring::paper_default()),
               std::invalid_argument);
}

TEST(ScoreOf, DetectsOutOfBounds) {
  const seq::Sequence a = seq::Sequence::dna("AC");
  const seq::Sequence b = seq::Sequence::dna("AC");
  Cigar c;
  c.push(EditOp::Match, 3);
  EXPECT_THROW((void)score_of(c, a, b, Cell{1, 1}, Scoring::paper_default()),
               std::invalid_argument);
}

TEST(FormatAlignment, ThreeLineLayout) {
  const seq::Sequence a = seq::Sequence::dna("ACT");
  const seq::Sequence b = seq::Sequence::dna("AGT");
  Cigar c;
  c.push(EditOp::Match);
  c.push(EditOp::Mismatch);
  c.push(EditOp::Match);
  EXPECT_EQ(format_alignment(c, a, b, Cell{1, 1}),
            "A C T \n"
            "|   | \n"
            "A G T \n");
}

TEST(FormatAlignment, GapsRenderAsDashes) {
  const seq::Sequence a = seq::Sequence::dna("AC");
  const seq::Sequence b = seq::Sequence::dna("AGC");
  Cigar c;
  c.push(EditOp::Match);
  c.push(EditOp::Insert);
  c.push(EditOp::Match);
  EXPECT_EQ(format_alignment(c, a, b, Cell{1, 1}),
            "A - C \n"
            "|   | \n"
            "A G C \n");
}

}  // namespace
