#include <gtest/gtest.h>

#include "align/sw_full.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::align;

const Scoring kSc = Scoring::paper_default();

// Paper figure 2: s = TATGGAC (rows), t = TAGTGACT (columns), +1/-1/-2.
TEST(SwFull, Figure2GoldenMatrix) {
  const seq::Sequence s = seq::Sequence::dna("TATGGAC");
  const seq::Sequence t = seq::Sequence::dna("TAGTGACT");
  const SimilarityMatrix m = sw_matrix(s, t, kSc);
  ASSERT_EQ(m.rows(), 8u);
  ASSERT_EQ(m.cols(), 9u);

  const Score expected[8][9] = {
      {0, 0, 0, 0, 0, 0, 0, 0, 0},  //
      {0, 1, 0, 0, 1, 0, 0, 0, 1},  // T
      {0, 0, 2, 0, 0, 0, 1, 0, 0},  // A
      {0, 1, 0, 1, 1, 0, 0, 0, 1},  // T
      {0, 0, 0, 1, 0, 2, 0, 0, 0},  // G
      {0, 0, 0, 1, 0, 1, 1, 0, 0},  // G
      {0, 0, 1, 0, 0, 0, 2, 0, 0},  // A
      {0, 0, 0, 0, 0, 0, 0, 3, 1},  // C
  };
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 9; ++j) {
      EXPECT_EQ(m(i, j), expected[i][j]) << "cell (" << i << "," << j << ")";
    }
  }
}

TEST(SwFull, Figure2BestAndTraceback) {
  const seq::Sequence s = seq::Sequence::dna("TATGGAC");
  const seq::Sequence t = seq::Sequence::dna("TAGTGACT");
  const LocalAlignment al = sw_align(s, t, kSc);
  EXPECT_EQ(al.score, 3);
  EXPECT_EQ(al.end, (Cell{7, 7}));
  EXPECT_EQ(al.begin, (Cell{5, 5}));
  EXPECT_EQ(al.cigar.to_string(), "3M");  // GAC aligned to GAC
  EXPECT_EQ(score_of(al.cigar, s, t, al.begin, kSc), al.score);
}

TEST(SwFull, IdenticalSequencesAlignFully) {
  const seq::Sequence s = seq::Sequence::dna("ACGTACGTGG");
  const LocalAlignment al = sw_align(s, s, kSc);
  EXPECT_EQ(al.score, static_cast<Score>(s.size()));
  EXPECT_EQ(al.begin, (Cell{1, 1}));
  EXPECT_EQ(al.end, (Cell{s.size(), s.size()}));
  EXPECT_DOUBLE_EQ(cigar_identity(al.cigar), 1.0);
}

TEST(SwFull, DisjointAlphabetscoreZero) {
  // All-A vs all-T: every substitution is a mismatch, so the empty
  // alignment (score 0) is optimal.
  const LocalAlignment al = sw_align(seq::Sequence::dna("AAAA"), seq::Sequence::dna("TTTT"), kSc);
  EXPECT_EQ(al.score, 0);
  EXPECT_TRUE(al.cigar.empty());
  EXPECT_EQ(al.end, (Cell{0, 0}));
}

TEST(SwFull, EmptyInputs) {
  EXPECT_EQ(sw_align(seq::Sequence::dna(""), seq::Sequence::dna("ACGT"), kSc).score, 0);
  EXPECT_EQ(sw_align(seq::Sequence::dna("ACGT"), seq::Sequence::dna(""), kSc).score, 0);
  EXPECT_EQ(sw_align(seq::Sequence::dna(""), seq::Sequence::dna(""), kSc).score, 0);
}

TEST(SwFull, AlphabetMismatchRejected) {
  EXPECT_THROW((void)sw_align(seq::Sequence::dna("ACGT"), seq::Sequence::protein("ARND"), kSc),
               std::invalid_argument);
}

TEST(SwFull, TracebackScoreAlwaysMatchesCell) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const seq::Sequence a = swr::test::random_dna(40 + seed, 100 + seed);
    const seq::Sequence b = swr::test::random_dna(60, 200 + seed);
    const LocalAlignment al = sw_align(a, b, kSc);
    if (al.score > 0) {
      EXPECT_EQ(score_of(al.cigar, a, b, al.begin, kSc), al.score) << "seed " << seed;
      // Transcript must span exactly begin..end.
      EXPECT_EQ(al.begin.i + al.cigar.consumed_i() - 1, al.end.i);
      EXPECT_EQ(al.begin.j + al.cigar.consumed_j() - 1, al.end.j);
      // Local alignments never begin or end with a gap.
      EXPECT_NE(al.cigar.runs().front().op, EditOp::Insert);
      EXPECT_NE(al.cigar.runs().front().op, EditOp::Delete);
      EXPECT_NE(al.cigar.runs().back().op, EditOp::Insert);
      EXPECT_NE(al.cigar.runs().back().op, EditOp::Delete);
    }
  }
}

TEST(SwFull, AllBestCellsShareTheBestScore) {
  const seq::Sequence a = seq::Sequence::dna("ACACAC");
  const seq::Sequence b = seq::Sequence::dna("ACGTAC");
  const SimilarityMatrix m = sw_matrix(a, b, kSc);
  const LocalScoreResult best = sw_best(m);
  const auto cells = sw_all_best_cells(m);
  ASSERT_FALSE(cells.empty());
  for (const Cell& c : cells) EXPECT_EQ(m(c.i, c.j), best.score);
  // The canonical cell is the (j, i)-lexicographic minimum.
  Cell canon = cells.front();
  for (const Cell& c : cells) {
    if (tie_break_prefers(c, canon)) canon = c;
  }
  EXPECT_EQ(best.end, canon);
}

TEST(SwFull, ScoreMonotoneInMatchReward) {
  const seq::Sequence a = swr::test::random_dna(60, 42);
  const seq::Sequence b = swr::test::random_dna(60, 43);
  Scoring hi = kSc;
  hi.match = 3;
  EXPECT_GE(sw_align(a, b, hi).score, sw_align(a, b, kSc).score);
}

TEST(SwFull, MatrixFormatShowsHeaders) {
  const seq::Sequence a = seq::Sequence::dna("AC");
  const seq::Sequence b = seq::Sequence::dna("AG");
  const std::string text = sw_matrix(a, b, kSc).format(a, b);
  EXPECT_NE(text.find('A'), std::string::npos);
  EXPECT_NE(text.find('G'), std::string::npos);
  EXPECT_NE(text.find('\n'), std::string::npos);
}

}  // namespace
