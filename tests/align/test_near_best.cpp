#include <gtest/gtest.h>

#include "align/near_best.hpp"
#include "align/sw_full.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::align;

const Scoring kSc = Scoring::paper_default();

// Database with three diverged copies of the query planted far apart.
struct ThreePlants {
  seq::Sequence query;
  seq::Sequence db;
  std::size_t offsets[3] = {500, 2000, 3500};
};

ThreePlants make_three_plants(std::uint64_t seed) {
  seq::RandomSequenceGenerator gen(seed);
  ThreePlants tp;
  tp.query = gen.uniform(seq::dna(), 60, "q");
  seq::Sequence db = gen.uniform(seq::dna(), 500);
  for (int k = 0; k < 3; ++k) {
    tp.offsets[k] = db.size();
    db.append(seq::point_mutate(tp.query, 0.03 + 0.03 * k, gen.engine()));
    db.append(gen.uniform(seq::dna(), 1000));
  }
  tp.db = std::move(db);
  return tp;
}

TEST(NearBest, FirstAlignmentIsTheGlobalBest) {
  const seq::Sequence a = swr::test::random_dna(200, 1);
  const seq::Sequence b = swr::test::random_dna(100, 2);
  NearBestOptions opt;
  opt.max_alignments = 1;
  const auto set = near_best_alignments(a, b, kSc, opt);
  const LocalAlignment best = sw_align(a, b, kSc);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set[0].score, best.score);
  EXPECT_EQ(set[0].end, best.end);
}

TEST(NearBest, FindsAllPlantedCopies) {
  const ThreePlants tp = make_three_plants(9);
  NearBestOptions opt;
  opt.max_alignments = 3;
  opt.min_score = 20;
  const auto set = near_best_alignments(tp.db, tp.query, kSc, opt);
  ASSERT_EQ(set.size(), 3u);
  // Each alignment must land on a distinct planted window.
  std::vector<bool> found(3, false);
  for (const LocalAlignment& al : set) {
    for (int k = 0; k < 3; ++k) {
      if (al.end.i >= tp.offsets[k] && al.end.i <= tp.offsets[k] + 70) found[k] = true;
    }
  }
  EXPECT_TRUE(found[0] && found[1] && found[2]);
}

TEST(NearBest, ScoresAreNonIncreasing) {
  const ThreePlants tp = make_three_plants(10);
  NearBestOptions opt;
  opt.max_alignments = 5;
  opt.min_score = 10;
  const auto set = near_best_alignments(tp.db, tp.query, kSc, opt);
  for (std::size_t k = 1; k < set.size(); ++k) {
    EXPECT_LE(set[k].score, set[k - 1].score);
  }
}

TEST(NearBest, DatabaseRowSpansAreDisjoint) {
  const ThreePlants tp = make_three_plants(11);
  NearBestOptions opt;
  opt.max_alignments = 6;
  opt.min_score = 8;
  const auto set = near_best_alignments(tp.db, tp.query, kSc, opt);
  for (std::size_t x = 0; x < set.size(); ++x) {
    for (std::size_t y = x + 1; y < set.size(); ++y) {
      const bool disjoint =
          set[x].end.i < set[y].begin.i || set[y].end.i < set[x].begin.i;
      EXPECT_TRUE(disjoint) << "alignments " << x << " and " << y << " overlap";
    }
  }
}

TEST(NearBest, TranscriptsScoreAsReported) {
  const ThreePlants tp = make_three_plants(12);
  NearBestOptions opt;
  opt.max_alignments = 4;
  opt.min_score = 10;
  for (const LocalAlignment& al : near_best_alignments(tp.db, tp.query, kSc, opt)) {
    EXPECT_EQ(score_of(al.cigar, tp.db, tp.query, al.begin, kSc), al.score);
  }
}

TEST(NearBest, MinScoreCutsOff) {
  const ThreePlants tp = make_three_plants(13);
  NearBestOptions loose;
  loose.max_alignments = 3;
  loose.min_score = 10;
  const auto all = near_best_alignments(tp.db, tp.query, kSc, loose);
  ASSERT_EQ(all.size(), 3u);
  ASSERT_GT(all[0].score, all[2].score) << "fixture needs distinct plant scores";

  // A threshold strictly between the best and worst plant must cut the
  // worst one (and only alignments at/above the threshold may appear).
  NearBestOptions strict;
  strict.max_alignments = 10;
  strict.min_score = all[2].score + 1;
  const auto set = near_best_alignments(tp.db, tp.query, kSc, strict);
  EXPECT_GE(set.size(), 1u);
  EXPECT_LT(set.size(), 3u);
  for (const LocalAlignment& al : set) EXPECT_GE(al.score, strict.min_score);
}

TEST(NearBest, NoHitsOnHopelessInput) {
  NearBestOptions opt;
  const auto set = near_best_alignments(seq::Sequence::dna("AAAAAA"),
                                        seq::Sequence::dna("TTTTTT"), kSc, opt);
  EXPECT_TRUE(set.empty());
}

TEST(NearBest, OptionValidation) {
  NearBestOptions opt;
  opt.min_score = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
  opt = NearBestOptions{};
  opt.max_alignments = 0;
  EXPECT_THROW(opt.validate(), std::invalid_argument);
}

TEST(SwLinearRowMasked, MaskedRowsAreImpassable) {
  const seq::Sequence a = seq::Sequence::dna("ACGTACGT");
  const seq::Sequence b = seq::Sequence::dna("ACGTACGT");
  std::vector<bool> none(a.size(), false);
  EXPECT_EQ(sw_linear_row_masked(a, b, none, kSc).score, 8);
  std::vector<bool> mid(a.size(), false);
  mid[3] = true;  // row 4 blocked: best unmasked run is 4 (rows 5..8)
  EXPECT_EQ(sw_linear_row_masked(a, b, mid, kSc).score, 4);
  std::vector<bool> all(a.size(), true);
  EXPECT_EQ(sw_linear_row_masked(a, b, all, kSc).score, 0);
  EXPECT_THROW((void)sw_linear_row_masked(a, b, std::vector<bool>(3, false), kSc),
               std::invalid_argument);
}

}  // namespace
