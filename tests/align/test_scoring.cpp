#include <gtest/gtest.h>

#include "align/cigar.hpp"
#include "align/scoring.hpp"
#include "seq/sequence.hpp"

namespace {

using namespace swr;
using namespace swr::align;

TEST(Scoring, PaperDefaultValues) {
  const Scoring sc = Scoring::paper_default();
  EXPECT_EQ(sc.match, 1);
  EXPECT_EQ(sc.mismatch, -1);
  EXPECT_EQ(sc.gap, -2);
  EXPECT_NO_THROW(sc.validate());
}

TEST(Scoring, SubstitutionUniform) {
  const Scoring sc = Scoring::paper_default();
  EXPECT_EQ(sc.substitution(0, 0), 1);
  EXPECT_EQ(sc.substitution(0, 3), -1);
}

TEST(Scoring, ValidationRejectsBadSchemes) {
  Scoring sc;
  sc.gap = 0;
  EXPECT_THROW(sc.validate(), std::invalid_argument);
  sc = Scoring{};
  sc.match = 0;
  EXPECT_THROW(sc.validate(), std::invalid_argument);
  sc = Scoring{};
  sc.mismatch = 2;
  EXPECT_THROW(sc.validate(), std::invalid_argument);
}

TEST(Scoring, Figure1AlignmentScore) {
  // Paper figure 1:
  //   A C T T G T C C G -
  //   A G - T G T C A G A
  // 6 matches (+6), 2 mismatches (-2), 2 gaps (-4): total 0.
  // Column classes: M X D M M M M X M I (via the transcript below).
  const seq::Sequence a = seq::Sequence::dna("ACTTGTCCG");
  const seq::Sequence b = seq::Sequence::dna("AGTGTCAGA");
  Cigar cg;
  cg.push(EditOp::Match);     // A/A
  cg.push(EditOp::Mismatch);  // C/G
  cg.push(EditOp::Delete);    // T/-
  cg.push(EditOp::Match);     // T/T
  cg.push(EditOp::Match);     // G/G
  cg.push(EditOp::Match);     // T/T
  cg.push(EditOp::Match);     // C/C
  cg.push(EditOp::Mismatch);  // C/A
  cg.push(EditOp::Match);     // G/G
  cg.push(EditOp::Insert);    // -/A
  EXPECT_EQ(score_of(cg, a, b, Cell{1, 1}, Scoring::paper_default()), 0);
}

TEST(SubstitutionMatrix, UniformConstructor) {
  const SubstitutionMatrix m(seq::dna(), 5, -4);
  EXPECT_EQ(m(0, 0), 5);
  EXPECT_EQ(m(0, 1), -4);
  EXPECT_EQ(m.max_entry(), 5);
  EXPECT_EQ(m.min_entry(), -4);
}

TEST(SubstitutionMatrix, RejectsWrongTableSize) {
  EXPECT_THROW(SubstitutionMatrix(seq::dna(), std::vector<Score>(15, 0)), std::invalid_argument);
}

TEST(Blosum62, KnownEntries) {
  const SubstitutionMatrix& m = blosum62();
  const auto& ab = seq::protein();
  const auto c = [&](char x) { return ab.code(x); };
  EXPECT_EQ(m(c('A'), c('A')), 4);
  EXPECT_EQ(m(c('W'), c('W')), 11);
  EXPECT_EQ(m(c('W'), c('A')), -3);
  EXPECT_EQ(m(c('E'), c('Q')), 2);
  EXPECT_EQ(m(c('I'), c('V')), 3);
  EXPECT_EQ(m(c('X'), c('X')), -1);
}

TEST(Blosum62, IsSymmetric) {
  const SubstitutionMatrix& m = blosum62();
  const std::size_t n = seq::protein().size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(m(static_cast<seq::Code>(i), static_cast<seq::Code>(j)),
                m(static_cast<seq::Code>(j), static_cast<seq::Code>(i)))
          << "at (" << i << "," << j << ")";
    }
  }
}

TEST(Blosum62, DiagonalIsRowMaximum) {
  // BLOSUM62 property (holds for all rows except X): self-substitution is
  // the best score in the row.
  const SubstitutionMatrix& m = blosum62();
  const std::size_t n = seq::protein().size() - 1;  // exclude X
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_LE(m(static_cast<seq::Code>(i), static_cast<seq::Code>(j)),
                m(static_cast<seq::Code>(i), static_cast<seq::Code>(i)));
    }
  }
}

TEST(AffineScoring, Validation) {
  AffineScoring sc;
  EXPECT_NO_THROW(sc.validate());
  sc.gap_extend = 0;
  EXPECT_THROW(sc.validate(), std::invalid_argument);
  sc = AffineScoring{};
  sc.gap_open = 1;
  EXPECT_THROW(sc.validate(), std::invalid_argument);
}

}  // namespace
