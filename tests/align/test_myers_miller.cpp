#include <gtest/gtest.h>

#include <tuple>

#include "align/gotoh.hpp"
#include "align/myers_miller.hpp"
#include "seq/workload.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::align;

AffineScoring default_affine() {
  AffineScoring sc;
  sc.match = 2;
  sc.mismatch = -1;
  sc.gap_open = -2;
  sc.gap_extend = -1;
  return sc;
}

// Affine score of a transcript (gap runs cost open + len*extend).
Score affine_score_of(const Cigar& cg, const seq::Sequence& a, const seq::Sequence& b,
                      Cell begin, const AffineScoring& sc) {
  Score total = 0;
  std::size_t i = begin.i;
  std::size_t j = begin.j;
  for (const EditRun& r : cg.runs()) {
    switch (r.op) {
      case EditOp::Match:
      case EditOp::Mismatch:
        for (std::size_t k = 0; k < r.len; ++k) {
          total += sc.substitution(a[i - 1], b[j - 1]);
          ++i;
          ++j;
        }
        break;
      case EditOp::Insert:
        total += sc.gap_open + static_cast<Score>(r.len) * sc.gap_extend;
        j += r.len;
        break;
      case EditOp::Delete:
        total += sc.gap_open + static_cast<Score>(r.len) * sc.gap_extend;
        i += r.len;
        break;
    }
  }
  return total;
}

TEST(MyersMiller, IdenticalSequences) {
  const seq::Sequence s = seq::Sequence::dna("ACGTACGT");
  const LocalAlignment al = myers_miller_align(s, s, default_affine());
  EXPECT_EQ(al.score, 16);
  EXPECT_EQ(al.cigar.to_string(), "8M");
}

TEST(MyersMiller, EmptyCases) {
  const AffineScoring sc = default_affine();
  const seq::Sequence e = seq::Sequence::dna("");
  const seq::Sequence s = seq::Sequence::dna("ACGT");
  EXPECT_EQ(myers_miller_cigar(e.codes(), s.codes(), sc).to_string(), "4I");
  EXPECT_EQ(myers_miller_cigar(s.codes(), e.codes(), sc).to_string(), "4D");
  EXPECT_TRUE(myers_miller_cigar(e.codes(), e.codes(), sc).empty());
}

TEST(MyersMiller, LongGapSpansTheSplit) {
  // Deletion of 6 rows right in the middle: the recursion must carry the
  // gap across its split row without double-charging the open.
  AffineScoring sc;
  sc.match = 3;
  sc.mismatch = -3;
  sc.gap_open = -8;
  sc.gap_extend = -1;
  const seq::Sequence a = seq::Sequence::dna("ACGTACCCCCCGTACGT");  // 17
  const seq::Sequence b = seq::Sequence::dna("ACGTAGTACGT");        // 11 = 17 - 6
  const Cigar cg = myers_miller_cigar(a.codes(), b.codes(), sc);
  EXPECT_EQ(affine_score_of(cg, a, b, Cell{1, 1}, sc),
            gotoh_global_score(a.codes(), b.codes(), sc));
  EXPECT_EQ(cg.consumed_i(), a.size());
  EXPECT_EQ(cg.consumed_j(), b.size());
  // The optimum is one 6-long deletion: exactly one gap run.
  std::size_t del_runs = 0;
  for (const EditRun& r : cg.runs()) {
    if (r.op == EditOp::Delete) ++del_runs;
  }
  EXPECT_EQ(del_runs, 1u);
}

// The central property: the MM transcript's affine score equals Gotoh's
// optimal global score, across shapes, seeds and gap parameters.
class MmEquivalence
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t, int>> {};

TEST_P(MmEquivalence, TranscriptIsAffineOptimal) {
  const auto [m, n, seed, scheme] = GetParam();
  AffineScoring sc = default_affine();
  if (scheme == 1) {
    sc.gap_open = -10;
    sc.gap_extend = -1;
  } else if (scheme == 2) {
    sc.gap_open = 0;  // degenerates to linear gaps
    sc.gap_extend = -3;
  } else if (scheme == 3) {
    sc.match = 5;
    sc.mismatch = -4;
    sc.gap_open = -6;
    sc.gap_extend = -2;
  }
  const seq::Sequence a = swr::test::random_dna(m, seed * 11 + 300);
  const seq::Sequence b = swr::test::random_dna(n, seed * 13 + 400);
  const Cigar cg = myers_miller_cigar(a.codes(), b.codes(), sc);
  EXPECT_EQ(cg.consumed_i(), a.size());
  EXPECT_EQ(cg.consumed_j(), b.size());
  if (m > 0 || n > 0) {
    EXPECT_EQ(affine_score_of(cg, a, b, Cell{1, 1}, sc),
              gotoh_global_score(a.codes(), b.codes(), sc));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MmEquivalence,
                         testing::Combine(testing::Values<std::size_t>(0, 1, 2, 3, 9, 33, 80),
                                          testing::Values<std::size_t>(0, 1, 2, 10, 41, 77),
                                          testing::Values<std::uint64_t>(1, 2, 3),
                                          testing::Values(0, 1, 2, 3)));

TEST(MyersMiller, HomologsWithIndels) {
  seq::MutationModel mm;
  mm.substitution_rate = 0.05;
  mm.insertion_rate = 0.03;
  mm.deletion_rate = 0.03;
  const auto pair = seq::make_homolog_pair(900, mm, 42);
  AffineScoring sc;
  sc.match = 2;
  sc.mismatch = -2;
  sc.gap_open = -6;
  sc.gap_extend = -1;
  const Cigar cg = myers_miller_cigar(pair.a.codes(), pair.b.codes(), sc);
  EXPECT_EQ(affine_score_of(cg, pair.a, pair.b, Cell{1, 1}, sc),
            gotoh_global_score(pair.a.codes(), pair.b.codes(), sc));
}

// Affine local retrieval pipeline vs the quadratic Gotoh traceback oracle.
class AffineLocalLinear
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(AffineLocalLinear, MatchesGotohOracleScore) {
  const auto [m, n, seed] = GetParam();
  const AffineScoring sc = default_affine();
  const seq::Sequence a = swr::test::random_dna(m, seed * 17 + 500);
  const seq::Sequence b = swr::test::random_dna(n, seed * 19 + 600);
  const LocalAlignment lin = gotoh_local_align_linear(a, b, sc);
  const LocalAlignment full = gotoh_local_align(a, b, sc);
  ASSERT_EQ(lin.score, full.score);
  if (lin.score > 0) {
    EXPECT_EQ(affine_score_of(lin.cigar, a, b, lin.begin, sc), lin.score);
    EXPECT_EQ(lin.begin.i + lin.cigar.consumed_i() - 1, lin.end.i);
    EXPECT_EQ(lin.begin.j + lin.cigar.consumed_j() - 1, lin.end.j);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AffineLocalLinear,
                         testing::Combine(testing::Values<std::size_t>(1, 20, 60, 140),
                                          testing::Values<std::size_t>(1, 15, 70),
                                          testing::Values<std::uint64_t>(1, 2, 3, 4)));

TEST(AffineLocalLinear, NoPositiveAlignment) {
  const LocalAlignment al = gotoh_local_align_linear(seq::Sequence::dna("AAAA"),
                                                     seq::Sequence::dna("TTTT"), default_affine());
  EXPECT_EQ(al.score, 0);
  EXPECT_TRUE(al.cigar.empty());
}

TEST(AffineLocalLinear, AlphabetMismatchRejected) {
  EXPECT_THROW((void)gotoh_local_align_linear(seq::Sequence::dna("ACGT"),
                                              seq::Sequence::protein("ARND"), default_affine()),
               std::invalid_argument);
}

}  // namespace
