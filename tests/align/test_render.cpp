#include <gtest/gtest.h>

#include "align/render.hpp"

namespace {

using namespace swr;
using namespace swr::align;

const Scoring kSc = Scoring::paper_default();

TEST(Render, Figure2ArrowsAndPath) {
  // The paper's figure-2 example with its traceback highlighted.
  const seq::Sequence s = seq::Sequence::dna("TATGGAC");
  const seq::Sequence t = seq::Sequence::dna("TAGTGACT");
  const SimilarityMatrix m = sw_matrix(s, t, kSc);
  const LocalAlignment al = sw_align(s, t, kSc);
  const std::string text = render_matrix_with_arrows(m, s, t, kSc, &al);
  // Diagonal arrows on the match cells; the best cell 3 is on the path.
  EXPECT_NE(text.find("\\3*"), std::string::npos) << text;
  EXPECT_NE(text.find("\\1"), std::string::npos);
  // Path marks exactly: corner (4,4) value 0 marked, then 1*, 2*, 3*.
  EXPECT_NE(text.find("0*"), std::string::npos);
  EXPECT_NE(text.find("\\2*"), std::string::npos);
}

TEST(Render, MultipleArrowsOnTiedPredecessors) {
  // A cell whose value is reachable both diagonally and via a gap shows
  // more than one arrow — figure 2's "many arrows can exist" remark.
  // Craft: b = "AA", a = "A": cell (1,2) = max(0, 0-1, 0-2, 1-2) -> 0;
  // use a scheme where ties arise: match 2, gap -1: D(1,2) = max(0+2?,...)
  Scoring sc;
  sc.match = 2;
  sc.mismatch = -2;
  sc.gap = -1;
  const seq::Sequence a = seq::Sequence::dna("AA");
  const seq::Sequence b = seq::Sequence::dna("AA");
  const SimilarityMatrix m = sw_matrix(a, b, sc);
  // D(2,1): diag(1,0)=0 +2 = 2; up D(1,1)=2 -1 = 1; -> '\2'.
  // D(2,2): diag D(1,1)=2 +2 = 4.
  // D(1,2): diag 0+2=2, left D(1,1)-1=1 -> '\'.
  const std::string text = render_matrix_with_arrows(m, a, b, sc, nullptr);
  EXPECT_NE(text.find('\\'), std::string::npos);
  EXPECT_NE(text.find("4"), std::string::npos);
}

TEST(Render, NoPathMarksWithoutPath) {
  const seq::Sequence s = seq::Sequence::dna("AC");
  const SimilarityMatrix m = sw_matrix(s, s, kSc);
  const std::string text = render_matrix_with_arrows(m, s, s, kSc, nullptr);
  EXPECT_EQ(text.find('*'), std::string::npos);
}

TEST(Render, GapArrowsAppearWhereGapsWin) {
  // Force an up-arrow: a cell fed by a gap from above.
  Scoring sc;
  sc.match = 5;
  sc.mismatch = -1;
  sc.gap = -1;
  const seq::Sequence a = seq::Sequence::dna("AT");
  const seq::Sequence b = seq::Sequence::dna("A");
  // D(1,1)=5 (match); D(2,1)= max(0, diag 0-? T vs A -1, up 5-1=4) = 4 '^'.
  const SimilarityMatrix m = sw_matrix(a, b, sc);
  const std::string text = render_matrix_with_arrows(m, a, b, sc, nullptr);
  EXPECT_NE(text.find("^4"), std::string::npos) << text;
}

}  // namespace
