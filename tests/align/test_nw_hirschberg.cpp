#include <gtest/gtest.h>

#include <tuple>

#include "align/hirschberg.hpp"
#include "align/nw.hpp"
#include "seq/workload.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::align;

const Scoring kSc = Scoring::paper_default();

TEST(Nw, IdenticalSequences) {
  const seq::Sequence s = seq::Sequence::dna("ACGTAC");
  const LocalAlignment al = nw_align(s, s, kSc);
  EXPECT_EQ(al.score, 6);
  EXPECT_EQ(al.cigar.to_string(), "6M");
}

TEST(Nw, EmptyAgainstNonEmptyIsAllGaps) {
  const LocalAlignment al = nw_align(seq::Sequence::dna(""), seq::Sequence::dna("ACG"), kSc);
  EXPECT_EQ(al.score, -6);
  EXPECT_EQ(al.cigar.to_string(), "3I");
}

TEST(Nw, BothEmpty) {
  const LocalAlignment al = nw_align(seq::Sequence::dna(""), seq::Sequence::dna(""), kSc);
  EXPECT_EQ(al.score, 0);
  EXPECT_TRUE(al.cigar.empty());
}

TEST(Nw, KnownSmallCase) {
  // GATTACA vs GCATGCU-style sanity with DNA letters: GATTACA vs GATGCA.
  const seq::Sequence a = seq::Sequence::dna("GATTACA");
  const seq::Sequence b = seq::Sequence::dna("GATGCA");
  const LocalAlignment al = nw_align(a, b, kSc);
  EXPECT_EQ(al.score, nw_score(a.codes(), b.codes(), kSc));
  EXPECT_EQ(score_of(al.cigar, a, b, Cell{1, 1}, kSc), al.score);
}

TEST(Nw, LastRowEndsWithGlobalScore) {
  const seq::Sequence a = swr::test::random_dna(40, 1);
  const seq::Sequence b = swr::test::random_dna(55, 2);
  const auto row = nw_last_row(a.codes(), b.codes(), kSc);
  ASSERT_EQ(row.size(), b.size() + 1);
  EXPECT_EQ(row.back(), nw_score(a.codes(), b.codes(), kSc));
  EXPECT_EQ(row.front(), static_cast<Score>(a.size()) * kSc.gap);
}

TEST(Nw, TracebackConsumesBothSequences) {
  const seq::Sequence a = swr::test::random_dna(30, 3);
  const seq::Sequence b = swr::test::random_dna(20, 4);
  const LocalAlignment al = nw_align(a, b, kSc);
  EXPECT_EQ(al.cigar.consumed_i(), a.size());
  EXPECT_EQ(al.cigar.consumed_j(), b.size());
}

// Hirschberg property sweep: transcript score equals the NW optimum and
// consumes both sequences, across shapes incl. degenerate ones.
class HirschbergEquivalence
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(HirschbergEquivalence, TranscriptIsOptimal) {
  const auto [m, n, seed] = GetParam();
  const seq::Sequence a = swr::test::random_dna(m, seed);
  const seq::Sequence b = swr::test::random_dna(n, seed + 1);
  const LocalAlignment al = hirschberg_align(a, b, kSc);
  EXPECT_EQ(al.score, nw_score(a.codes(), b.codes(), kSc));
  EXPECT_EQ(al.cigar.consumed_i(), a.size());
  EXPECT_EQ(al.cigar.consumed_j(), b.size());
  if (m > 0 || n > 0) {
    EXPECT_EQ(score_of(al.cigar, a, b, Cell{1, 1}, kSc), al.score);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HirschbergEquivalence,
                         testing::Combine(testing::Values<std::size_t>(0, 1, 2, 3, 17, 64, 111),
                                          testing::Values<std::size_t>(0, 1, 2, 19, 73, 128),
                                          testing::Values<std::uint64_t>(10, 11)));

TEST(Hirschberg, AgreesWithNwOnHomologs) {
  // Realistic case: two 1 kbp homologs, where the optimal path wanders.
  seq::MutationModel mm;
  mm.substitution_rate = 0.05;
  mm.insertion_rate = 0.02;
  mm.deletion_rate = 0.02;
  const auto pair = seq::make_homolog_pair(1000, mm, 77);
  const LocalAlignment al = hirschberg_align(pair.a, pair.b, kSc);
  EXPECT_EQ(al.score, nw_score(pair.a.codes(), pair.b.codes(), kSc));
  EXPECT_GT(cigar_identity(al.cigar), 0.8);
}

TEST(Hirschberg, AlternativeScoringScheme) {
  Scoring sc;
  sc.match = 3;
  sc.mismatch = -2;
  sc.gap = -4;
  const seq::Sequence a = swr::test::random_dna(83, 20);
  const seq::Sequence b = swr::test::random_dna(90, 21);
  EXPECT_EQ(hirschberg_align(a, b, sc).score, nw_score(a.codes(), b.codes(), sc));
}

TEST(Hirschberg, AlphabetMismatchRejected) {
  EXPECT_THROW(
      (void)hirschberg_align(seq::Sequence::dna("ACGT"), seq::Sequence::protein("ARND"), kSc),
      std::invalid_argument);
}

}  // namespace
