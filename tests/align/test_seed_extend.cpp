#include <gtest/gtest.h>

#include "align/seed_extend.hpp"
#include "align/sw_linear.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::align;

const Scoring kSc = Scoring::paper_default();

TEST(KmerIndex, IndexesEveryPosition) {
  const seq::Sequence q = seq::Sequence::dna("ACGTACGT");
  const KmerIndex idx(q, 4);
  // ACGT occurs at positions 0 and 4.
  std::uint64_t packed = 0;
  for (int p = 0; p < 4; ++p) packed = (packed << 2) | q[static_cast<std::size_t>(p)];
  const auto* pos = idx.lookup(packed);
  ASSERT_NE(pos, nullptr);
  EXPECT_EQ(*pos, (std::vector<std::uint32_t>{0, 4}));
  EXPECT_EQ(idx.lookup(~std::uint64_t{0} & 0xFF), nullptr);
}

TEST(KmerIndex, ShortQueryHasNoKmers) {
  const KmerIndex idx(seq::Sequence::dna("ACG"), 8);
  EXPECT_EQ(idx.query_len(), 3u);
}

TEST(KmerIndex, Validation) {
  EXPECT_THROW(KmerIndex(seq::Sequence::dna("ACGT"), 0), std::invalid_argument);
  EXPECT_THROW(KmerIndex(seq::Sequence::dna("ACGT"), 33), std::invalid_argument);
  EXPECT_THROW(KmerIndex(seq::Sequence::protein("ARNDARND"), 4), std::invalid_argument);
}

TEST(SeedExtend, FindsExactPlantedCopy) {
  seq::RandomSequenceGenerator gen(1);
  const seq::Sequence q = gen.uniform(seq::dna(), 60, "q");
  seq::Sequence db = gen.uniform(seq::dna(), 3000);
  const std::size_t at = db.size();
  db.append(q);
  db.append(gen.uniform(seq::dna(), 3000));

  SeedExtendOptions opt;
  const auto hits = seed_extend_search(db, q, kSc, opt);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].score, 60);  // perfect ungapped copy
  EXPECT_EQ(hits[0].begin, (Cell{at + 1, 1}));
  EXPECT_EQ(hits[0].end, (Cell{at + 60, 60}));
}

TEST(SeedExtend, HitScoreNeverExceedsExactOptimum) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    seq::RandomSequenceGenerator gen(100 + seed);
    const seq::Sequence q = gen.uniform(seq::dna(), 50);
    seq::Sequence db = gen.uniform(seq::dna(), 1500);
    db.append(seq::point_mutate(q, 0.05, gen.engine()));
    db.append(gen.uniform(seq::dna(), 1500));
    const Score exact = sw_linear(db, q, kSc).score;
    SeedExtendOptions opt;
    for (const SeedHit& h : seed_extend_search(db, q, kSc, opt)) {
      EXPECT_LE(h.score, exact) << "seed " << seed;
      // Reported segment really scores what it claims (ungapped).
      Score check = 0;
      for (std::size_t t = 0; t < h.end.i - h.begin.i + 1; ++t) {
        check += kSc.substitution(db[h.begin.i - 1 + t], q[h.begin.j - 1 + t]);
      }
      EXPECT_EQ(check, h.score) << "seed " << seed;
    }
  }
}

TEST(SeedExtend, RecallDegradesWithDivergence) {
  // The paper's §1 point: the heuristic misses what exact SW finds once
  // divergence breaks the seeds. At 2% a 60-mer almost surely keeps an
  // 11-mer intact; at 35% it almost surely does not.
  std::size_t found_low = 0;
  std::size_t found_high = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    seq::RandomSequenceGenerator gen(300 + seed);
    const seq::Sequence q = gen.uniform(seq::dna(), 60);
    for (const double rate : {0.02, 0.35}) {
      seq::Sequence db = gen.uniform(seq::dna(), 2000);
      const std::size_t at = db.size();
      db.append(seq::point_mutate(q, rate, gen.engine()));
      db.append(gen.uniform(seq::dna(), 2000));
      SeedExtendOptions opt;
      bool on_plant = false;
      for (const SeedHit& h : seed_extend_search(db, q, kSc, opt)) {
        if (h.begin.i >= at - 5 && h.end.i <= at + 70 && h.score >= 20) on_plant = true;
      }
      (rate < 0.1 ? found_low : found_high) += on_plant ? 1 : 0;
    }
  }
  EXPECT_GE(found_low, 9u);   // near-perfect recall at 2%
  EXPECT_LE(found_high, 4u);  // mostly blind at 35%
}

TEST(SeedExtend, MaxHitsCapsOutput) {
  seq::RandomSequenceGenerator gen(7);
  const seq::Sequence q = gen.uniform(seq::dna(), 40);
  seq::Sequence db = gen.uniform(seq::dna(), 500);
  for (int rep = 0; rep < 6; ++rep) {
    db.append(q);
    db.append(gen.uniform(seq::dna(), 500));
  }
  SeedExtendOptions opt;
  opt.max_hits = 3;
  EXPECT_EQ(seed_extend_search(db, q, kSc, opt).size(), 3u);
}

TEST(SeedExtend, HitsAreSortedBestFirst) {
  seq::RandomSequenceGenerator gen(8);
  const seq::Sequence q = gen.uniform(seq::dna(), 50);
  seq::Sequence db = gen.uniform(seq::dna(), 1000);
  db.append(seq::point_mutate(q, 0.02, gen.engine()));
  db.append(gen.uniform(seq::dna(), 1000));
  db.append(seq::point_mutate(q, 0.10, gen.engine()));
  db.append(gen.uniform(seq::dna(), 1000));
  const auto hits = seed_extend_search(db, q, kSc, SeedExtendOptions{});
  for (std::size_t k = 1; k < hits.size(); ++k) {
    EXPECT_GE(hits[k - 1].score, hits[k].score);
  }
}

TEST(SeedExtend, EmptyWhenNothingSeeds) {
  // All-A query vs all-T database: no shared k-mer.
  const seq::Sequence q = seq::Sequence::dna(std::string(40, 'A'));
  const seq::Sequence db = seq::Sequence::dna(std::string(500, 'T'));
  EXPECT_TRUE(seed_extend_search(db, q, kSc, SeedExtendOptions{}).empty());
}

TEST(SeedExtend, RepeatedSeedsOnOneDiagonalExtendOnce) {
  // Two homology islands on the SAME diagonal, separated by a mismatch
  // run long enough (20 > x_drop 16) that one extension cannot bridge
  // them. The first island scores higher, so the duplicate-diagonal bug
  // (skip tested against the BEST hit's span instead of the LAST-extended
  // span) made every seed of the second island re-run the extension.
  seq::RandomSequenceGenerator gen(4242);
  const seq::Sequence s1 = gen.uniform(seq::dna(), 30);
  const seq::Sequence s2 = gen.uniform(seq::dna(), 20);
  seq::Sequence query = s1;
  query.append(seq::Sequence::dna(std::string(20, 'A')));
  query.append(s2);
  seq::Sequence db = s1;
  db.append(seq::Sequence::dna(std::string(20, 'C')));  // all-mismatch spacer
  db.append(s2);

  SeedExtendStats stats;
  const auto hits = seed_extend_search(db, query, kSc, SeedExtendOptions{}, &stats);
  // s1 contributes 20 seeds, s2 contributes 10 — all on diagonal 0.
  EXPECT_EQ(stats.seed_hits, 30u);
  EXPECT_EQ(stats.diagonals, 1u);
  // One extension per island, not one per seed: the fix's contract.
  EXPECT_EQ(stats.extensions, 2u);
  // The reported hit is still the best island.
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].score, 30);
}

TEST(SeedExtend, AscendingIslandScoresStillExtendOncePerIsland) {
  // Mirror image: the LOWER-scoring island comes first. The old code
  // happened to handle this order correctly (best == last), so the pair
  // of tests pins the span semantics from both sides.
  seq::RandomSequenceGenerator gen(4343);
  const seq::Sequence s1 = gen.uniform(seq::dna(), 20);
  const seq::Sequence s2 = gen.uniform(seq::dna(), 30);
  seq::Sequence query = s1;
  query.append(seq::Sequence::dna(std::string(20, 'A')));
  query.append(s2);
  seq::Sequence db = s1;
  db.append(seq::Sequence::dna(std::string(20, 'C')));
  db.append(s2);

  SeedExtendStats stats;
  const auto hits = seed_extend_search(db, query, kSc, SeedExtendOptions{}, &stats);
  EXPECT_EQ(stats.seed_hits, 30u);
  EXPECT_EQ(stats.diagonals, 1u);
  EXPECT_EQ(stats.extensions, 2u);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].score, 30);
}

TEST(SeedExtend, Validation) {
  SeedExtendOptions bad;
  bad.k = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = SeedExtendOptions{};
  bad.x_drop = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = SeedExtendOptions{};
  bad.max_hits = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  // Index/options k mismatch.
  const seq::Sequence q = seq::Sequence::dna("ACGTACGTACGT");
  const KmerIndex idx(q, 4);
  SeedExtendOptions opt;
  opt.k = 5;
  EXPECT_THROW((void)seed_extend_search(q, q, idx, kSc, opt), std::invalid_argument);
}

}  // namespace
