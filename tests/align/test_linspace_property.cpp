// Property suite for the linear-space global aligners: on random pairs,
// hirschberg_cigar must reproduce the full-DP nw_score and myers_miller
// the full-DP gotoh_global_score — with every transcript replayed against
// the residues (score equality AND full consumption), so a structurally
// broken CIGAR cannot pass on score luck alone.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "align/cigar.hpp"
#include "align/gotoh.hpp"
#include "align/hirschberg.hpp"
#include "align/myers_miller.hpp"
#include "align/nw.hpp"
#include "align/scoring.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"

namespace {

using namespace swr;
using namespace swr::align;

struct Pair {
  seq::Sequence a;
  seq::Sequence b;
};

// Mixed workload: unrelated uniform pairs, mutated near-pairs, skewed
// lengths, and the degenerate empty-vs-something shapes.
std::vector<Pair> random_pairs(std::uint64_t seed, const seq::Alphabet& ab) {
  seq::RandomSequenceGenerator gen(seed);
  std::mt19937_64& rng = gen.engine();
  std::uniform_int_distribution<std::size_t> len(0, 70);
  std::vector<Pair> pairs;
  for (int iter = 0; iter < 30; ++iter) {
    Pair p;
    p.a = gen.uniform(ab, len(rng));
    switch (iter % 3) {
      case 0:  // unrelated
        p.b = gen.uniform(ab, len(rng));
        break;
      case 1:  // homologous
        p.b = seq::point_mutate(p.a, 0.05 + 0.02 * (iter % 5), rng);
        break;
      default:  // heavily skewed lengths
        p.b = gen.uniform(ab, p.a.size() / 4);
        break;
    }
    pairs.push_back(std::move(p));
  }
  pairs.push_back({gen.uniform(ab, 0), gen.uniform(ab, 12)});
  pairs.push_back({gen.uniform(ab, 12), gen.uniform(ab, 0)});
  pairs.push_back({gen.uniform(ab, 0), gen.uniform(ab, 0)});
  return pairs;
}

void check_linear(const Pair& p, const Scoring& sc, const std::string& what) {
  const Score want = nw_score(p.a.codes(), p.b.codes(), sc);
  const Cigar cg = hirschberg_cigar(p.a.codes(), p.b.codes(), sc);
  // Replay: the transcript scores identically AND consumes both sequences
  // entirely (global semantics).
  EXPECT_EQ(score_of(cg, p.a.codes(), p.b.codes(), sc), want) << what;
  EXPECT_EQ(cg.consumed_i(), p.a.size()) << what;
  EXPECT_EQ(cg.consumed_j(), p.b.size()) << what;
}

void check_affine(const Pair& p, const AffineScoring& sc, const std::string& what) {
  const Score want = gotoh_global_score(p.a.codes(), p.b.codes(), sc);
  const Cigar cg = myers_miller_cigar(p.a.codes(), p.b.codes(), sc);
  EXPECT_EQ(affine_score_of(cg, p.a.codes(), p.b.codes(), sc), want) << what;
  EXPECT_EQ(cg.consumed_i(), p.a.size()) << what;
  EXPECT_EQ(cg.consumed_j(), p.b.size()) << what;
}

TEST(LinSpaceProperty, HirschbergMatchesFullDpOnDna) {
  const Scoring sc;  // the paper's +1/-1/-2
  const std::vector<Pair> pairs = random_pairs(20250801, seq::dna());
  for (std::size_t n = 0; n < pairs.size(); ++n) {
    check_linear(pairs[n], sc, "dna pair " + std::to_string(n));
  }
}

TEST(LinSpaceProperty, HirschbergMatchesFullDpOnBlosumProtein) {
  Scoring sc;
  sc.matrix = &blosum62();
  sc.gap = -6;
  const std::vector<Pair> pairs = random_pairs(20250802, seq::protein());
  for (std::size_t n = 0; n < pairs.size(); ++n) {
    check_linear(pairs[n], sc, "protein pair " + std::to_string(n));
  }
}

TEST(LinSpaceProperty, MyersMillerMatchesGotohOnDna) {
  const AffineScoring sc;  // match 2 / mismatch -1 / open -2 / extend -1
  const std::vector<Pair> pairs = random_pairs(20250803, seq::dna());
  for (std::size_t n = 0; n < pairs.size(); ++n) {
    check_affine(pairs[n], sc, "affine dna pair " + std::to_string(n));
  }
}

TEST(LinSpaceProperty, MyersMillerMatchesGotohOnBlosumProtein) {
  AffineScoring sc;
  sc.matrix = &blosum62();
  sc.gap_open = -11;
  sc.gap_extend = -1;
  const std::vector<Pair> pairs = random_pairs(20250804, seq::protein());
  for (std::size_t n = 0; n < pairs.size(); ++n) {
    check_affine(pairs[n], sc, "affine protein pair " + std::to_string(n));
  }
}

TEST(LinSpaceProperty, GapHeavyScoringStressesTheSplitRecursion) {
  // Expensive gaps force long diagonal runs; cheap gaps force gap-heavy
  // transcripts — both must survive the divide-and-conquer split choice.
  const std::vector<Pair> pairs = random_pairs(20250805, seq::dna());
  for (const Score gap : {Score{-1}, Score{-5}}) {
    Scoring sc;
    sc.gap = gap;
    for (std::size_t n = 0; n < pairs.size(); ++n) {
      check_linear(pairs[n], sc, "gap " + std::to_string(gap) + " pair " + std::to_string(n));
    }
  }
}

}  // namespace
