// Eight-lane SWAR primitives + the 8-bit anti-diagonal kernel, including
// the saturation-detect / lazy 16-bit re-run boundary.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "align/sw_antidiag8.hpp"
#include "align/sw_linear.hpp"
#include "align/swar8.hpp"
#include "seq/workload.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::align;
using namespace swr::align::swar;

TEST(Swar8, BroadcastAndLanes) {
  const std::uint64_t v = broadcast8(0xAB);
  for (unsigned k = 0; k < 8; ++k) EXPECT_EQ(lane8(v, k), 0xAB);
  const std::uint64_t w = set_lane8(v, 5, 0xFF);
  EXPECT_EQ(lane8(w, 5), 0xFF);
  EXPECT_EQ(lane8(w, 4), 0xAB);
}

TEST(Swar8, RandomizedFullRangeLaneOpsMatchScalar) {
  // Property check over the FULL 0..255 range — unlike the 16-bit lanes
  // there is no no-high-bit precondition here.
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<std::uint32_t> val(0, 0xFF);
  for (int iter = 0; iter < 4000; ++iter) {
    std::uint64_t x = 0;
    std::uint64_t y = 0;
    std::uint8_t xs[8];
    std::uint8_t ys[8];
    for (unsigned k = 0; k < 8; ++k) {
      xs[k] = static_cast<std::uint8_t>(val(rng));
      ys[k] = static_cast<std::uint8_t>(val(rng));
      x = set_lane8(x, k, xs[k]);
      y = set_lane8(y, k, ys[k]);
    }
    std::uint64_t ovf = 0;
    const std::uint64_t wrap = add8_wrap(x, y);
    const std::uint64_t sat = add8_sat(x, y, ovf);
    const std::uint64_t mx = max8(x, y);
    const std::uint64_t ss = sats8(x, y);
    const std::uint64_t ge = ge_mask8(x, y);
    for (unsigned k = 0; k < 8; ++k) {
      const int sum = xs[k] + ys[k];
      EXPECT_EQ(lane8(wrap, k), static_cast<std::uint8_t>(sum));
      EXPECT_EQ(lane8(sat, k), sum > 0xFF ? 0xFF : sum);
      EXPECT_EQ((ovf >> (8 * k)) & 0x80, sum > 0xFF ? 0x80u : 0u) << "overflow lane " << k;
      EXPECT_EQ(lane8(mx, k), std::max(xs[k], ys[k]));
      EXPECT_EQ(lane8(ss, k), xs[k] >= ys[k] ? xs[k] - ys[k] : 0);
      EXPECT_EQ(lane8(ge, k), xs[k] >= ys[k] ? 0xFF : 0x00);
    }
  }
}

TEST(Swar8, EqMaskOnSmallValues) {
  std::uint64_t x = 0;
  std::uint64_t y = 0;
  for (unsigned k = 0; k < 8; ++k) {
    x = set_lane8(x, k, static_cast<std::uint8_t>(k));
    y = set_lane8(y, k, static_cast<std::uint8_t>(k % 2 == 0 ? k : k + 1));
  }
  const std::uint64_t eq = eq_mask8_small(x, y);
  for (unsigned k = 0; k < 8; ++k) {
    EXPECT_EQ(lane8(eq, k), k % 2 == 0 ? 0xFF : 0x00);
  }
}

TEST(Swar8, HmaxFindsLaneMaximum) {
  std::uint64_t v = 0;
  v = set_lane8(v, 0, 10);
  v = set_lane8(v, 3, 254);
  v = set_lane8(v, 7, 253);
  EXPECT_EQ(hmax8(v), 254);
  EXPECT_EQ(hmax8(0), 0);
}

// ---- the 8-bit anti-diagonal kernel -------------------------------------

const Scoring kSc = Scoring::paper_default();

TEST(AntiDiag8, Figure2Example) {
  const seq::Sequence s = seq::Sequence::dna("TAGTGACT");
  const seq::Sequence t = seq::Sequence::dna("TATGGAC");
  EXPECT_EQ(sw_linear_antidiag8(s, t, kSc), sw_linear(s, t, kSc));
}

class AntiDiag8Equivalence
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t, int>> {};

TEST_P(AntiDiag8Equivalence, MatchesReferenceKernel) {
  const auto [m, n, seed, scheme] = GetParam();
  Scoring sc = kSc;
  if (scheme == 1) {
    sc.match = 4;
    sc.mismatch = -3;
    sc.gap = -5;
  }
  const seq::Sequence a = swr::test::random_dna(m, seed * 3 + 177);
  const seq::Sequence b = swr::test::random_dna(n, seed * 5 + 188);
  EXPECT_EQ(sw_linear_antidiag8(a, b, sc), sw_linear(a, b, sc));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AntiDiag8Equivalence,
    testing::Combine(testing::Values<std::size_t>(1, 2, 3, 7, 8, 9, 15, 16, 17, 41, 250),
                     testing::Values<std::size_t>(1, 2, 7, 8, 9, 16, 23, 180),
                     testing::Values<std::uint64_t>(1, 2), testing::Values(0, 1)));

TEST(AntiDiag8, ProteinMatrixScoring) {
  Scoring sc;
  sc.matrix = &blosum62();
  sc.gap = -8;
  const seq::Sequence a = swr::test::random_protein(130, 15);
  const seq::Sequence b = swr::test::random_protein(90, 16);
  EXPECT_EQ(sw_linear_antidiag8(a, b, sc), sw_linear(a, b, sc));
}

TEST(AntiDiag8, TieBreakCanonical) {
  const seq::Sequence a = seq::Sequence::dna("TACGTTTTTTGGA");
  const seq::Sequence b = seq::Sequence::dna("GGACG");
  const LocalScoreResult ref = sw_linear(a, b, kSc);
  ASSERT_EQ(ref.end, (Cell{13, 3}));
  EXPECT_EQ(sw_linear_antidiag8(a, b, kSc), ref);
}

TEST(AntiDiag8, OverflowBoundaryExactly255Succeeds) {
  // 255 identical bases vs themselves: the best cell is EXACTLY 255 —
  // the last representable lane value. No add ever carries (254 + 1 =
  // 255), so the 8-bit pass must succeed and be exact.
  const seq::Sequence s = seq::Sequence::dna(std::string(255, 'A'));
  Antidiag8Workspace ws;
  const auto r = sw_antidiag8_try(s.codes(), s.codes(), kSc, ws);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->score, 255);
  EXPECT_EQ(*r, sw_linear(s, s, kSc));
}

TEST(AntiDiag8, OverflowBoundaryExactly256FallsBack) {
  // One base longer: the best score is 256, one beyond the lane range.
  // The saturating add carries (255 + 1), the kernel must report overflow,
  // and the convenience wrapper must still return the exact result via the
  // 16-bit re-run.
  const seq::Sequence s = seq::Sequence::dna(std::string(256, 'A'));
  Antidiag8Workspace ws;
  EXPECT_FALSE(sw_antidiag8_try(s.codes(), s.codes(), kSc, ws).has_value());
  const LocalScoreResult ref = sw_linear(s, s, kSc);
  ASSERT_EQ(ref.score, 256);
  EXPECT_EQ(sw_linear_antidiag8(s, s, kSc), ref);
}

TEST(AntiDiag8, GuaranteedBound) {
  EXPECT_TRUE(antidiag8_guaranteed(100, 1'000'000, kSc));   // min side 100
  EXPECT_TRUE(antidiag8_guaranteed(255, 255, kSc));
  EXPECT_FALSE(antidiag8_guaranteed(256, 256, kSc));
  Scoring big = kSc;
  big.match = 300;  // constants alone exceed a lane
  EXPECT_FALSE(antidiag8_guaranteed(4, 4, big));
}

TEST(AntiDiag8, SchemeMagnitudesBeyondOneByteAreRejected) {
  Scoring sc = kSc;
  sc.match = 300;
  sc.mismatch = -1;
  Antidiag8Workspace ws;
  const seq::Sequence s = swr::test::random_dna(20, 19);
  EXPECT_FALSE(sw_antidiag8_try(s.codes(), s.codes(), sc, ws).has_value());
  EXPECT_EQ(sw_linear_antidiag8(s, s, sc), sw_linear(s, s, sc));
}

TEST(AntiDiag8, WorkspaceReuseAcrossRecordsIsExact) {
  // The scan engine reuses one workspace for every record a thread
  // claims; growing and shrinking records must not leak state.
  Antidiag8Workspace ws;
  for (const std::size_t len : {40u, 200u, 8u, 97u, 3u, 250u}) {
    const seq::Sequence a = swr::test::random_dna(len, 1000 + len);
    const seq::Sequence b = swr::test::random_dna(33, 2000 + len);
    const auto r = sw_antidiag8_try(a.codes(), b.codes(), kSc, ws);
    ASSERT_TRUE(r.has_value()) << len;
    EXPECT_EQ(*r, sw_linear(a, b, kSc)) << len;
  }
}

TEST(AntiDiag8, EmptyAndMismatch) {
  EXPECT_EQ(sw_linear_antidiag8(seq::Sequence::dna(""), seq::Sequence::dna("ACG"), kSc).score, 0);
  EXPECT_THROW(
      (void)sw_linear_antidiag8(seq::Sequence::dna("ACGT"), seq::Sequence::protein("ARND"), kSc),
      std::invalid_argument);
}

TEST(AntiDiag8, HomologPairStress) {
  seq::MutationModel mm;
  mm.substitution_rate = 0.30;  // score may or may not fit 8 bits; wrapper must be exact either way
  mm.insertion_rate = 0.05;
  mm.deletion_rate = 0.05;
  const auto pair = seq::make_homolog_pair(1500, mm, 23);
  EXPECT_EQ(sw_linear_antidiag8(pair.a, pair.b, kSc), sw_linear(pair.a, pair.b, kSc));
}

}  // namespace
