// SWAR lane primitives + the anti-diagonal kernel.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "align/sw_antidiag.hpp"
#include "align/sw_linear.hpp"
#include "align/swar.hpp"
#include "seq/workload.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::align;
using namespace swr::align::swar;

TEST(Swar, BroadcastAndLanes) {
  const std::uint64_t v = broadcast16(0x1234);
  for (unsigned k = 0; k < 4; ++k) EXPECT_EQ(lane16(v, k), 0x1234);
  const std::uint64_t w = set_lane16(v, 2, 0x7FFF);
  EXPECT_EQ(lane16(w, 2), 0x7FFF);
  EXPECT_EQ(lane16(w, 1), 0x1234);
}

TEST(Swar, RandomizedLaneOpsMatchScalar) {
  // Property check of add16/max16/sats16/ge_mask16 against per-lane scalar
  // math, under the no-high-bit invariant.
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::uint32_t> val(0, 0x3FFF);  // sums stay < 0x8000
  for (int iter = 0; iter < 2000; ++iter) {
    std::uint64_t x = 0;
    std::uint64_t y = 0;
    std::uint16_t xs[4];
    std::uint16_t ys[4];
    for (unsigned k = 0; k < 4; ++k) {
      xs[k] = static_cast<std::uint16_t>(val(rng));
      ys[k] = static_cast<std::uint16_t>(val(rng));
      x = set_lane16(x, k, xs[k]);
      y = set_lane16(y, k, ys[k]);
    }
    const std::uint64_t sum = add16(x, y);
    const std::uint64_t mx = max16(x, y);
    const std::uint64_t ss = sats16(x, y);
    const std::uint64_t ge = ge_mask16(x, y);
    for (unsigned k = 0; k < 4; ++k) {
      EXPECT_EQ(lane16(sum, k), static_cast<std::uint16_t>(xs[k] + ys[k]));
      EXPECT_EQ(lane16(mx, k), std::max(xs[k], ys[k]));
      EXPECT_EQ(lane16(ss, k), xs[k] >= ys[k] ? xs[k] - ys[k] : 0);
      EXPECT_EQ(lane16(ge, k), xs[k] >= ys[k] ? 0xFFFF : 0x0000);
    }
  }
}

TEST(Swar, HmaxFindsLaneMaximum) {
  std::uint64_t v = 0;
  v = set_lane16(v, 0, 10);
  v = set_lane16(v, 1, 500);
  v = set_lane16(v, 2, 499);
  v = set_lane16(v, 3, 3);
  EXPECT_EQ(hmax16(v), 500);
  EXPECT_EQ(hmax16(0), 0);
}

// ---- the anti-diagonal kernel ------------------------------------------

const Scoring kSc = Scoring::paper_default();

TEST(AntiDiag, Figure2Example) {
  const seq::Sequence s = seq::Sequence::dna("TAGTGACT");
  const seq::Sequence t = seq::Sequence::dna("TATGGAC");
  EXPECT_EQ(sw_linear_antidiag(s, t, kSc), sw_linear(s, t, kSc));
}

class AntiDiagEquivalence
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t, int>> {};

TEST_P(AntiDiagEquivalence, MatchesReferenceKernel) {
  const auto [m, n, seed, scheme] = GetParam();
  Scoring sc = kSc;
  if (scheme == 1) {
    sc.match = 4;
    sc.mismatch = -3;
    sc.gap = -5;
  }
  const seq::Sequence a = swr::test::random_dna(m, seed * 3 + 77);
  const seq::Sequence b = swr::test::random_dna(n, seed * 5 + 88);
  EXPECT_EQ(sw_linear_antidiag(a, b, sc), sw_linear(a, b, sc));
}

INSTANTIATE_TEST_SUITE_P(Sweep, AntiDiagEquivalence,
                         testing::Combine(testing::Values<std::size_t>(1, 2, 3, 4, 5, 8, 37, 250),
                                          testing::Values<std::size_t>(1, 2, 3, 4, 5, 9, 41, 180),
                                          testing::Values<std::uint64_t>(1, 2),
                                          testing::Values(0, 1)));

TEST(AntiDiag, ProteinMatrixScoring) {
  Scoring sc;
  sc.matrix = &blosum62();
  sc.gap = -8;
  const seq::Sequence a = swr::test::random_protein(130, 5);
  const seq::Sequence b = swr::test::random_protein(90, 6);
  EXPECT_EQ(sw_linear_antidiag(a, b, sc), sw_linear(a, b, sc));
}

TEST(AntiDiag, TieBreakCanonical) {
  // Same construction as the profiled-kernel tie test: later row, smaller
  // column must win.
  const seq::Sequence a = seq::Sequence::dna("TACGTTTTTTGGA");
  const seq::Sequence b = seq::Sequence::dna("GGACG");
  const LocalScoreResult ref = sw_linear(a, b, kSc);
  ASSERT_EQ(ref.end, (Cell{13, 3}));
  EXPECT_EQ(sw_linear_antidiag(a, b, kSc), ref);
}

TEST(AntiDiag, FallbackWhenScoreUnbounded) {
  // 40000-long identical sequences would overflow 16-bit lanes (score
  // 40000 * 1 > 0x7FFF): applicability says no, and the kernel must still
  // return the exact (scalar-fallback) result on a smaller-but-deep case.
  Scoring sc = kSc;
  sc.match = 30000;  // absurd on purpose
  sc.mismatch = -1;
  EXPECT_FALSE(antidiag_swar_applicable(10, 10, sc));
  const seq::Sequence s = swr::test::random_dna(20, 9);
  EXPECT_EQ(sw_linear_antidiag(s, s, sc), sw_linear(s, s, sc));
}

TEST(AntiDiag, ApplicabilityBound) {
  EXPECT_TRUE(antidiag_swar_applicable(100, 1'000'000, kSc));   // min side 100
  EXPECT_TRUE(antidiag_swar_applicable(30'000, 30'000, kSc));   // 30000 < 0x7FFF
  EXPECT_FALSE(antidiag_swar_applicable(40'000, 40'000, kSc));  // 40000 > 0x7FFF
}

TEST(AntiDiag, EmptyAndMismatch) {
  EXPECT_EQ(sw_linear_antidiag(seq::Sequence::dna(""), seq::Sequence::dna("ACG"), kSc).score, 0);
  EXPECT_THROW(
      (void)sw_linear_antidiag(seq::Sequence::dna("ACGT"), seq::Sequence::protein("ARND"), kSc),
      std::invalid_argument);
}

TEST(AntiDiag, HomologPairStress) {
  seq::MutationModel mm;
  mm.substitution_rate = 0.05;
  mm.insertion_rate = 0.02;
  mm.deletion_rate = 0.02;
  const auto pair = seq::make_homolog_pair(1500, mm, 17);
  EXPECT_EQ(sw_linear_antidiag(pair.a, pair.b, kSc), sw_linear(pair.a, pair.b, kSc));
}

}  // namespace
