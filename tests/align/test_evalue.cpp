#include <gtest/gtest.h>

#include <cmath>

#include "align/evalue.hpp"

namespace {

using namespace swr::align;

TEST(Karlin, ClosedFormDnaLambda) {
  // Uniform DNA, match +1 / mismatch -1:
  //   (1/4) e^L + (3/4) e^-L = 1  =>  e^L = 3  =>  L = ln 3.
  const Scoring sc = Scoring::paper_default();
  const KarlinParams p = solve_karlin_uniform(sc, 4);
  EXPECT_NEAR(p.lambda, std::log(3.0), 1e-9);
}

TEST(Karlin, ClosedFormMatchTwo) {
  // match +2 / mismatch -1: (1/4) e^{2L} + (3/4) e^{-L} = 1. Substituting
  // x = e^L: x^3 - 4x + 3 = 0 => (x-1)(x^2+x-3) = 0; the root > 1 is
  // x = (sqrt(13)-1)/2.
  Scoring sc;
  sc.match = 2;
  sc.mismatch = -1;
  sc.gap = -2;
  const KarlinParams p = solve_karlin_uniform(sc, 4);
  EXPECT_NEAR(p.lambda, std::log((std::sqrt(13.0) - 1.0) / 2.0), 1e-9);
}

TEST(Karlin, LambdaSatisfiesTheDefiningEquation) {
  Scoring sc;
  sc.matrix = &blosum62();
  sc.gap = -8;
  const KarlinParams p = solve_karlin_uniform(sc, 21);
  // Recompute the sum at the solved lambda.
  double sum = 0.0;
  for (std::size_t i = 0; i < 21; ++i) {
    for (std::size_t j = 0; j < 21; ++j) {
      sum += (1.0 / 441.0) * std::exp(p.lambda * blosum62()(static_cast<swr::seq::Code>(i),
                                                            static_cast<swr::seq::Code>(j)));
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(p.lambda, 0.0);
}

TEST(Karlin, SkewedFrequenciesShiftLambda) {
  const Scoring sc = Scoring::paper_default();
  // GC-rich background: matches are "easier" by chance on fewer letters?
  // Lambda must still solve the equation; sanity: different from uniform.
  const std::vector<double> gc_rich = {0.1, 0.4, 0.4, 0.1};
  const KarlinParams skew = solve_karlin(sc, gc_rich);
  const KarlinParams uni = solve_karlin_uniform(sc, 4);
  EXPECT_GT(skew.lambda, 0.0);
  EXPECT_NE(skew.lambda, uni.lambda);
}

TEST(Karlin, RejectsNonNegativeExpectedScore) {
  Scoring sc;
  sc.match = 3;
  sc.mismatch = 1;  // validate() would reject this too, so craft via matrix
  sc.gap = -2;
  // match=3, mismatch=1 fails Scoring::validate (mismatch must be < match
  // but positive mismatch makes expected score positive). Use a matrix.
  const SubstitutionMatrix all_positive(swr::seq::dna(), 2, 1);
  Scoring via;
  via.matrix = &all_positive;
  via.gap = -2;
  EXPECT_THROW((void)solve_karlin_uniform(via, 4), std::invalid_argument);
}

TEST(Karlin, RejectsBadFrequencies) {
  const Scoring sc = Scoring::paper_default();
  const std::vector<double> bad_sum = {0.5, 0.5, 0.5, 0.5};
  EXPECT_THROW((void)solve_karlin(sc, bad_sum), std::invalid_argument);
  const std::vector<double> negative = {1.2, -0.2, 0.0, 0.0};
  EXPECT_THROW((void)solve_karlin(sc, negative), std::invalid_argument);
  EXPECT_THROW((void)solve_karlin(sc, std::vector<double>{}), std::invalid_argument);
}

TEST(EValue, ScalesWithSearchSpaceAndScore) {
  const KarlinParams p = solve_karlin_uniform(Scoring::paper_default(), 4);
  const double e1 = e_value(30, 100, 1'000'000, p);
  // Ten times the database -> ten times the chance hits.
  EXPECT_NEAR(e_value(30, 100, 10'000'000, p) / e1, 10.0, 1e-9);
  // Higher scores are exponentially rarer.
  EXPECT_LT(e_value(40, 100, 1'000'000, p), e1 * 1e-3);
}

TEST(BitScore, MonotoneInRawScore) {
  const KarlinParams p = solve_karlin_uniform(Scoring::paper_default(), 4);
  EXPECT_LT(bit_score(10, p), bit_score(20, p));
  // ln3-scaled: 20 raw ~ 20*ln3/ln2 + const ~ 35 bits; sanity band.
  EXPECT_NEAR(bit_score(20, p), (p.lambda * 20 - std::log(p.k)) / std::log(2.0), 1e-12);
}

TEST(EValue, PlantedHitIsSignificantRandomIsNot) {
  // Interpretation check: a 90-score hit of a 100 BP query in 1 MBP is
  // overwhelming; a 15-score one is routine chance.
  const KarlinParams p = solve_karlin_uniform(Scoring::paper_default(), 4);
  EXPECT_LT(e_value(90, 100, 1'000'000, p), 1e-30);
  EXPECT_GT(e_value(12, 100, 1'000'000, p), 1.0);
}

}  // namespace
