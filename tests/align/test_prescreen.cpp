// UngappedPrescreen: the SWAR blockwise Kadane must equal a naive scalar
// reference on every diagonal, for uniform and matrix schemes alike — the
// seeded filter's recall contract stands on this kernel being exact.
#include <gtest/gtest.h>

#include <limits>

#include "align/prescreen.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using align::Score;
using align::Scoring;
using align::UngappedPrescreen;

// Direct Kadane over the diagonal overlap — the definition the kernel
// must reproduce.
Score naive_diag(const seq::Sequence& q, const seq::Sequence& rec, std::ptrdiff_t diag,
                 const Scoring& sc) {
  Score best = 0;
  Score run = 0;
  for (std::size_t t = 0;; ++t) {
    const std::ptrdiff_t qi = static_cast<std::ptrdiff_t>(t) + (diag < 0 ? -diag : 0);
    const std::ptrdiff_t ri = static_cast<std::ptrdiff_t>(t) + (diag > 0 ? diag : 0);
    if (qi >= static_cast<std::ptrdiff_t>(q.size()) ||
        ri >= static_cast<std::ptrdiff_t>(rec.size())) {
      break;
    }
    run = std::max<Score>(0, run + sc.substitution(q[static_cast<std::size_t>(qi)],
                                                   rec[static_cast<std::size_t>(ri)]));
    best = std::max(best, run);
  }
  return best;
}

void expect_all_diagonals_match(const seq::Sequence& q, const seq::Sequence& rec,
                                const Scoring& sc) {
  const UngappedPrescreen ps(q, sc);
  const auto lo = -static_cast<std::ptrdiff_t>(q.size()) - 2;
  const auto hi = static_cast<std::ptrdiff_t>(rec.size()) + 2;
  for (std::ptrdiff_t d = lo; d <= hi; ++d) {
    EXPECT_EQ(ps.best_on_diagonal(rec.codes(), d), naive_diag(q, rec, d, sc)) << "diag " << d;
  }
}

TEST(Prescreen, SwarMatchesNaiveOnEveryDiagonal) {
  // Odd lengths so the 8-wide blocks leave scalar tails on most diagonals.
  const seq::Sequence q = test::random_dna(57, 11);
  const seq::Sequence rec = test::random_dna(91, 22);
  const Scoring sc = Scoring::paper_default();
  EXPECT_TRUE(UngappedPrescreen(q, sc).swar());
  expect_all_diagonals_match(q, rec, sc);
}

TEST(Prescreen, SwarMatchesNaiveAcrossSchemes) {
  const seq::Sequence q = test::random_dna(40, 33);
  const seq::Sequence rec = test::random_dna(64, 44);
  for (const auto [match, mismatch] : {std::pair{1, -1}, {2, -3}, {5, -4}}) {
    Scoring sc;
    sc.match = match;
    sc.mismatch = mismatch;
    expect_all_diagonals_match(q, rec, sc);
  }
}

TEST(Prescreen, MatrixPathMatchesNaive) {
  const seq::Sequence q = test::random_protein(45, 55);
  const seq::Sequence rec = test::random_protein(70, 66);
  Scoring sc;
  sc.matrix = &align::blosum62();
  EXPECT_FALSE(UngappedPrescreen(q, sc).swar());
  expect_all_diagonals_match(q, rec, sc);
}

TEST(Prescreen, UniformMatrixEqualsSwarPath) {
  // A uniform scheme expressed as a matrix forces the scalar path; both
  // paths must report the same score everywhere.
  const seq::Sequence q = test::random_dna(50, 77);
  const seq::Sequence rec = test::random_dna(80, 88);
  Scoring uniform;
  uniform.match = 2;
  uniform.mismatch = -3;
  const align::SubstitutionMatrix m(seq::dna(), 2, -3);
  Scoring matrix = uniform;
  matrix.matrix = &m;
  const UngappedPrescreen fast(q, uniform);
  const UngappedPrescreen slow(q, matrix);
  EXPECT_TRUE(fast.swar());
  EXPECT_FALSE(slow.swar());
  for (std::ptrdiff_t d = -static_cast<std::ptrdiff_t>(q.size());
       d <= static_cast<std::ptrdiff_t>(rec.size()); ++d) {
    EXPECT_EQ(fast.best_on_diagonal(rec.codes(), d), slow.best_on_diagonal(rec.codes(), d))
        << "diag " << d;
  }
}

TEST(Prescreen, PerfectDiagonalScoresFullLength) {
  const seq::Sequence q = test::random_dna(37, 99);
  const UngappedPrescreen ps(q, Scoring::paper_default());
  EXPECT_EQ(ps.best_on_diagonal(q.codes(), 0), static_cast<Score>(q.size()));
}

TEST(Prescreen, StopAtReturnsEarlyWithThresholdMet) {
  const seq::Sequence q = test::random_dna(64, 123);
  const UngappedPrescreen ps(q, Scoring::paper_default());
  // Full self-match scores 64; any stop_at below that must still report a
  // value that clears the bar.
  for (const Score bar : {1, 5, 30, 64}) {
    EXPECT_GE(ps.best_on_diagonal(q.codes(), 0, bar), bar);
  }
  // An unreachable bar degrades to the exact best.
  EXPECT_EQ(ps.best_on_diagonal(q.codes(), 0, std::numeric_limits<Score>::max()),
            static_cast<Score>(q.size()));
}

TEST(Prescreen, OutOfRangeDiagonalsScoreZero) {
  const seq::Sequence q = test::random_dna(20, 7);
  const seq::Sequence rec = test::random_dna(30, 8);
  const UngappedPrescreen ps(q, Scoring::paper_default());
  EXPECT_EQ(ps.best_on_diagonal(rec.codes(), static_cast<std::ptrdiff_t>(rec.size())), 0);
  EXPECT_EQ(ps.best_on_diagonal(rec.codes(), -static_cast<std::ptrdiff_t>(q.size())), 0);
  EXPECT_EQ(ps.best_on_diagonal({}, 0), 0);  // empty record
}

}  // namespace
