#include <gtest/gtest.h>

#include <tuple>

#include "align/local_linear.hpp"
#include "align/sw_full.hpp"
#include "align/sw_linear.hpp"
#include "seq/workload.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::align;

const Scoring kSc = Scoring::paper_default();

TEST(LocalLinear, Figure2Example) {
  const seq::Sequence s = seq::Sequence::dna("TATGGAC");
  const seq::Sequence t = seq::Sequence::dna("TAGTGACT");
  const LocalAlignment lin = local_align_linear(s, t, kSc);
  const LocalAlignment full = sw_align(s, t, kSc);
  EXPECT_EQ(lin.score, full.score);
  EXPECT_EQ(lin.begin, full.begin);
  EXPECT_EQ(lin.end, full.end);
  EXPECT_EQ(lin.cigar, full.cigar);
}

TEST(LocalLinear, NoPositiveAlignment) {
  const LocalAlignment al =
      local_align_linear(seq::Sequence::dna("AAAA"), seq::Sequence::dna("TTTT"), kSc);
  EXPECT_EQ(al.score, 0);
  EXPECT_TRUE(al.cigar.empty());
}

// Core correctness property of the whole §2.3 recipe: same score as the
// full-matrix oracle, transcript really scores that much, window bounds
// consistent. (The transcript may legitimately differ from the oracle's
// when co-optimal alignments exist.)
class LocalLinearProperty
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(LocalLinearProperty, MatchesOracleScore) {
  const auto [m, n, seed] = GetParam();
  const seq::Sequence a = swr::test::random_dna(m, seed * 31 + 1);
  const seq::Sequence b = swr::test::random_dna(n, seed * 37 + 2);
  const LocalAlignment lin = local_align_linear(a, b, kSc);
  const LocalAlignment full = sw_align(a, b, kSc);
  ASSERT_EQ(lin.score, full.score);
  if (lin.score > 0) {
    EXPECT_EQ(score_of(lin.cigar, a, b, lin.begin, kSc), lin.score);
    EXPECT_EQ(lin.begin.i + lin.cigar.consumed_i() - 1, lin.end.i);
    EXPECT_EQ(lin.begin.j + lin.cigar.consumed_j() - 1, lin.end.j);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LocalLinearProperty,
                         testing::Combine(testing::Values<std::size_t>(1, 5, 30, 90, 160),
                                          testing::Values<std::size_t>(1, 8, 40, 120),
                                          testing::Values<std::uint64_t>(1, 2, 3, 4)));

TEST(LocalLinear, HomologPairRecoversAlignment) {
  seq::MutationModel mm;
  mm.substitution_rate = 0.04;
  mm.insertion_rate = 0.02;
  mm.deletion_rate = 0.02;
  const auto pair = seq::make_homolog_pair(800, mm, 55);
  const LocalAlignment lin = local_align_linear(pair.a, pair.b, kSc);
  const LocalAlignment full = sw_align(pair.a, pair.b, kSc);
  EXPECT_EQ(lin.score, full.score);
  EXPECT_GT(cigar_identity(lin.cigar), 0.85);
}

TEST(LocalLinear, CustomPassEngineIsUsed) {
  // Plug a counting wrapper as the pass engine; the pipeline must call it
  // exactly twice (forward + reverse).
  int calls = 0;
  const ScorePassFn pass = [&calls](const seq::Sequence& x, const seq::Sequence& y,
                                    const Scoring& s) {
    ++calls;
    return sw_linear(x, y, s);
  };
  const seq::Sequence a = swr::test::random_dna(64, 91);
  const seq::Sequence b = swr::test::random_dna(64, 92);
  const LocalAlignment lin = local_align_linear(a, b, kSc, pass);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(lin.score, sw_align(a, b, kSc).score);
}

TEST(AnchoredBestEnd, FindsAnchoredOptimum) {
  //     b: A C G T
  // a = ACGT; anchored at (1,1) the best end is the full diagonal.
  const seq::Sequence s = seq::Sequence::dna("ACGT");
  const LocalScoreResult r = anchored_best_end(s, s, Cell{1, 1}, 4, 4, kSc);
  EXPECT_EQ(r.score, 4);
  EXPECT_EQ(r.end, (Cell{4, 4}));
}

TEST(AnchoredBestEnd, AnchorForcesStart) {
  // Anchoring at (2,1) on mismatching first bases: best path must start
  // with a[2], not restart elsewhere.
  const seq::Sequence a = seq::Sequence::dna("TACG");
  const seq::Sequence b = seq::Sequence::dna("ACGT");
  const LocalScoreResult r = anchored_best_end(a, b, Cell{2, 1}, 4, 4, kSc);
  EXPECT_EQ(r.score, 3);  // ACG aligned
  EXPECT_EQ(r.end, (Cell{4, 3}));
}

TEST(AnchoredBestEnd, RejectsBadWindows) {
  const seq::Sequence s = seq::Sequence::dna("ACGT");
  EXPECT_THROW((void)anchored_best_end(s, s, Cell{0, 1}, 4, 4, kSc), std::invalid_argument);
  EXPECT_THROW((void)anchored_best_end(s, s, Cell{3, 1}, 2, 4, kSc), std::invalid_argument);
  EXPECT_THROW((void)anchored_best_end(s, s, Cell{1, 1}, 5, 4, kSc), std::invalid_argument);
}

TEST(LocalLinear, AlphabetMismatchRejected) {
  EXPECT_THROW(
      (void)local_align_linear(seq::Sequence::dna("ACGT"), seq::Sequence::protein("ARND"), kSc),
      std::invalid_argument);
}

}  // namespace
