// banded_nw_align: restricted-memory global retrieval (Z-align phase 4).
#include <gtest/gtest.h>

#include "align/banded.hpp"
#include "align/nw.hpp"
#include "seq/workload.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::align;

const Scoring kSc = Scoring::paper_default();

TEST(BandedNwAlign, FullBandReproducesNw) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const seq::Sequence a = swr::test::random_dna(40 + 3 * seed, 600 + seed);
    const seq::Sequence b = swr::test::random_dna(50, 700 + seed);
    const LocalAlignment exact = nw_align(a, b, kSc);
    const LocalAlignment banded =
        banded_nw_align(a.codes(), b.codes(), a.size() + b.size(), kSc);
    EXPECT_EQ(banded.score, exact.score) << "seed " << seed;
    EXPECT_EQ(score_of(banded.cigar, a, b, Cell{1, 1}, kSc), exact.score) << "seed " << seed;
    EXPECT_EQ(banded.cigar.consumed_i(), a.size());
    EXPECT_EQ(banded.cigar.consumed_j(), b.size());
  }
}

TEST(BandedNwAlign, SufficientBandIsExactOnHomologs) {
  seq::MutationModel mm;
  mm.substitution_rate = 0.05;
  mm.insertion_rate = 0.02;
  mm.deletion_rate = 0.02;
  const auto pair = seq::make_homolog_pair(800, mm, 21);
  const LocalAlignment exact = nw_align(pair.a, pair.b, kSc);
  const std::size_t band = required_band(exact.cigar, Cell{1, 1}) + 1;
  const LocalAlignment banded = banded_nw_align(pair.a.codes(), pair.b.codes(), band, kSc);
  EXPECT_EQ(banded.score, exact.score);
  EXPECT_EQ(score_of(banded.cigar, pair.a, pair.b, Cell{1, 1}, kSc), exact.score);
  // Memory: far below the full matrix.
  EXPECT_LT(banded_cells(pair.a.size(), band), pair.a.size() * pair.b.size() / 4);
}

TEST(BandedNwAlign, TooSmallBandForLengthDiffRejected) {
  const seq::Sequence a = swr::test::random_dna(10, 1);
  const seq::Sequence b = swr::test::random_dna(30, 2);
  EXPECT_THROW((void)banded_nw_align(a.codes(), b.codes(), 10, kSc), std::invalid_argument);
}

TEST(BandedNwAlign, NarrowBandScoreIsLowerBound) {
  const seq::Sequence a = swr::test::random_dna(60, 5);
  const seq::Sequence b = swr::test::random_dna(60, 6);
  const LocalAlignment narrow = banded_nw_align(a.codes(), b.codes(), 2, kSc);
  EXPECT_LE(narrow.score, nw_score(a.codes(), b.codes(), kSc));
  // Whatever path it found must still be a valid transcript of that score.
  EXPECT_EQ(score_of(narrow.cigar, a, b, Cell{1, 1}, kSc), narrow.score);
}

TEST(BandedNwAlign, EmptyInputs) {
  const seq::Sequence e = seq::Sequence::dna("");
  const seq::Sequence s = seq::Sequence::dna("ACG");
  const LocalAlignment both = banded_nw_align(e.codes(), e.codes(), 0, kSc);
  EXPECT_EQ(both.score, 0);
  EXPECT_TRUE(both.cigar.empty());
  const LocalAlignment left = banded_nw_align(e.codes(), s.codes(), 3, kSc);
  EXPECT_EQ(left.score, -6);
  EXPECT_EQ(left.cigar.to_string(), "3I");
}

TEST(BandedCells, Formula) {
  EXPECT_EQ(banded_cells(100, 10), 101u * 21u);
  EXPECT_EQ(banded_cells(0, 0), 1u);
}

}  // namespace
