#include <gtest/gtest.h>

#include "hw/sram.hpp"

namespace {

using swr::hw::Sram;

TEST(Sram, AllocateTracksUsage) {
  Sram s(1024);
  EXPECT_EQ(s.capacity_bytes(), 1024u);
  const std::size_t a = s.allocate(100, "db");
  EXPECT_EQ(a, 0u);
  const std::size_t b = s.allocate(200, "boundary");
  EXPECT_EQ(b, 100u);
  EXPECT_EQ(s.used_bytes(), 300u);
  EXPECT_EQ(s.free_bytes(), 724u);
}

TEST(Sram, AllocateOverflowNamesTheRegion) {
  Sram s(64);
  try {
    (void)s.allocate(100, "database");
    FAIL() << "expected length_error";
  } catch (const std::length_error& e) {
    EXPECT_NE(std::string(e.what()).find("database"), std::string::npos);
  }
}

TEST(Sram, ZeroCapacityRejected) { EXPECT_THROW(Sram(0), std::invalid_argument); }

TEST(Sram, ByteReadWriteRoundTrip) {
  Sram s(16);
  (void)s.allocate(8, "r");
  s.write8(3, 0xAB);
  EXPECT_EQ(s.read8(3), 0xAB);
  EXPECT_EQ(s.read8(0), 0);  // zero-initialised
}

TEST(Sram, Word32RoundTripIncludingNegatives) {
  Sram s(16);
  (void)s.allocate(8, "r");
  s.write32(0, 0xDEADBEEF);
  EXPECT_EQ(s.read32(0), 0xDEADBEEFu);
  const std::int32_t neg = -12345;
  s.write32(4, static_cast<std::uint32_t>(neg));
  EXPECT_EQ(static_cast<std::int32_t>(s.read32(4)), neg);
}

TEST(Sram, OutOfBoundsAccessThrows) {
  Sram s(16);
  (void)s.allocate(4, "r");
  EXPECT_THROW((void)s.read8(4), std::out_of_range);
  EXPECT_THROW(s.write8(4, 1), std::out_of_range);
  EXPECT_THROW((void)s.read32(1), std::out_of_range);  // crosses the end
  EXPECT_THROW(s.write32(2, 0), std::out_of_range);
}

TEST(Sram, TrafficCountersAccumulateAndClear) {
  Sram s(16);
  (void)s.allocate(8, "r");
  s.write8(0, 1);
  s.write32(4, 2);
  (void)s.read8(0);
  (void)s.read32(4);
  EXPECT_EQ(s.write_count(), 2u);
  EXPECT_EQ(s.read_count(), 2u);
  s.clear();
  EXPECT_EQ(s.used_bytes(), 0u);
  EXPECT_EQ(s.read_count(), 0u);
  EXPECT_EQ(s.write_count(), 0u);
}

}  // namespace
