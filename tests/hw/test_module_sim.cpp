#include <gtest/gtest.h>

#include "hw/module.hpp"
#include "hw/simulator.hpp"

namespace {

using namespace swr::hw;

// A 2-stage shift register: out follows in with 2 cycles of latency.
class Shifter final : public Module {
 public:
  Shifter() : Module("shifter") {}

  void drive(int v) { in_ = v; }
  [[nodiscard]] int out() const { return s2_.get(); }

  void evaluate() override {
    s1_.set_next(in_);
    s2_.set_next(s1_.get());
  }
  void commit() override {
    s1_.commit();
    s2_.commit();
  }
  void reset() override {
    s1_.reset();
    s2_.reset();
  }

 private:
  int in_ = 0;
  Reg<int> s1_{0};
  Reg<int> s2_{0};
};

TEST(Reg, TwoPhaseSemantics) {
  Reg<int> r{7};
  EXPECT_EQ(r.get(), 7);
  r.set_next(9);
  EXPECT_EQ(r.get(), 7);  // not visible before commit
  r.commit();
  EXPECT_EQ(r.get(), 9);
  r.reset();
  EXPECT_EQ(r.get(), 7);
}

TEST(Simulator, StepAdvancesCycleAndState) {
  Shifter sh;
  Simulator sim;
  sim.add(&sh);
  sh.drive(5);
  sim.step();
  EXPECT_EQ(sim.cycle(), 1u);
  EXPECT_EQ(sh.out(), 0);  // latency 2
  sim.step();
  EXPECT_EQ(sh.out(), 5);
}

TEST(Simulator, RunUntilStopsOnPredicate) {
  Shifter sh;
  Simulator sim;
  sim.add(&sh);
  sh.drive(3);
  EXPECT_TRUE(sim.run_until([&] { return sh.out() == 3; }, 10));
  EXPECT_EQ(sim.cycle(), 2u);
}

TEST(Simulator, RunUntilHonoursBudget) {
  Shifter sh;
  Simulator sim;
  sim.add(&sh);
  EXPECT_FALSE(sim.run_until([&] { return sh.out() == 42; }, 5));
  EXPECT_EQ(sim.cycle(), 5u);
}

TEST(Simulator, ResetRestoresModulesAndCycle) {
  Shifter sh;
  Simulator sim;
  sim.add(&sh);
  sh.drive(1);
  sim.step();
  sim.step();
  sim.reset();
  EXPECT_EQ(sim.cycle(), 0u);
  EXPECT_EQ(sh.out(), 0);
}

TEST(Simulator, RejectsNullModuleAndPredicate) {
  Simulator sim;
  EXPECT_THROW(sim.add(nullptr), std::invalid_argument);
  EXPECT_THROW((void)sim.run_until({}, 1), std::invalid_argument);
}

TEST(Simulator, ShuffledEvaluationOrderIsEquivalent) {
  // Two chained shifters driven identically: results must match between a
  // fixed-order and a shuffled-order simulator, because two-phase modules
  // only read pre-edge state.
  const auto run = [](bool shuffle) {
    Shifter a;
    Shifter b;
    Simulator sim(shuffle, 99);
    sim.add(&a);
    sim.add(&b);
    std::vector<int> outs;
    for (int t = 0; t < 10; ++t) {
      a.drive(t);
      b.drive(a.out());
      sim.step();
      outs.push_back(b.out());
    }
    return outs;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
