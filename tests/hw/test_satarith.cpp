#include <gtest/gtest.h>

#include "hw/satarith.hpp"

namespace {

using swr::hw::SatArith;
using swr::hw::counter_bits_for;

TEST(SatArith, RangeForWidth) {
  const SatArith s16(16);
  EXPECT_EQ(s16.min(), -32768);
  EXPECT_EQ(s16.max(), 32767);
  const SatArith s12(12);
  EXPECT_EQ(s12.min(), -2048);
  EXPECT_EQ(s12.max(), 2047);
  const SatArith s32(32);
  EXPECT_EQ(s32.min(), INT32_MIN);
  EXPECT_EQ(s32.max(), INT32_MAX);
}

TEST(SatArith, RejectsBadWidths) {
  EXPECT_THROW(SatArith(1), std::invalid_argument);
  EXPECT_THROW(SatArith(33), std::invalid_argument);
}

TEST(SatArith, AddWithinRangeIsExact) {
  const SatArith s(12);
  EXPECT_EQ(s.add(100, 200), 300);
  EXPECT_EQ(s.add(-100, 50), -50);
  EXPECT_EQ(s.saturation_count(), 0u);
}

TEST(SatArith, AddSaturatesHighAndLow) {
  const SatArith s(8);  // range [-128, 127]
  EXPECT_EQ(s.add(120, 120), 127);
  EXPECT_EQ(s.add(-120, -120), -128);
  EXPECT_EQ(s.saturation_count(), 2u);
}

TEST(SatArith, SaturationCountResets) {
  const SatArith s(8);
  (void)s.add(127, 127);
  EXPECT_EQ(s.saturation_count(), 1u);
  s.reset_saturation_count();
  EXPECT_EQ(s.saturation_count(), 0u);
}

TEST(SatArith, ClampAt32BitBoundaries) {
  const SatArith s(32);
  EXPECT_EQ(s.add(INT32_MAX, 1), INT32_MAX);
  EXPECT_EQ(s.add(INT32_MIN, -1), INT32_MIN);
}

TEST(SatArith, Representable) {
  const SatArith s(8);
  EXPECT_TRUE(s.representable(127));
  EXPECT_FALSE(s.representable(128));
  EXPECT_TRUE(s.representable(-128));
  EXPECT_FALSE(s.representable(-129));
}

TEST(SatArith, SaturationOrderIndependentOfSign) {
  // Property: for any width w, add(max, x>0) == max.
  for (unsigned w = 2; w <= 16; ++w) {
    const SatArith s(w);
    EXPECT_EQ(s.add(s.max(), 1), s.max()) << "width " << w;
    EXPECT_EQ(s.add(s.min(), -1), s.min()) << "width " << w;
  }
}

TEST(CounterBits, CoversMaxValue) {
  EXPECT_EQ(counter_bits_for(0), 1u);
  EXPECT_EQ(counter_bits_for(1), 1u);
  EXPECT_EQ(counter_bits_for(2), 2u);
  EXPECT_EQ(counter_bits_for(255), 8u);
  EXPECT_EQ(counter_bits_for(256), 9u);
  EXPECT_EQ(counter_bits_for(10'000'000), 24u);
}

}  // namespace
