#include <gtest/gtest.h>

#include <sstream>

#include "hw/stats.hpp"

namespace {

using swr::hw::Stats;

TEST(Stats, AddAccumulates) {
  Stats s;
  s.add("cycles");
  s.add("cycles", 9);
  EXPECT_EQ(s.get("cycles"), 10u);
  EXPECT_EQ(s.get("missing"), 0u);
}

TEST(Stats, SetOverwrites) {
  Stats s;
  s.add("x", 5);
  s.set("x", 2);
  EXPECT_EQ(s.get("x"), 2u);
}

TEST(Stats, MergeSums) {
  Stats a;
  a.add("cells", 100);
  a.add("only_a", 1);
  Stats b;
  b.add("cells", 50);
  b.add("only_b", 2);
  a.merge(b);
  EXPECT_EQ(a.get("cells"), 150u);
  EXPECT_EQ(a.get("only_a"), 1u);
  EXPECT_EQ(a.get("only_b"), 2u);
}

TEST(Stats, DumpIsAlphabetical) {
  Stats s;
  s.add("zeta", 1);
  s.add("alpha", 2);
  std::ostringstream os;
  os << s;
  const std::string text = os.str();
  EXPECT_LT(text.find("alpha"), text.find("zeta"));
}

TEST(Stats, ClearEmpties) {
  Stats s;
  s.add("x");
  s.clear();
  EXPECT_TRUE(s.all().empty());
}

}  // namespace
