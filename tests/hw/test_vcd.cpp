#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "hw/vcd.hpp"

namespace {

using swr::hw::VcdWriter;

TEST(Vcd, HeaderListsSignals) {
  std::ostringstream out;
  VcdWriter vcd(out, "dut", "1ns");
  std::uint64_t v = 0;
  vcd.add_signal("clk", 1, [&] { return v; });
  vcd.add_signal("bus", 8, [&] { return v * 3; });
  vcd.sample(0);
  const std::string text = out.str();
  EXPECT_NE(text.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(text.find("$scope module dut $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1 ! clk $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 8 \" bus $end"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, EmitsOnlyChanges) {
  std::ostringstream out;
  VcdWriter vcd(out, "dut");
  std::uint64_t v = 0;
  vcd.add_signal("sig", 4, [&] { return v; });
  vcd.sample(0);  // initial dump
  vcd.sample(1);  // no change -> no #1 timestamp
  v = 5;
  vcd.sample(2);
  const std::string text = out.str();
  EXPECT_NE(text.find("#0"), std::string::npos);
  EXPECT_EQ(text.find("#1"), std::string::npos);
  EXPECT_NE(text.find("#2"), std::string::npos);
  EXPECT_NE(text.find("b101 !"), std::string::npos);
}

TEST(Vcd, ScalarSignalsUseCompactForm) {
  std::ostringstream out;
  VcdWriter vcd(out, "dut");
  std::uint64_t v = 1;
  vcd.add_signal("bit", 1, [&] { return v; });
  vcd.sample(0);
  EXPECT_NE(out.str().find("1!"), std::string::npos);
}

TEST(Vcd, RejectsBadUsage) {
  std::ostringstream out;
  VcdWriter vcd(out, "dut");
  EXPECT_THROW(vcd.add_signal("", 1, [] { return 0u; }), std::invalid_argument);
  EXPECT_THROW(vcd.add_signal("x", 0, [] { return 0u; }), std::invalid_argument);
  EXPECT_THROW(vcd.add_signal("x", 65, [] { return 0u; }), std::invalid_argument);
  EXPECT_THROW(vcd.add_signal("x", 1, {}), std::invalid_argument);
  vcd.add_signal("ok", 2, [] { return std::uint64_t{1}; });
  vcd.sample(5);
  EXPECT_THROW(vcd.add_signal("late", 1, [] { return 0u; }), std::logic_error);
  EXPECT_THROW(vcd.sample(5), std::logic_error);  // non-increasing time
}

TEST(Vcd, ZeroValueRendersSingleZero) {
  std::ostringstream out;
  VcdWriter vcd(out, "dut");
  vcd.add_signal("w", 8, [] { return std::uint64_t{0}; });
  vcd.sample(0);
  EXPECT_NE(out.str().find("b0 !"), std::string::npos);
}

}  // namespace
