// End-to-end smoke: the paper's figure-2 example through every layer.
#include <gtest/gtest.h>

#include "align/sw_full.hpp"
#include "align/sw_linear.hpp"
#include "core/accelerator.hpp"
#include "par/wavefront.hpp"

namespace {

using namespace swr;

TEST(Smoke, Figure2ExampleAgreesAcrossAllEngines) {
  // Paper figure 2: s = TATGGAC (columns here), t = TAGTGACT (rows here).
  const seq::Sequence query = seq::Sequence::dna("TATGGAC");
  const seq::Sequence db = seq::Sequence::dna("TAGTGACT");
  const align::Scoring sc = align::Scoring::paper_default();

  const align::LocalScoreResult full = align::sw_best(align::sw_matrix(db, query, sc));
  const align::LocalScoreResult linear = align::sw_linear(db, query, sc);
  EXPECT_EQ(full, linear);

  par::WavefrontConfig wf;
  wf.threads = 2;
  wf.row_block = 3;
  EXPECT_EQ(full, par::wavefront_sw(db, query, sc, wf));

  core::SmithWatermanAccelerator acc(core::xc2vp70(), 4, sc);
  const core::JobResult job = acc.run(query, db);
  EXPECT_EQ(full, job.best);
  EXPECT_GT(job.stats.total_cycles, 0u);
}

}  // namespace
