#include <gtest/gtest.h>

#include "align/sw_linear.hpp"
#include "host/batch.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::host;

const align::Scoring kSc = align::Scoring::paper_default();

// A small database: record 3 and 7 contain diverged copies of the query.
struct ScanFixture {
  seq::Sequence query;
  std::vector<seq::Sequence> records;

  explicit ScanFixture(std::uint64_t seed) {
    seq::RandomSequenceGenerator gen(seed);
    query = gen.uniform(seq::dna(), 48, "q");
    for (int r = 0; r < 10; ++r) {
      seq::Sequence rec = gen.uniform(seq::dna(), 300, "rec" + std::to_string(r));
      if (r == 3 || r == 7) {
        seq::Sequence hit = seq::point_mutate(query, r == 3 ? 0.02 : 0.10, gen.engine());
        seq::Sequence prefix = rec.subsequence(0, 100);
        prefix.append(hit);
        prefix.append(rec.subsequence(100, 200 - hit.size()));
        rec = std::move(prefix);
        rec.set_name("rec" + std::to_string(r));
      }
      records.push_back(std::move(rec));
    }
  }
};

TEST(Scan, FindsThePlantedRecordsInRankOrder) {
  ScanFixture fx(42);
  core::SmithWatermanAccelerator acc(core::xc2vp70(), 48, kSc);
  ScanOptions opt;
  opt.top_k = 2;
  opt.min_score = 15;
  const ScanResult r = scan_database(acc, fx.query, fx.records, opt);
  ASSERT_EQ(r.hits.size(), 2u);
  EXPECT_EQ(r.hits[0].record, 3u);  // 2% divergence beats 10%
  EXPECT_EQ(r.hits[1].record, 7u);
  EXPECT_GT(r.hits[0].result.score, r.hits[1].result.score);
  EXPECT_EQ(r.records_scanned, 10u);
}

TEST(Scan, HitsMatchPerRecordOracle) {
  ScanFixture fx(43);
  core::SmithWatermanAccelerator acc(core::xc2vp70(), 48, kSc);
  ScanOptions opt;
  opt.top_k = 10;
  const ScanResult r = scan_database(acc, fx.query, fx.records, opt);
  for (const Hit& h : r.hits) {
    EXPECT_EQ(h.result, align::sw_linear(fx.records[h.record], fx.query, kSc))
        << "record " << h.record;
  }
}

TEST(Scan, TopKBoundsAndOrdering) {
  ScanFixture fx(44);
  core::SmithWatermanAccelerator acc(core::xc2vp70(), 48, kSc);
  ScanOptions opt;
  opt.top_k = 4;
  const ScanResult r = scan_database(acc, fx.query, fx.records, opt);
  EXPECT_LE(r.hits.size(), 4u);
  for (std::size_t k = 1; k < r.hits.size(); ++k) {
    EXPECT_TRUE(hit_ranks_before(r.hits[k - 1], r.hits[k]) ||
                r.hits[k - 1].result.score == r.hits[k].result.score);
    EXPECT_GE(r.hits[k - 1].result.score, r.hits[k].result.score);
  }
}

TEST(Scan, CellAccountingSumsRecordSizes) {
  ScanFixture fx(45);
  core::SmithWatermanAccelerator acc(core::xc2vp70(), 48, kSc);
  const ScanResult r = scan_database(acc, fx.query, fx.records, ScanOptions{});
  std::uint64_t expect = 0;
  for (const seq::Sequence& rec : fx.records) {
    expect += static_cast<std::uint64_t>(rec.size()) * fx.query.size();
  }
  EXPECT_EQ(r.cell_updates, expect);
  EXPECT_GT(r.board_seconds, 0.0);
}

TEST(Scan, EmptyRecordsAreSkipped) {
  core::SmithWatermanAccelerator acc(core::xc2vp70(), 8, kSc);
  const std::vector<seq::Sequence> recs = {seq::Sequence::dna(""), seq::Sequence::dna("ACGT")};
  const ScanResult r = scan_database(acc, seq::Sequence::dna("ACGT"), recs, ScanOptions{});
  ASSERT_EQ(r.hits.size(), 1u);
  EXPECT_EQ(r.hits[0].record, 1u);
}

TEST(Scan, RetrieveHitReturnsFullAlignment) {
  ScanFixture fx(46);
  core::SmithWatermanAccelerator acc(core::xc2vp70(), 48, kSc);
  ScanOptions opt;
  opt.top_k = 1;
  const ScanResult r = scan_database(acc, fx.query, fx.records, opt);
  ASSERT_FALSE(r.hits.empty());
  const PipelineResult pr = retrieve_hit(acc, PciConfig{}, fx.query, fx.records, r.hits[0]);
  EXPECT_EQ(pr.alignment.score, r.hits[0].result.score);
  EXPECT_EQ(pr.alignment.end, r.hits[0].result.end);
  EXPECT_EQ(align::score_of(pr.alignment.cigar, fx.records[r.hits[0].record], fx.query,
                            pr.alignment.begin, kSc),
            pr.alignment.score);
}

TEST(Scan, DustFilterSuppressesRepeatHits) {
  // A poly-A-rich query "hits" a poly-A record purely by low complexity;
  // with the DUST filter on, that junk hit disappears while the real
  // planted homolog in a clean record survives.
  seq::RandomSequenceGenerator gen(64);
  seq::Sequence query = seq::Sequence::dna(std::string(30, 'A'), "polyA_query");
  query.append(gen.uniform(seq::dna(), 40));

  std::vector<seq::Sequence> records;
  records.push_back(seq::Sequence::dna(std::string(400, 'A'), "junk_polyA"));
  seq::Sequence clean = gen.uniform(seq::dna(), 300, "clean_hit");
  clean.append(seq::point_mutate(query, 0.02, gen.engine()));
  records.push_back(std::move(clean));

  core::SmithWatermanAccelerator acc(core::xc2vp70(), 50, align::Scoring::paper_default());
  ScanOptions no_filter;
  no_filter.min_score = 20;
  const ScanResult raw = scan_database(acc, query, records, no_filter);
  ASSERT_EQ(raw.hits.size(), 2u);  // the junk record scores too

  ScanOptions filtered = no_filter;
  filtered.dust_filter = true;
  filtered.dust_window = 16;  // tight windows: mask the repeat, spare the tail
  const ScanResult fr = scan_database(acc, query, records, filtered);
  ASSERT_EQ(fr.hits.size(), 1u);
  EXPECT_EQ(fr.hits[0].record, 1u);  // only the clean record survives
}

TEST(Scan, Validation) {
  core::SmithWatermanAccelerator acc(core::xc2vp70(), 8, kSc);
  const std::vector<seq::Sequence> none;
  ScanOptions bad;
  bad.top_k = 0;
  EXPECT_THROW((void)scan_database(acc, seq::Sequence::dna("AC"), none, bad),
               std::invalid_argument);
  bad = ScanOptions{};
  bad.min_score = 0;
  EXPECT_THROW((void)scan_database(acc, seq::Sequence::dna("AC"), none, bad),
               std::invalid_argument);
  const std::vector<seq::Sequence> mixed = {seq::Sequence::protein("AR")};
  EXPECT_THROW((void)scan_database(acc, seq::Sequence::dna("AC"), mixed, ScanOptions{}),
               std::invalid_argument);
  Hit h;
  h.record = 5;
  EXPECT_THROW((void)retrieve_hit(acc, PciConfig{}, seq::Sequence::dna("AC"), {}, h),
               std::invalid_argument);
}

}  // namespace
