// The complete host+board pipeline against the pure-software references.
#include <gtest/gtest.h>

#include "align/local_linear.hpp"
#include "align/sw_full.hpp"
#include "core/accelerator.hpp"
#include "host/pipeline.hpp"
#include "seq/workload.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;

const align::Scoring kSc = align::Scoring::paper_default();

TEST(HostPipeline, Figure2EndToEnd) {
  core::SmithWatermanAccelerator acc(core::xc2vp70(), 8, kSc);
  host::HostPipeline pipe(acc, host::PciConfig{});
  const seq::Sequence q = seq::Sequence::dna("TATGGAC");
  const seq::Sequence db = seq::Sequence::dna("TAGTGACT");
  const host::PipelineResult r = pipe.align(q, db);
  // Coordinates are (i = db, j = query): the GAC/GAC alignment.
  EXPECT_EQ(r.alignment.score, 3);
  EXPECT_EQ(r.alignment.begin, (align::Cell{5, 5}));
  EXPECT_EQ(r.alignment.end, (align::Cell{7, 7}));
  EXPECT_EQ(r.alignment.cigar.to_string(), "3M");
}

TEST(HostPipeline, MatchesSoftwarePipelineExactly) {
  core::SmithWatermanAccelerator acc(core::xc2vp70(), 16, kSc);
  host::HostPipeline pipe(acc, host::PciConfig{});
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const seq::Sequence q = swr::test::random_dna(40, seed);
    const seq::Sequence db = swr::test::random_dna(150, seed + 100);
    const host::PipelineResult hw = pipe.align(q, db);
    const align::LocalAlignment sw = align::local_align_linear(db, q, kSc);
    EXPECT_EQ(hw.alignment.score, sw.score) << "seed " << seed;
    EXPECT_EQ(hw.alignment.begin, sw.begin) << "seed " << seed;
    EXPECT_EQ(hw.alignment.end, sw.end) << "seed " << seed;
    EXPECT_EQ(hw.alignment.cigar, sw.cigar) << "seed " << seed;
  }
}

TEST(HostPipeline, TranscriptScoreEqualsReportedScore) {
  core::SmithWatermanAccelerator acc(core::xc2vp70(), 12, kSc);
  host::HostPipeline pipe(acc, host::PciConfig{});
  seq::PlantedWorkloadSpec spec;
  spec.query_len = 50;
  spec.database_len = 1200;
  spec.plant_offset = 600;
  spec.seed = 3;
  const seq::PlantedWorkload wl = seq::make_planted_workload(spec);
  const host::PipelineResult r = pipe.align(wl.query, wl.database);
  ASSERT_GT(r.alignment.score, 0);
  EXPECT_EQ(align::score_of(r.alignment.cigar, wl.database, wl.query, r.alignment.begin, kSc),
            r.alignment.score);
  // Alignment must land on the planted homolog.
  EXPECT_GE(r.alignment.end.i, wl.plant_begin);
  EXPECT_LE(r.alignment.end.i, wl.plant_end + 5);
}

TEST(HostPipeline, TimingAndTrafficBreakdown) {
  core::SmithWatermanAccelerator acc(core::xc2vp70(), 16, kSc);
  host::HostPipeline pipe(acc, host::PciConfig{});
  const seq::Sequence q = swr::test::random_dna(32, 11);
  const seq::Sequence db = swr::test::random_dna(400, 12);
  const host::PipelineResult r = pipe.align(q, db);
  EXPECT_GT(r.timing.fpga_seconds, 0.0);
  EXPECT_GT(r.timing.transfer_seconds, 0.0);
  EXPECT_GE(r.timing.host_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.timing.total(),
                   r.timing.fpga_seconds + r.timing.transfer_seconds + r.timing.host_seconds);
  // Sequences in, two tiny result records out.
  EXPECT_EQ(r.bytes_to_board, q.size() + db.size());
  EXPECT_EQ(r.bytes_from_board, 40u);
  EXPECT_GT(r.forward_stats.total_cycles, 0u);
  EXPECT_GT(r.reverse_stats.total_cycles, 0u);
  // Forward pass covers the whole matrix; reverse only the prefix window.
  EXPECT_GE(r.forward_stats.cell_updates, r.reverse_stats.cell_updates);
}

TEST(HostPipeline, NoHitReturnsEmptyAlignment) {
  core::SmithWatermanAccelerator acc(core::xc2vp70(), 8, kSc);
  host::HostPipeline pipe(acc, host::PciConfig{});
  const host::PipelineResult r =
      pipe.align(seq::Sequence::dna("AAAA"), seq::Sequence::dna("TTTTTTTT"));
  EXPECT_EQ(r.alignment.score, 0);
  EXPECT_TRUE(r.alignment.cigar.empty());
}

TEST(HostPipeline, AlphabetMismatchRejected) {
  core::SmithWatermanAccelerator acc(core::xc2vp70(), 8, kSc);
  host::HostPipeline pipe(acc, host::PciConfig{});
  EXPECT_THROW((void)pipe.align(seq::Sequence::dna("ACGT"), seq::Sequence::protein("ARND")),
               std::invalid_argument);
}

}  // namespace
