// The parallel sharded CPU scan engine: bit-identical output to the
// sequential accelerator scan for every thread count and SIMD policy.
#include <gtest/gtest.h>

#include <random>

#include "align/sw_linear.hpp"
#include "core/cpu_features.hpp"
#include "db/builder.hpp"
#include "db/store.hpp"
#include "host/fleet_scan.hpp"
#include "host/scan_engine.hpp"
#include "obs/metrics.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::host;

const align::Scoring kSc = align::Scoring::paper_default();

constexpr std::size_t kThreadCounts[] = {1, 2, 8};
constexpr SimdPolicy kPolicies[] = {SimdPolicy::Auto,  SimdPolicy::Scalar, SimdPolicy::Swar16,
                                    SimdPolicy::Swar8, SimdPolicy::Sse41,  SimdPolicy::Avx2};

// Whether SimdPolicy::Auto resolves to an 8-bit-leading tier on this
// host (it honours any SWR_SIMD override, like the engine itself does).
bool auto_leads_with_bytes() {
  const core::SimdIsa isa = core::auto_simd_isa();
  return isa == core::SimdIsa::Swar8 || isa == core::SimdIsa::Sse41 ||
         isa == core::SimdIsa::Avx2;
}

void expect_same_scan(const ScanResult& got, const ScanResult& want, const std::string& what) {
  ASSERT_EQ(got.hits.size(), want.hits.size()) << what;
  for (std::size_t k = 0; k < got.hits.size(); ++k) {
    EXPECT_EQ(got.hits[k].record, want.hits[k].record) << what << " hit " << k;
    EXPECT_EQ(got.hits[k].result, want.hits[k].result) << what << " hit " << k;
  }
  EXPECT_EQ(got.records_scanned, want.records_scanned) << what;
  EXPECT_EQ(got.cell_updates, want.cell_updates) << what;
}

// A randomized database with wildly varying record lengths (including
// empty records), several planted homologs, and enough records that every
// thread count actually shards.
struct RandomDb {
  seq::Sequence query;
  std::vector<seq::Sequence> records;

  explicit RandomDb(std::uint64_t seed, std::size_t n_records = 60) {
    seq::RandomSequenceGenerator gen(seed);
    std::mt19937_64 lens(seed * 31 + 5);
    std::uniform_int_distribution<std::size_t> len(0, 400);
    query = gen.uniform(seq::dna(), 50, "q");
    for (std::size_t r = 0; r < n_records; ++r) {
      seq::Sequence rec = gen.uniform(seq::dna(), len(lens), "rec" + std::to_string(r));
      if (r % 7 == 3) {
        rec.append(seq::point_mutate(query, 0.02 * static_cast<double>(r % 5 + 1), gen.engine()));
      }
      records.push_back(std::move(rec));
    }
  }
};

TEST(ScanEngine, BitIdenticalToAcceleratorScanAcrossThreadsAndPolicies) {
  for (const std::uint64_t seed : {101u, 202u}) {
    const RandomDb db(seed);
    core::SmithWatermanAccelerator acc(core::xc2vp70(), db.query.size(), kSc);
    ScanOptions opt;
    opt.top_k = 8;
    opt.min_score = 12;
    const ScanResult ref = scan_database(acc, db.query, db.records, opt);
    ASSERT_FALSE(ref.hits.empty());

    for (const std::size_t threads : kThreadCounts) {
      for (const SimdPolicy policy : kPolicies) {
        ScanOptions copt = opt;
        copt.threads = threads;
        copt.simd_policy = policy;
        const ScanResult got = scan_database_cpu(db.query, db.records, kSc, copt);
        expect_same_scan(got, ref,
                         "seed " + std::to_string(seed) + " threads " + std::to_string(threads) +
                             " policy " + std::to_string(static_cast<int>(policy)));
        EXPECT_EQ(got.board_seconds, 0.0);
      }
    }
  }
}

TEST(ScanEngine, HitsMatchPerRecordOracle) {
  const RandomDb db(7);
  ScanOptions opt;
  opt.top_k = 6;
  opt.threads = 2;
  const ScanResult r = scan_database_cpu(db.query, db.records, kSc, opt);
  for (const Hit& h : r.hits) {
    EXPECT_EQ(h.result, align::sw_linear(db.records[h.record], db.query, kSc))
        << "record " << h.record;
  }
}

TEST(ScanEngine, CellAccountingMatchesSequentialForEveryThreadCount) {
  const RandomDb db(9);
  std::uint64_t expect = 0;
  for (const seq::Sequence& rec : db.records) {
    if (rec.size() > 0) expect += static_cast<std::uint64_t>(rec.size()) * db.query.size();
  }
  for (const std::size_t threads : kThreadCounts) {
    ScanOptions opt;
    opt.threads = threads;
    const ScanResult r = scan_database_cpu(db.query, db.records, kSc, opt);
    EXPECT_EQ(r.cell_updates, expect) << threads << " threads";
    EXPECT_EQ(r.records_scanned, db.records.size());
  }
}

TEST(ScanEngine, DustFilterParityWithAcceleratorScan) {
  // Same construction as the batch-scan DUST test: junk poly-A record +
  // one clean planted homolog. Every engine/thread combination must agree.
  seq::RandomSequenceGenerator gen(64);
  seq::Sequence query = seq::Sequence::dna(std::string(30, 'A'), "polyA_query");
  query.append(gen.uniform(seq::dna(), 40));
  std::vector<seq::Sequence> records;
  records.push_back(seq::Sequence::dna(std::string(400, 'A'), "junk_polyA"));
  seq::Sequence clean = gen.uniform(seq::dna(), 300, "clean_hit");
  clean.append(seq::point_mutate(query, 0.02, gen.engine()));
  records.push_back(std::move(clean));

  ScanOptions opt;
  opt.min_score = 20;
  opt.dust_filter = true;
  opt.dust_window = 16;
  core::SmithWatermanAccelerator acc(core::xc2vp70(), query.size(), kSc);
  const ScanResult ref = scan_database(acc, query, records, opt);
  ASSERT_EQ(ref.hits.size(), 1u);
  EXPECT_EQ(ref.hits[0].record, 1u);
  for (const std::size_t threads : kThreadCounts) {
    ScanOptions copt = opt;
    copt.threads = threads;
    expect_same_scan(scan_database_cpu(query, records, kSc, copt), ref,
                     std::to_string(threads) + " threads");
  }
}

TEST(ScanEngine, EmptyInputs) {
  ScanOptions opt;
  opt.threads = 4;
  const std::vector<seq::Sequence> no_records;
  const ScanResult none = scan_database_cpu(seq::Sequence::dna("ACGT"), no_records, kSc, opt);
  EXPECT_TRUE(none.hits.empty());
  EXPECT_EQ(none.records_scanned, 0u);
  EXPECT_EQ(none.cell_updates, 0u);

  const std::vector<seq::Sequence> recs = {seq::Sequence::dna(""), seq::Sequence::dna("ACGT")};
  const ScanResult r = scan_database_cpu(seq::Sequence::dna("ACGT"), recs, kSc, opt);
  ASSERT_EQ(r.hits.size(), 1u);
  EXPECT_EQ(r.hits[0].record, 1u);
  EXPECT_EQ(r.records_scanned, 2u);
}

TEST(ScanEngine, MoreThreadsThanRecordsIsFine) {
  const std::vector<seq::Sequence> recs = {seq::Sequence::dna("ACGTACGT")};
  ScanOptions opt;
  opt.threads = 16;
  const ScanResult r = scan_database_cpu(seq::Sequence::dna("ACGT"), recs, kSc, opt);
  ASSERT_EQ(r.hits.size(), 1u);
  EXPECT_EQ(r.hits[0].result, align::sw_linear(recs[0], seq::Sequence::dna("ACGT"), kSc));
}

// A record holding an exact copy of a 300-residue query scores 300 — past
// the 8-bit lanes' 255 ceiling — so Auto/Swar8 must count exactly one lazy
// 16-bit re-run, the scalar/16-bit policies none, and the count must be
// thread-count invariant (it is a per-record property).
TEST(ScanEngine, Swar8FallbackCountSurfaced) {
  seq::RandomSequenceGenerator gen(4242);
  const seq::Sequence query = gen.uniform(seq::dna(), 300, "q");
  std::vector<seq::Sequence> records;
  for (int r = 0; r < 6; ++r) {
    records.push_back(gen.uniform(seq::dna(), 120, "bg" + std::to_string(r)));
  }
  seq::Sequence hot = gen.uniform(seq::dna(), 30, "hot");
  hot.append(query);
  records.push_back(std::move(hot));

  for (const std::size_t threads : kThreadCounts) {
    ScanOptions opt;
    opt.threads = threads;
    for (const SimdPolicy policy :
         {SimdPolicy::Auto, SimdPolicy::Swar8, SimdPolicy::Sse41, SimdPolicy::Avx2}) {
      opt.simd_policy = policy;
      const ScanResult r = scan_database_cpu(query, records, kSc, opt);
      // Auto counts a fallback only when it resolves to a byte-leading
      // tier (an SWR_SIMD=scalar/swar16 override makes it scalar-exact).
      const bool bytes = policy != SimdPolicy::Auto || auto_leads_with_bytes();
      EXPECT_EQ(r.swar8_fallbacks, bytes ? 1u : 0u)
          << "policy " << static_cast<int>(policy) << ", " << threads << " threads";
      ASSERT_FALSE(r.hits.empty());
      EXPECT_EQ(r.hits[0].result.score, 300);  // the re-run still scores exactly
    }
    for (const SimdPolicy policy : {SimdPolicy::Scalar, SimdPolicy::Swar16}) {
      opt.simd_policy = policy;
      EXPECT_EQ(scan_database_cpu(query, records, kSc, opt).swar8_fallbacks, 0u)
          << "policy " << static_cast<int>(policy) << ", " << threads << " threads";
    }
  }
}

TEST(ScanEngine, Validation) {
  const std::vector<seq::Sequence> no_records;
  ScanOptions bad;
  bad.threads = 0;
  EXPECT_THROW((void)scan_database_cpu(seq::Sequence::dna("AC"), no_records, kSc, bad),
               std::invalid_argument);
  bad = ScanOptions{};
  bad.top_k = 0;
  EXPECT_THROW((void)scan_database_cpu(seq::Sequence::dna("AC"), no_records, kSc, bad),
               std::invalid_argument);
  const std::vector<seq::Sequence> mixed = {seq::Sequence::protein("AR")};
  for (const std::size_t threads : kThreadCounts) {
    ScanOptions opt;
    opt.threads = threads;
    EXPECT_THROW((void)scan_database_cpu(seq::Sequence::dna("AC"), mixed, kSc, opt),
                 std::invalid_argument)
        << threads << " threads";
  }
}

// ---- Kernel shape (striped vs inter-sequence) parity -----------------
//
// The inter-sequence kernel must be invisible in every output field:
// hits (and their ranks), records_scanned, cell_updates AND
// swar8_fallbacks must match the striped shape for the same policy, for
// every thread count, on both database representations. Where interseq
// cannot run (non-vector policy, unsupported machine) it degrades to
// striped, so these sweeps are safe everywhere.

constexpr KernelShape kShapes[] = {KernelShape::Auto, KernelShape::Striped,
                                   KernelShape::InterSeq};

void expect_same_scan_and_fallbacks(const ScanResult& got, const ScanResult& want,
                                    const std::string& what) {
  expect_same_scan(got, want, what);
  EXPECT_EQ(got.swar8_fallbacks, want.swar8_fallbacks) << what;
}

TEST(ScanEngineKernelShape, VectorScanBitIdenticalAcrossShapesThreadsAndPolicies) {
  for (const std::uint64_t seed : {311u, 422u}) {
    const RandomDb db(seed);
    ScanOptions opt;
    opt.top_k = 8;
    opt.min_score = 12;
    for (const SimdPolicy policy : kPolicies) {
      ScanOptions sopt = opt;
      sopt.simd_policy = policy;
      sopt.kernel = KernelShape::Striped;
      const ScanResult ref = scan_database_cpu(db.query, db.records, kSc, sopt);
      for (const std::size_t threads : kThreadCounts) {
        for (const KernelShape shape : kShapes) {
          ScanOptions copt = sopt;
          copt.threads = threads;
          copt.kernel = shape;
          const ScanResult got = scan_database_cpu(db.query, db.records, kSc, copt);
          expect_same_scan_and_fallbacks(
              got, ref,
              "seed " + std::to_string(seed) + " policy " +
                  std::to_string(static_cast<int>(policy)) + " threads " +
                  std::to_string(threads) + " shape " +
                  core::kernel_shape_name(shape));
        }
      }
    }
  }
}

TEST(ScanEngineKernelShape, StoreScanParityAndAutoSelectsInterseq) {
  const RandomDb db(533);
  const std::string path = testing::TempDir() + "/kernel_shape_scan.swdb";
  db::build_store(db.records, path);
  const db::Store store = db::Store::open(path);

  ScanOptions opt;
  opt.top_k = 8;
  opt.min_score = 12;
  opt.kernel = KernelShape::Striped;
  const ScanResult ref = scan_database_cpu(db.query, db.records, kSc, opt);
  ASSERT_FALSE(ref.hits.empty());

  for (const std::size_t threads : kThreadCounts) {
    for (const KernelShape shape : kShapes) {
      ScanOptions copt = opt;
      copt.threads = threads;
      copt.kernel = shape;
      const ScanResult got = scan_database_cpu(db.query, store, kSc, copt);
      expect_same_scan_and_fallbacks(got, ref,
                                     "store scan threads " + std::to_string(threads) +
                                         " shape " + core::kernel_shape_name(shape));
    }
  }

  // Auto on a store-backed scan picks the inter-sequence shape whenever
  // the resolved policy can run it — visible through the scan.interseq.*
  // counters (SWR_SIMD/SWR_KERNEL overrides legitimately change this, so
  // gate on the resolved tier like the engine does).
  const core::SimdIsa isa = core::auto_simd_isa();
  const bool interseq_expected =
      (isa == core::SimdIsa::Sse41 || isa == core::SimdIsa::Avx2) &&
      core::kernel_shape_env_override().value_or(KernelShape::Auto) != KernelShape::Striped;
  obs::Registry reg;
  ScanOptions mopt = opt;
  mopt.kernel = KernelShape::Auto;
  mopt.metrics = &reg;
  const ScanResult got = scan_database_cpu(db.query, store, kSc, mopt);
  expect_same_scan(got, ref, "metered auto store scan");
  if (interseq_expected) {
    EXPECT_GT(reg.counter("scan.interseq.batches").value(), 0u);
    EXPECT_GT(reg.counter("scan.interseq.records").value(), 0u);
  } else {
    EXPECT_EQ(reg.counter("scan.interseq.batches").value(), 0u);
  }
}

// The fallback count must stay "records whose true score > 255" under the
// inter-sequence shape too: the planted 300-scoring record is the only
// lane that saturates, for every thread count.
TEST(ScanEngineKernelShape, InterseqFallbackCountExact) {
  seq::RandomSequenceGenerator gen(4242);
  const seq::Sequence query = gen.uniform(seq::dna(), 300, "q");
  std::vector<seq::Sequence> records;
  for (int r = 0; r < 20; ++r) {
    records.push_back(gen.uniform(seq::dna(), 120, "bg" + std::to_string(r)));
  }
  seq::Sequence hot = gen.uniform(seq::dna(), 30, "hot");
  hot.append(query);
  records.push_back(std::move(hot));

  for (const std::size_t threads : kThreadCounts) {
    for (const SimdPolicy policy : {SimdPolicy::Sse41, SimdPolicy::Avx2}) {
      ScanOptions opt;
      opt.threads = threads;
      opt.simd_policy = policy;
      opt.kernel = KernelShape::InterSeq;
      const ScanResult r = scan_database_cpu(query, records, kSc, opt);
      EXPECT_EQ(r.swar8_fallbacks, 1u)
          << "policy " << static_cast<int>(policy) << ", " << threads << " threads";
      ASSERT_FALSE(r.hits.empty());
      EXPECT_EQ(r.hits[0].result.score, 300);
    }
  }
}

TEST(ScanEngineKernelShape, ChunkScanParityAcrossShapes) {
  const RandomDb db(644);
  const RecordSource src(db.records);
  std::vector<std::uint32_t> ids;
  for (std::uint32_t r = 0; r < db.records.size(); r += 2) ids.push_back(r);

  ScanOptions opt;
  opt.top_k = 6;
  opt.min_score = 12;
  opt.kernel = KernelShape::Striped;
  const ScanResult ref = scan_records_cpu(db.query, src, ids, kSc, opt);
  for (const KernelShape shape : kShapes) {
    ScanOptions copt = opt;
    copt.kernel = shape;
    const ScanResult got = scan_records_cpu(db.query, src, ids, kSc, copt);
    expect_same_scan_and_fallbacks(got, ref,
                                   std::string("chunk shape ") + core::kernel_shape_name(shape));
  }
}

TEST(FleetScanParallel, ThreadedFleetIdenticalToSequentialFleet) {
  const RandomDb db(33, 24);
  ScanOptions opt;
  opt.top_k = 5;
  opt.min_score = 12;
  for (const std::size_t boards : {1u, 3u}) {
    core::BoardFleet seq_fleet = core::make_board_fleet(core::xc2vp70(), boards, db.query.size(), kSc);
    const ScanResult ref = scan_database_fleet(seq_fleet, db.query, db.records, opt);
    for (const std::size_t threads : {2u, 8u}) {
      core::BoardFleet par_fleet =
          core::make_board_fleet(core::xc2vp70(), boards, db.query.size(), kSc);
      ScanOptions popt = opt;
      popt.threads = threads;
      const ScanResult got = scan_database_fleet(par_fleet, db.query, db.records, popt);
      expect_same_scan(got, ref,
                       std::to_string(boards) + " boards / " + std::to_string(threads) +
                           " threads");
      EXPECT_DOUBLE_EQ(got.board_seconds, ref.board_seconds);
    }
  }
}

}  // namespace
