// NUMA placement parity suite (ISSUE acceptance): hit output — and the
// retrieved alignment transcripts — must be bit-identical across
// `--numa off|auto|fake:<spec>` for both filters, every kernel shape and
// 1/2/8 threads, over store-backed and vector sources. Placement changes
// where records are scanned, never what the scan reports. Also pins down
// the counter contract: scan.numa.local_bytes + scan.numa.remote_bytes
// reconciles against the payload bytes scanned, and `--numa off` is a
// strict no-op (no scan.numa.* metrics exist at all).
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "align/scoring.hpp"
#include "core/topology.hpp"
#include "db/builder.hpp"
#include "db/store.hpp"
#include "host/batch.hpp"
#include "host/scan_engine.hpp"
#include "obs/metrics.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"

namespace {

using namespace swr;
using namespace swr::host;

std::string temp_path(const std::string& leaf) { return testing::TempDir() + "/" + leaf; }

/// Scoped SWR_NUMA_FAKE override (restores the previous value) so the
/// auto-mode cases are deterministic on any machine.
class FakeEnvGuard {
 public:
  explicit FakeEnvGuard(const char* value) {
    const char* prev = std::getenv("SWR_NUMA_FAKE");
    if (prev != nullptr) saved_ = prev;
    if (value != nullptr) {
      ::setenv("SWR_NUMA_FAKE", value, 1);
    } else {
      ::unsetenv("SWR_NUMA_FAKE");
    }
  }
  ~FakeEnvGuard() {
    if (saved_.has_value()) {
      ::setenv("SWR_NUMA_FAKE", saved_->c_str(), 1);
    } else {
      ::unsetenv("SWR_NUMA_FAKE");
    }
  }
  FakeEnvGuard(const FakeEnvGuard&) = delete;
  FakeEnvGuard& operator=(const FakeEnvGuard&) = delete;

 private:
  std::optional<std::string> saved_;
};

// Random DNA background with homologs planted on a divergence ladder,
// plus the degenerate shapes (empty / sub-seed records) every engine
// path must tolerate.
struct NumaDb {
  seq::Sequence query;
  std::vector<seq::Sequence> records;

  explicit NumaDb(std::uint64_t seed, std::size_t n_records = 80) {
    seq::RandomSequenceGenerator gen(seed);
    query = gen.uniform(seq::dna(), 120, "q");
    for (std::size_t r = 0; r < n_records; ++r) {
      seq::Sequence rec =
          gen.uniform(seq::dna(), 60 + 41 * (r % 9), "rec" + std::to_string(r));
      if (r % 7 == 3) {
        const double rate = 0.02 + 0.03 * static_cast<double>(r % 6);
        rec.append(seq::point_mutate(query, rate, gen.engine()));
      }
      records.push_back(std::move(rec));
    }
    records.push_back(seq::Sequence::dna("", "empty"));
    records.push_back(seq::Sequence::dna("ACGT", "tiny"));
  }
};

db::Store build_open(const std::vector<seq::Sequence>& recs, const std::string& leaf) {
  const std::string path = temp_path(leaf);
  db::BuildOptions opt;
  opt.kmer_index = true;
  db::build_store(recs, path, opt);
  return db::Store::open(path);
}

void expect_same_hits(const ScanResult& got, const ScanResult& want, const std::string& what) {
  ASSERT_EQ(got.hits.size(), want.hits.size()) << what;
  for (std::size_t k = 0; k < got.hits.size(); ++k) {
    EXPECT_EQ(got.hits[k].record, want.hits[k].record) << what << " hit " << k;
    EXPECT_EQ(got.hits[k].result, want.hits[k].result) << what << " hit " << k;
  }
}

// Every mode the parity contract covers: the placement-blind engine, auto
// against a forced multi-node fake machine, a symmetric fake and an
// asymmetric fake whose cpu ids exceed what small CI boxes actually have
// (pinning degrades, placement logic still runs).
const char* const kModes[] = {"off", "auto", "fake:2x2", "fake:0-2,8/3-5"};

TEST(NumaParity, HitsIdenticalAcrossModesThreadsShapesFilters) {
  const FakeEnvGuard env("2x2");  // `auto` resolves multi-node everywhere
  const NumaDb db(1709);
  const db::Store store = build_open(db.records, "numa_parity.swdb");

  ScanOptions base;
  base.top_k = db.records.size();
  base.min_score = 40;
  const ScanResult want = scan_database_cpu(db.query, store, align::Scoring{}, base);
  ASSERT_GE(want.hits.size(), 5u);

  for (const char* mode : kModes) {
    for (const KernelShape shape :
         {KernelShape::Auto, KernelShape::Striped, KernelShape::InterSeq}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        for (const FilterMode filter : {FilterMode::Exact, FilterMode::Seeded}) {
          ScanOptions opt = base;
          opt.numa = core::parse_numa_request(mode);
          opt.kernel = shape;
          opt.threads = threads;
          opt.filter = filter;
          const ScanResult got = scan_database_cpu(db.query, store, align::Scoring{}, opt);
          expect_same_hits(got, want,
                           std::string("mode ") + mode + " shape " +
                               core::kernel_shape_name(shape) + " threads " +
                               std::to_string(threads) + " filter " +
                               (filter == FilterMode::Exact ? "exact" : "seeded"));
        }
      }
    }
  }
}

TEST(NumaParity, VectorSourceParity) {
  // Placement must not assume a store: the vector overload shards and
  // steals by record size instead of payload ranges.
  const NumaDb db(1710, 50);
  ScanOptions base;
  base.top_k = 20;
  base.min_score = 40;
  const ScanResult want = scan_database_cpu(db.query, db.records, align::Scoring{}, base);

  for (const char* mode : {"fake:2x2", "fake:0-2,8/3-5"}) {
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      ScanOptions opt = base;
      opt.numa = core::parse_numa_request(mode);
      opt.threads = threads;
      const ScanResult got = scan_database_cpu(db.query, db.records, align::Scoring{}, opt);
      expect_same_hits(got, want,
                       std::string("vector mode ") + mode + " threads " +
                           std::to_string(threads));
    }
  }
}

TEST(NumaParity, AlignTranscriptsIdentical) {
  const NumaDb db(1711);
  const db::Store store = build_open(db.records, "numa_align.swdb");
  ScanOptions base;
  base.top_k = 12;
  base.min_score = 40;
  base.align = true;
  const ScanResult want = scan_database_cpu(db.query, store, align::Scoring{}, base);
  ASSERT_FALSE(want.alignments.empty());

  ScanOptions opt = base;
  opt.numa = core::parse_numa_request("fake:2x2");
  opt.threads = 8;
  const ScanResult got = scan_database_cpu(db.query, store, align::Scoring{}, opt);
  expect_same_hits(got, want, "aligned scan");
  ASSERT_EQ(got.alignments.size(), want.alignments.size());
  for (std::size_t a = 0; a < got.alignments.size(); ++a) {
    const retrieve::Traceback& g = got.alignments[a];
    const retrieve::Traceback& w = want.alignments[a];
    EXPECT_EQ(g.alignment.score, w.alignment.score) << "alignment " << a;
    EXPECT_EQ(g.alignment.begin, w.alignment.begin) << "alignment " << a;
    EXPECT_EQ(g.alignment.end, w.alignment.end) << "alignment " << a;
    EXPECT_EQ(g.alignment.cigar.to_string(), w.alignment.cigar.to_string()) << "alignment " << a;
  }
}

TEST(NumaParity, CountersReconcileAgainstPayloadBytes) {
  // The acceptance identity: every payload byte the scan touched is
  // accounted exactly once, as local or remote.
  const NumaDb db(1712);
  const db::Store store = build_open(db.records, "numa_counters.swdb");
  std::uint64_t payload = 0;
  for (std::size_t r = 0; r < store.size(); ++r) payload += store.payload_range(r).bytes;
  ASSERT_GT(payload, 0u);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    obs::Registry reg;
    ScanOptions opt;
    opt.top_k = 8;
    opt.min_score = 40;
    opt.threads = threads;
    opt.numa = core::parse_numa_request("fake:2x2");
    opt.metrics = &reg;
    (void)scan_database_cpu(db.query, store, align::Scoring{}, opt);

    const obs::Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("scan.numa.local_bytes") + snap.counter("scan.numa.remote_bytes"),
              payload)
        << "threads " << threads;
    // The first worker on each node pre-faults its byte slice.
    EXPECT_GT(snap.counter("scan.numa.prefault_pages"), 0u) << "threads " << threads;
    bool saw_nodes = false;
    for (const auto& [name, value] : snap.gauges) {
      if (name == "scan.numa.nodes") {
        saw_nodes = true;
        EXPECT_EQ(value, 2) << "threads " << threads;
      }
    }
    EXPECT_TRUE(saw_nodes) << "threads " << threads;
  }
}

TEST(NumaParity, OffIsAStrictNoOp) {
  // `--numa off` reproduces the placement-blind engine exactly: no
  // scan.numa.* metric may even exist in the registry afterwards.
  const NumaDb db(1713, 40);
  const db::Store store = build_open(db.records, "numa_off.swdb");
  obs::Registry reg;
  ScanOptions opt;
  opt.top_k = 8;
  opt.min_score = 40;
  opt.threads = 4;
  opt.numa = core::parse_numa_request("off");
  opt.metrics = &reg;
  (void)scan_database_cpu(db.query, store, align::Scoring{}, opt);

  const obs::Snapshot snap = reg.snapshot();
  for (const auto& [name, value] : snap.counters) {
    EXPECT_EQ(name.rfind("scan.numa.", 0), std::string::npos) << name;
  }
  for (const auto& [name, value] : snap.gauges) {
    EXPECT_EQ(name.rfind("scan.numa.", 0), std::string::npos) << name;
  }
}

TEST(NumaParity, AutoDegradesSilentlyOnSingleNode) {
  // On a single-node machine `--numa auto` must behave exactly like off:
  // same hits, no placement metrics, no error.
  const FakeEnvGuard env("1x8");
  const NumaDb db(1714, 40);
  const db::Store store = build_open(db.records, "numa_auto1.swdb");
  ScanOptions base;
  base.top_k = 8;
  base.min_score = 40;
  base.threads = 4;
  base.numa = core::parse_numa_request("off");
  const ScanResult want = scan_database_cpu(db.query, store, align::Scoring{}, base);

  obs::Registry reg;
  ScanOptions opt = base;
  opt.numa = core::parse_numa_request("auto");
  opt.metrics = &reg;
  const ScanResult got = scan_database_cpu(db.query, store, align::Scoring{}, opt);
  expect_same_hits(got, want, "auto on single node");
  const obs::Snapshot snap = reg.snapshot();
  for (const auto& [name, value] : snap.counters) {
    EXPECT_EQ(name.rfind("scan.numa.", 0), std::string::npos) << name;
  }
}

}  // namespace
