#include <gtest/gtest.h>

#include "host/pci.hpp"

namespace {

using namespace swr::host;

TEST(PciModel, TransferCostIsLatencyPlusBandwidth) {
  PciConfig cfg;
  cfg.bandwidth_bytes_per_s = 100e6;
  cfg.per_transfer_latency_s = 1e-4;
  const PciModel pci(cfg);
  EXPECT_DOUBLE_EQ(pci.transfer_seconds(0), 1e-4);
  EXPECT_DOUBLE_EQ(pci.transfer_seconds(100'000'000), 1.0 + 1e-4);
}

TEST(PciModel, AccumulatesTraffic) {
  PciModel pci(PciConfig{});
  (void)pci.transfer(1000);
  (void)pci.transfer(2000);
  EXPECT_EQ(pci.total_bytes(), 3000u);
  EXPECT_EQ(pci.transactions(), 2u);
  EXPECT_GT(pci.total_seconds(), 0.0);
  pci.reset();
  EXPECT_EQ(pci.total_bytes(), 0u);
  EXPECT_EQ(pci.transactions(), 0u);
  EXPECT_DOUBLE_EQ(pci.total_seconds(), 0.0);
}

TEST(PciModel, SmallResultTransfersAreMilliseconds) {
  // The paper's point: a few bytes of score+coordinates cross the bus in
  // well under a millisecond, while a full similarity matrix would not.
  const PciModel pci{PciConfig{}};
  EXPECT_LT(pci.transfer_seconds(20), 1e-3);
  const std::size_t full_matrix_bytes = std::size_t{100} * 10'000'000 * 4;  // 100 x 10M ints
  EXPECT_GT(pci.transfer_seconds(full_matrix_bytes), 30.0);
}

TEST(PciConfig, Validation) {
  PciConfig bad;
  bad.bandwidth_bytes_per_s = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = PciConfig{};
  bad.per_transfer_latency_s = -1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

}  // namespace
