#include <gtest/gtest.h>

#include "host/pci.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace swr::host;

TEST(PciModel, TransferCostIsLatencyPlusBandwidth) {
  PciConfig cfg;
  cfg.bandwidth_bytes_per_s = 100e6;
  cfg.per_transfer_latency_s = 1e-4;
  const PciModel pci(cfg);
  EXPECT_DOUBLE_EQ(pci.transfer_seconds(0), 1e-4);
  EXPECT_DOUBLE_EQ(pci.transfer_seconds(100'000'000), 1.0 + 1e-4);
}

TEST(PciModel, AccumulatesTraffic) {
  PciModel pci(PciConfig{});
  (void)pci.transfer(1000);
  (void)pci.transfer(2000);
  EXPECT_EQ(pci.total_bytes(), 3000u);
  EXPECT_EQ(pci.transactions(), 2u);
  EXPECT_GT(pci.total_seconds(), 0.0);
  pci.reset();
  EXPECT_EQ(pci.total_bytes(), 0u);
  EXPECT_EQ(pci.transactions(), 0u);
  EXPECT_DOUBLE_EQ(pci.total_seconds(), 0.0);
}

TEST(PciModel, SmallResultTransfersAreMilliseconds) {
  // The paper's point: a few bytes of score+coordinates cross the bus in
  // well under a millisecond, while a full similarity matrix would not.
  const PciModel pci{PciConfig{}};
  EXPECT_LT(pci.transfer_seconds(20), 1e-3);
  const std::size_t full_matrix_bytes = std::size_t{100} * 10'000'000 * 4;  // 100 x 10M ints
  EXPECT_GT(pci.transfer_seconds(full_matrix_bytes), 30.0);
}

TEST(PciConfig, Validation) {
  PciConfig bad;
  bad.bandwidth_bytes_per_s = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = PciConfig{};
  bad.per_transfer_latency_s = -1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(PciModel, DirectionalByteAccounting) {
  PciModel pci(PciConfig{});
  (void)pci.transfer(1000, BusDirection::ToBoard);
  (void)pci.transfer(20, BusDirection::FromBoard);
  (void)pci.transfer(500, BusDirection::ToBoard);
  EXPECT_EQ(pci.bytes_to_board(), 1500u);
  EXPECT_EQ(pci.bytes_from_board(), 20u);
  EXPECT_EQ(pci.total_bytes(), 1520u);
  pci.reset();
  EXPECT_EQ(pci.bytes_to_board(), 0u);
  EXPECT_EQ(pci.bytes_from_board(), 0u);
}

TEST(DmaStream, TimelineInvariantsHold) {
  // Structural identities of the double-buffer timeline, checked on a
  // stream that is neither bus- nor compute-bound throughout:
  //   overlapped = first_chunk_fill + compute + stall
  //   serialized = all transfers + compute
  //   overlapped <= serialized (prefetch never loses)
  PciConfig cfg;
  cfg.bandwidth_bytes_per_s = 1e6;
  cfg.per_transfer_latency_s = 1e-5;
  PciModel pci(cfg);
  DmaConfig dma;
  dma.chunk_bytes = 1024;
  const std::size_t bytes = 10 * 1024 + 37;  // partial tail chunk
  const double compute = 8e-3;
  const DmaTimeline t = pci.stream_overlapped(bytes, compute, dma);

  EXPECT_EQ(t.bytes, bytes);
  EXPECT_EQ(t.chunks, 11u);
  const double first_fill = pci.transfer_seconds(1024);
  EXPECT_NEAR(t.overlapped_seconds, first_fill + t.compute_seconds + t.stall_seconds, 1e-12);
  EXPECT_NEAR(t.serialized_seconds, t.transfer_seconds + compute, 1e-12);
  EXPECT_LE(t.overlapped_seconds, t.serialized_seconds + 1e-12);
  EXPECT_GE(t.stall_seconds, 0.0);
  // Model totals account the stream as bus traffic: one descriptor per
  // chunk, all bytes toward the board.
  EXPECT_EQ(pci.total_bytes(), bytes);
  EXPECT_EQ(pci.bytes_to_board(), bytes);
  EXPECT_EQ(pci.transactions(), 11u);
  EXPECT_NEAR(pci.dma_stall_seconds(), t.stall_seconds, 1e-15);
}

TEST(DmaStream, ComputeBoundStreamHidesAllButFirstChunk) {
  // When every compute share exceeds the next prefetch, the stream stalls
  // zero and the wall is exactly first fill + compute.
  PciConfig cfg;
  cfg.bandwidth_bytes_per_s = 1e9;  // fast bus
  cfg.per_transfer_latency_s = 1e-7;
  PciModel pci(cfg);
  DmaConfig dma;
  dma.chunk_bytes = 4096;
  const DmaTimeline t = pci.stream_overlapped(64 * 1024, /*compute=*/1.0, dma);
  EXPECT_DOUBLE_EQ(t.stall_seconds, 0.0);
  EXPECT_NEAR(t.overlapped_seconds, pci.transfer_seconds(4096) + 1.0, 1e-12);
  EXPECT_LT(t.overlapped_seconds, t.serialized_seconds);
}

TEST(DmaStream, BusBoundStreamDegeneratesToSerialized) {
  // A compute window of zero cannot hide anything: overlapped == all
  // transfers plus nothing, i.e. the serialized time, all of it stall.
  PciModel pci(PciConfig{});
  DmaConfig dma;
  dma.chunk_bytes = 1000;
  const DmaTimeline t = pci.stream_overlapped(5000, 0.0, dma);
  EXPECT_NEAR(t.overlapped_seconds, t.serialized_seconds, 1e-12);
  EXPECT_NEAR(t.stall_seconds, t.transfer_seconds - pci.transfer_seconds(1000), 1e-12);
}

TEST(DmaStream, EdgeCases) {
  PciModel pci(PciConfig{});
  DmaConfig dma;
  dma.chunk_bytes = 4096;
  // Zero bytes: pure compute, no transactions.
  const DmaTimeline none = pci.stream_overlapped(0, 0.5, dma);
  EXPECT_EQ(none.chunks, 0u);
  EXPECT_DOUBLE_EQ(none.overlapped_seconds, 0.5);
  EXPECT_EQ(pci.transactions(), 0u);
  // Sub-chunk payload: one descriptor, serialized == overlapped shape.
  const DmaTimeline one = pci.stream_overlapped(100, 0.1, dma);
  EXPECT_EQ(one.chunks, 1u);
  EXPECT_NEAR(one.overlapped_seconds, pci.transfer_seconds(100) + 0.1, 1e-12);
  // Exact multiple: no partial tail.
  const DmaTimeline exact = pci.stream_overlapped(3 * 4096, 0.1, dma);
  EXPECT_EQ(exact.chunks, 3u);
  EXPECT_NEAR(exact.transfer_seconds, 3 * pci.transfer_seconds(4096), 1e-12);
  // Bad configs are loud.
  DmaConfig zero;
  zero.chunk_bytes = 0;
  EXPECT_THROW((void)pci.stream_overlapped(10, 0.1, zero), std::invalid_argument);
  EXPECT_THROW((void)pci.stream_overlapped(10, -1.0, dma), std::invalid_argument);
}

TEST(PciMetrics, BoundRegistryRecordsAndUnboundIsNoOp) {
  swr::obs::Registry reg;
  PciModel pci(PciConfig{});
  pci.bind_metrics(&reg);
  (void)pci.transfer(1000, BusDirection::ToBoard);
  (void)pci.transfer(20, BusDirection::FromBoard);
  DmaConfig dma;
  dma.chunk_bytes = 512;
  (void)pci.stream_overlapped(2048, 0.0, dma, /*freq_mhz=*/100.0);

  EXPECT_EQ(reg.counter("hw.pci.bytes").value(), 1000u + 20u + 2048u);
  EXPECT_EQ(reg.counter("hw.pci.bytes_to_board").value(), 1000u + 2048u);
  EXPECT_EQ(reg.counter("hw.pci.bytes_from_board").value(), 20u);
  EXPECT_EQ(reg.counter("hw.pci.transactions").value(), 2u + 4u);
  EXPECT_GT(reg.counter("hw.pci.stall_cycles").value(), 0u);

  // Unbinding restores the strict no-op path.
  pci.bind_metrics(nullptr);
  (void)pci.transfer(777);
  EXPECT_EQ(reg.counter("hw.pci.bytes").value(), 1000u + 20u + 2048u);
}

}  // namespace
