// AffineHostPipeline: the affine accelerator + Myers-Miller retrieval.
#include <gtest/gtest.h>

#include "align/gotoh.hpp"
#include "align/myers_miller.hpp"
#include "core/accelerator.hpp"
#include "host/pipeline.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;

align::AffineScoring default_affine() {
  align::AffineScoring sc;
  sc.match = 2;
  sc.mismatch = -1;
  sc.gap_open = -2;
  sc.gap_extend = -1;
  return sc;
}

align::Score affine_score_of(const align::Cigar& cg, const seq::Sequence& a,
                             const seq::Sequence& b, align::Cell begin,
                             const align::AffineScoring& sc) {
  align::Score total = 0;
  std::size_t i = begin.i;
  std::size_t j = begin.j;
  for (const align::EditRun& r : cg.runs()) {
    switch (r.op) {
      case align::EditOp::Match:
      case align::EditOp::Mismatch:
        for (std::size_t k = 0; k < r.len; ++k) {
          total += sc.substitution(a[i - 1], b[j - 1]);
          ++i;
          ++j;
        }
        break;
      case align::EditOp::Insert:
        total += sc.gap_open + static_cast<align::Score>(r.len) * sc.gap_extend;
        j += r.len;
        break;
      case align::EditOp::Delete:
        total += sc.gap_open + static_cast<align::Score>(r.len) * sc.gap_extend;
        i += r.len;
        break;
    }
  }
  return total;
}

TEST(AffinePipeline, MatchesSoftwareAffinePipeline) {
  const align::AffineScoring sc = default_affine();
  core::AffineAccelerator acc(core::xc2vp70(), 24, sc);
  host::AffineHostPipeline pipe(acc, host::PciConfig{});
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const seq::Sequence q = swr::test::random_dna(40, seed * 7);
    const seq::Sequence db = swr::test::random_dna(180, seed * 9);
    const host::PipelineResult hw = pipe.align(q, db);
    const align::LocalAlignment sw = align::gotoh_local_align_linear(db, q, sc);
    EXPECT_EQ(hw.alignment.score, sw.score) << "seed " << seed;
    EXPECT_EQ(hw.alignment.begin, sw.begin) << "seed " << seed;
    EXPECT_EQ(hw.alignment.end, sw.end) << "seed " << seed;
    EXPECT_EQ(hw.alignment.cigar, sw.cigar) << "seed " << seed;
  }
}

TEST(AffinePipeline, TranscriptScoresAsReported) {
  const align::AffineScoring sc = default_affine();
  core::AffineAccelerator acc(core::xc2vp70(), 30, sc);
  host::AffineHostPipeline pipe(acc, host::PciConfig{});
  seq::RandomSequenceGenerator gen(12);
  const seq::Sequence q = gen.uniform(seq::dna(), 60, "q");
  seq::Sequence db = gen.uniform(seq::dna(), 800);
  db.append(seq::point_mutate(q, 0.06, gen.engine()));
  db.append(gen.uniform(seq::dna(), 800));
  const host::PipelineResult r = pipe.align(q, db);
  ASSERT_GT(r.alignment.score, 0);
  EXPECT_EQ(affine_score_of(r.alignment.cigar, db, q, r.alignment.begin, sc),
            r.alignment.score);
  // Gotoh quadratic oracle score agreement.
  EXPECT_EQ(r.alignment.score, align::gotoh_local_align(db, q, sc).score);
  // Timing/traffic plumbing mirrors the linear pipeline.
  EXPECT_GT(r.timing.fpga_seconds, 0.0);
  EXPECT_EQ(r.bytes_from_board, 40u);
  EXPECT_GT(r.forward_stats.total_cycles, r.reverse_stats.total_cycles);
}

TEST(AffinePipeline, NoHitAndValidation) {
  const align::AffineScoring sc = default_affine();
  core::AffineAccelerator acc(core::xc2vp70(), 8, sc);
  host::AffineHostPipeline pipe(acc, host::PciConfig{});
  EXPECT_EQ(pipe.align(seq::Sequence::dna("AAAA"), seq::Sequence::dna("TTTT")).alignment.score,
            0);
  EXPECT_THROW((void)pipe.align(seq::Sequence::dna("ACGT"), seq::Sequence::protein("ARND")),
               std::invalid_argument);
}

}  // namespace
