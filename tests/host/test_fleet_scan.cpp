#include <gtest/gtest.h>

#include "db/builder.hpp"
#include "db/store.hpp"
#include "host/fleet_scan.hpp"
#include "retrieve/topk.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::host;

const align::Scoring kSc = align::Scoring::paper_default();

struct Fixture {
  seq::Sequence query;
  std::vector<seq::Sequence> records;

  explicit Fixture(std::uint64_t seed) {
    seq::RandomSequenceGenerator gen(seed);
    query = gen.uniform(seq::dna(), 40, "q");
    for (int r = 0; r < 9; ++r) {
      seq::Sequence rec = gen.uniform(seq::dna(), 250, "rec" + std::to_string(r));
      if (r % 4 == 1) rec.append(seq::point_mutate(query, 0.03 * (r + 1), gen.engine()));
      records.push_back(std::move(rec));
    }
  }
};

TEST(FleetScan, HitsIdenticalToSingleBoardScan) {
  const Fixture fx(21);
  core::SmithWatermanAccelerator solo(core::xc2vp70(), 40, kSc);
  ScanOptions opt;
  opt.top_k = 4;
  opt.min_score = 15;
  const ScanResult single = scan_database(solo, fx.query, fx.records, opt);

  for (const std::size_t boards : {1u, 2u, 3u, 5u}) {
    core::BoardFleet fleet = core::make_board_fleet(core::xc2vp70(), boards, 40, kSc);
    const ScanResult fr = scan_database_fleet(fleet, fx.query, fx.records, opt);
    ASSERT_EQ(fr.hits.size(), single.hits.size()) << boards << " boards";
    for (std::size_t k = 0; k < fr.hits.size(); ++k) {
      EXPECT_EQ(fr.hits[k].record, single.hits[k].record);
      EXPECT_EQ(fr.hits[k].result, single.hits[k].result);
    }
    EXPECT_EQ(fr.records_scanned, single.records_scanned);
    EXPECT_EQ(fr.cell_updates, single.cell_updates);
  }
}

TEST(FleetScan, ParallelTimeShrinksWithBoards) {
  const Fixture fx(22);
  ScanOptions opt;
  core::BoardFleet one = core::make_board_fleet(core::xc2vp70(), 1, 40, kSc);
  core::BoardFleet three = core::make_board_fleet(core::xc2vp70(), 3, 40, kSc);
  const double t1 = scan_database_fleet(one, fx.query, fx.records, opt).board_seconds;
  const double t3 = scan_database_fleet(three, fx.query, fx.records, opt).board_seconds;
  EXPECT_LT(t3, t1);
  EXPECT_GT(t3, t1 / 4.0);  // 3 boards can't beat 3x by much (uneven records)
}

// The deal this module used to ship: record r to board r % boards, in
// index order. Kept here as the parity baseline for the least-loaded deal.
ScanResult scan_round_robin(const seq::Sequence& query, const std::vector<seq::Sequence>& records,
                            std::size_t boards, std::size_t pes, const ScanOptions& opt,
                            double* busiest_out = nullptr) {
  std::vector<std::vector<std::uint32_t>> shares(boards);
  for (std::uint32_t r = 0; r < records.size(); ++r) shares[r % boards].push_back(r);

  ScanResult out;
  out.records_scanned = records.size();
  double busiest = 0.0;
  for (const auto& share : shares) {
    core::SmithWatermanAccelerator board(core::xc2vp70(), pes, kSc);
    std::vector<Hit> hits;
    double seconds = 0.0;
    for (const std::uint32_t r : share) {
      if (records[r].empty() || query.empty()) continue;
      const core::JobResult job = board.run(query, records[r]);
      out.cell_updates += job.stats.cell_updates;
      seconds += job.wall_seconds;
      if (job.best.score < opt.min_score) continue;
      Hit hit;
      hit.record = r;
      hit.result = job.best;
      retrieve::topk_insert(hits, std::move(hit), opt.top_k, hit_ranks_before);
    }
    busiest = std::max(busiest, seconds);
    retrieve::topk_union(out.hits, std::move(hits));
  }
  retrieve::topk_finalize(out.hits, opt.top_k, hit_ranks_before);
  if (busiest_out != nullptr) *busiest_out = busiest;
  return out;
}

TEST(FleetScan, LeastLoadedDealMatchesRoundRobinHits) {
  // The deal changed from index round-robin to least-loaded over the
  // length-descending schedule; the merge is a total order over the union,
  // so the reported hits must not move. Asserted, not assumed.
  const Fixture fx(31);
  ScanOptions opt;
  opt.top_k = 5;
  opt.min_score = 12;
  const ScanResult rr = scan_round_robin(fx.query, fx.records, 3, 40, opt);
  core::BoardFleet fleet = core::make_board_fleet(core::xc2vp70(), 3, 40, kSc);
  const ScanResult ll = scan_database_fleet(fleet, fx.query, fx.records, opt);
  ASSERT_EQ(ll.hits.size(), rr.hits.size());
  for (std::size_t k = 0; k < ll.hits.size(); ++k) {
    EXPECT_EQ(ll.hits[k].record, rr.hits[k].record) << "rank " << k;
    EXPECT_EQ(ll.hits[k].result, rr.hits[k].result) << "rank " << k;
  }
  EXPECT_EQ(ll.cell_updates, rr.cell_updates);
}

TEST(FleetScan, LeastLoadedDealBalancesSkewedLengths) {
  // Adversarial workload for the old deal: record lengths arranged so
  // index round-robin piles the long records onto one board. The
  // least-loaded deal's busiest board must finish no later than the
  // round-robin deal's busiest board.
  seq::RandomSequenceGenerator gen(33);
  const seq::Sequence query = gen.uniform(seq::dna(), 30, "q");
  std::vector<seq::Sequence> records;
  for (int r = 0; r < 12; ++r) {
    // Boards = 3: indices 0,3,6,9 land on board 0 under round-robin, and
    // those are exactly the long ones.
    const std::size_t len = (r % 3 == 0) ? 1200 : 60;
    records.push_back(gen.uniform(seq::dna(), len, "rec" + std::to_string(r)));
  }
  ScanOptions opt;
  double rr_busiest = 0.0;
  const ScanResult rr = scan_round_robin(query, records, 3, 30, opt, &rr_busiest);
  core::BoardFleet fleet = core::make_board_fleet(core::xc2vp70(), 3, 30, kSc);
  const ScanResult ll = scan_database_fleet(fleet, query, records, opt);
  EXPECT_LT(ll.board_seconds, rr_busiest * 0.75);  // materially better, not just equal
  ASSERT_EQ(ll.hits.size(), rr.hits.size());
  for (std::size_t k = 0; k < ll.hits.size(); ++k) {
    EXPECT_EQ(ll.hits[k].record, rr.hits[k].record);
  }
}

TEST(FleetScan, StoreScheduleOrderPathIsBitIdenticalToVector) {
  // Store sources hand the dealer their precomputed length-descending
  // schedule_order; vector sources sort one on the fly. Same records
  // either way -> same deal -> same everything.
  const Fixture fx(34);
  const std::string path = testing::TempDir() + "/fleet_deal.swdb";
  db::build_store(fx.records, path);
  const db::Store store = db::Store::open(path);

  ScanOptions opt;
  opt.top_k = 4;
  opt.min_score = 15;
  core::BoardFleet f1 = core::make_board_fleet(core::xc2vp70(), 3, 40, kSc);
  core::BoardFleet f2 = core::make_board_fleet(core::xc2vp70(), 3, 40, kSc);
  const ScanResult vec = scan_database_fleet(f1, fx.query, fx.records, opt);
  const ScanResult st = scan_database_fleet(f2, fx.query, store, opt);
  ASSERT_EQ(vec.hits.size(), st.hits.size());
  for (std::size_t k = 0; k < vec.hits.size(); ++k) {
    EXPECT_EQ(vec.hits[k].record, st.hits[k].record);
    EXPECT_EQ(vec.hits[k].result, st.hits[k].result);
  }
  EXPECT_EQ(vec.cell_updates, st.cell_updates);
  EXPECT_EQ(vec.board_cycles, st.board_cycles);
  EXPECT_GT(st.board_cycles, 0u);
}

TEST(FleetScan, ThreadedFleetMatchesSequentialAndCountsCycles) {
  const Fixture fx(35);
  ScanOptions seq_opt;
  seq_opt.top_k = 4;
  ScanOptions par_opt = seq_opt;
  par_opt.threads = 4;
  core::BoardFleet f1 = core::make_board_fleet(core::xc2vp70(), 4, 40, kSc);
  core::BoardFleet f2 = core::make_board_fleet(core::xc2vp70(), 4, 40, kSc);
  const ScanResult a = scan_database_fleet(f1, fx.query, fx.records, seq_opt);
  const ScanResult b = scan_database_fleet(f2, fx.query, fx.records, par_opt);
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t k = 0; k < a.hits.size(); ++k) {
    EXPECT_EQ(a.hits[k].record, b.hits[k].record);
    EXPECT_EQ(a.hits[k].result, b.hits[k].result);
  }
  EXPECT_EQ(a.board_cycles, b.board_cycles);
  EXPECT_NEAR(a.board_seconds, b.board_seconds, 1e-12);
}

TEST(FleetScan, BusModelAddsTransferTimeWithoutMovingHits) {
  // FleetOptions with model_bus: every job's wall time gains the DMA
  // double-buffered bus timeline; scores, coordinates and cycle counts
  // are untouched.
  const Fixture fx(36);
  ScanOptions opt;
  opt.top_k = 4;
  core::FleetOptions fo;
  fo.boards = 2;
  fo.pes_per_board = 40;
  core::BoardFleet compute_only = core::make_board_fleet(fo, kSc);
  fo.model_bus = true;
  core::BoardFleet with_bus = core::make_board_fleet(fo, kSc);
  const ScanResult a = scan_database_fleet(compute_only, fx.query, fx.records, opt);
  const ScanResult b = scan_database_fleet(with_bus, fx.query, fx.records, opt);
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t k = 0; k < a.hits.size(); ++k) {
    EXPECT_EQ(a.hits[k].record, b.hits[k].record);
    EXPECT_EQ(a.hits[k].result, b.hits[k].result);
  }
  EXPECT_EQ(a.board_cycles, b.board_cycles);
  EXPECT_GT(b.board_seconds, a.board_seconds);  // the bus costs real time
}

TEST(FleetOptions, CatalogAndValidation) {
  core::FleetOptions fo;
  fo.device = "nosuch-device";
  EXPECT_THROW((void)core::make_board_fleet(fo, kSc), std::invalid_argument);
  fo = core::FleetOptions{};
  fo.boards = 0;
  EXPECT_THROW(fo.validate(), std::invalid_argument);
  fo = core::FleetOptions{};
  fo.pes_per_board = 0;
  EXPECT_THROW(fo.validate(), std::invalid_argument);
  fo = core::FleetOptions{};
  fo.sched = hw::SchedMode::Dense;
  core::BoardFleet fleet = core::make_board_fleet(fo, kSc);
  ASSERT_EQ(fleet.size(), 1u);
  EXPECT_EQ(fleet[0]->sched_mode(), hw::SchedMode::Dense);
  EXPECT_EQ(fleet[0]->bus(), nullptr);
}

TEST(FleetScan, Validation) {
  core::BoardFleet empty;
  const std::vector<seq::Sequence> none;
  EXPECT_THROW((void)scan_database_fleet(empty, seq::Sequence::dna("AC"), none, ScanOptions{}),
               std::invalid_argument);
  core::BoardFleet fleet = core::make_board_fleet(core::xc2vp70(), 1, 8, kSc);
  const std::vector<seq::Sequence> mixed = {seq::Sequence::protein("AR")};
  EXPECT_THROW(
      (void)scan_database_fleet(fleet, seq::Sequence::dna("AC"), mixed, ScanOptions{}),
      std::invalid_argument);
}

}  // namespace
