#include <gtest/gtest.h>

#include "host/fleet_scan.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::host;

const align::Scoring kSc = align::Scoring::paper_default();

struct Fixture {
  seq::Sequence query;
  std::vector<seq::Sequence> records;

  explicit Fixture(std::uint64_t seed) {
    seq::RandomSequenceGenerator gen(seed);
    query = gen.uniform(seq::dna(), 40, "q");
    for (int r = 0; r < 9; ++r) {
      seq::Sequence rec = gen.uniform(seq::dna(), 250, "rec" + std::to_string(r));
      if (r % 4 == 1) rec.append(seq::point_mutate(query, 0.03 * (r + 1), gen.engine()));
      records.push_back(std::move(rec));
    }
  }
};

TEST(FleetScan, HitsIdenticalToSingleBoardScan) {
  const Fixture fx(21);
  core::SmithWatermanAccelerator solo(core::xc2vp70(), 40, kSc);
  ScanOptions opt;
  opt.top_k = 4;
  opt.min_score = 15;
  const ScanResult single = scan_database(solo, fx.query, fx.records, opt);

  for (const std::size_t boards : {1u, 2u, 3u, 5u}) {
    core::BoardFleet fleet = core::make_board_fleet(core::xc2vp70(), boards, 40, kSc);
    const ScanResult fr = scan_database_fleet(fleet, fx.query, fx.records, opt);
    ASSERT_EQ(fr.hits.size(), single.hits.size()) << boards << " boards";
    for (std::size_t k = 0; k < fr.hits.size(); ++k) {
      EXPECT_EQ(fr.hits[k].record, single.hits[k].record);
      EXPECT_EQ(fr.hits[k].result, single.hits[k].result);
    }
    EXPECT_EQ(fr.records_scanned, single.records_scanned);
    EXPECT_EQ(fr.cell_updates, single.cell_updates);
  }
}

TEST(FleetScan, ParallelTimeShrinksWithBoards) {
  const Fixture fx(22);
  ScanOptions opt;
  core::BoardFleet one = core::make_board_fleet(core::xc2vp70(), 1, 40, kSc);
  core::BoardFleet three = core::make_board_fleet(core::xc2vp70(), 3, 40, kSc);
  const double t1 = scan_database_fleet(one, fx.query, fx.records, opt).board_seconds;
  const double t3 = scan_database_fleet(three, fx.query, fx.records, opt).board_seconds;
  EXPECT_LT(t3, t1);
  EXPECT_GT(t3, t1 / 4.0);  // 3 boards can't beat 3x by much (uneven records)
}

TEST(FleetScan, Validation) {
  core::BoardFleet empty;
  const std::vector<seq::Sequence> none;
  EXPECT_THROW((void)scan_database_fleet(empty, seq::Sequence::dna("AC"), none, ScanOptions{}),
               std::invalid_argument);
  core::BoardFleet fleet = core::make_board_fleet(core::xc2vp70(), 1, 8, kSc);
  const std::vector<seq::Sequence> mixed = {seq::Sequence::protein("AR")};
  EXPECT_THROW(
      (void)scan_database_fleet(fleet, seq::Sequence::dna("AC"), mixed, ScanOptions{}),
      std::invalid_argument);
}

}  // namespace
