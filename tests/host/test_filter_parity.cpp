// Recall parity suite (ISSUE acceptance): `--filter seeded` must report
// the exact hit set — same records, same (score, end) pairs, same order —
// for every record whose true score clears the threshold, across kernel
// shapes x SIMD policies x thread counts, for uniform-DNA and
// BLOSUM62-protein scoring, through both the direct engine and the
// chunked scan service.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "align/scoring.hpp"
#include "core/accelerator.hpp"
#include "core/cpu_features.hpp"
#include "core/device.hpp"
#include "db/builder.hpp"
#include "db/store.hpp"
#include "host/batch.hpp"
#include "host/scan_engine.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"
#include "svc/scan_service.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::host;

std::string temp_path(const std::string& leaf) { return testing::TempDir() + "/" + leaf; }

db::Store build_open(const std::vector<seq::Sequence>& recs, const std::string& leaf,
                     bool index = true) {
  const std::string path = temp_path(leaf);
  db::BuildOptions opt;
  opt.kmer_index = index;
  db::build_store(recs, path, opt);
  return db::Store::open(path);
}

// Random DNA background with homologs planted across a divergence ladder
// (2%..20%), plus the degenerate shapes the guards must cover: empty
// records and records shorter than the seed length.
struct SeededDb {
  seq::Sequence query;
  std::vector<seq::Sequence> records;

  explicit SeededDb(std::uint64_t seed, std::size_t n_records = 70) {
    seq::RandomSequenceGenerator gen(seed);
    query = gen.uniform(seq::dna(), 120, "q");
    for (std::size_t r = 0; r < n_records; ++r) {
      seq::Sequence rec =
          gen.uniform(seq::dna(), 60 + 37 * (r % 9), "rec" + std::to_string(r));
      if (r % 9 == 4) {
        const double rate = 0.02 + 0.03 * static_cast<double>(r % 7);
        rec.append(seq::point_mutate(query, rate, gen.engine()));
      }
      records.push_back(std::move(rec));
    }
    records.push_back(seq::Sequence::dna("", "empty"));
    records.push_back(seq::Sequence::dna("ACGT", "tiny"));
  }
};

void expect_same_hits(const ScanResult& seeded, const ScanResult& exact, const std::string& what) {
  ASSERT_EQ(seeded.hits.size(), exact.hits.size()) << what;
  for (std::size_t k = 0; k < seeded.hits.size(); ++k) {
    EXPECT_EQ(seeded.hits[k].record, exact.hits[k].record) << what << " hit " << k;
    EXPECT_EQ(seeded.hits[k].result, exact.hits[k].result) << what << " hit " << k;
  }
}

void expect_filter_accounting(const ScanResult& r, std::size_t domain, const std::string& what) {
  EXPECT_EQ(r.filter_rescored + r.filter_rejected, domain) << what;
  EXPECT_EQ(r.records_scanned, domain) << what;  // domain accounting is filter-invariant
}

TEST(FilterParity, SeededEqualsExactAcrossShapesPoliciesThreads) {
  const SeededDb db(909);
  const db::Store store = build_open(db.records, "parity_dna.swdb");

  ScanOptions opt;
  opt.top_k = db.records.size();  // every hit above min_score is visible
  opt.min_score = 40;
  const ScanResult exact = scan_database_cpu(db.query, store, align::Scoring{}, opt);
  ASSERT_GE(exact.hits.size(), 5u);  // the ladder actually plants hits

  for (const KernelShape shape : {KernelShape::Auto, KernelShape::Striped, KernelShape::InterSeq}) {
    for (const SimdPolicy policy :
         {SimdPolicy::Auto, SimdPolicy::Scalar, SimdPolicy::Swar8, SimdPolicy::Avx2}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        ScanOptions sopt = opt;
        sopt.filter = FilterMode::Seeded;
        sopt.kernel = shape;
        sopt.simd_policy = policy;
        sopt.threads = threads;
        const ScanResult seeded = scan_database_cpu(db.query, store, align::Scoring{}, sopt);
        const std::string what = std::string("shape ") + core::kernel_shape_name(shape) +
                                 " policy " + std::to_string(static_cast<int>(policy)) +
                                 " threads " + std::to_string(threads);
        expect_same_hits(seeded, exact, what);
        expect_filter_accounting(seeded, db.records.size(), what);
        EXPECT_LT(seeded.cell_updates, exact.cell_updates) << what;  // the filter earns its keep
      }
    }
  }
}

TEST(FilterParity, Blosum62ProteinParity) {
  seq::RandomSequenceGenerator gen(911);
  const seq::Sequence query = gen.uniform(seq::protein(), 90, "pq");
  std::vector<seq::Sequence> records;
  for (std::size_t r = 0; r < 40; ++r) {
    seq::Sequence rec = gen.uniform(seq::protein(), 50 + 31 * (r % 7), "p" + std::to_string(r));
    if (r % 8 == 2) rec.append(seq::point_mutate(query, 0.04 * static_cast<double>(r % 4 + 1),
                                                 gen.engine()));
    records.push_back(std::move(rec));
  }
  const db::Store store = build_open(records, "parity_prot.swdb");

  // A realistic protein gap penalty: with the default linear -2 next to
  // BLOSUM62's +4..+11 diagonal, random gap-dominated alignments clear
  // any threshold an ungapped prescreen can see — exactly the
  // gap-dominated regime DESIGN.md §3h excludes from the contract.
  align::Scoring sc;
  sc.matrix = &align::blosum62();
  sc.gap = -10;
  ScanOptions opt;
  opt.top_k = records.size();
  opt.min_score = 80;
  const ScanResult exact = scan_database_cpu(query, store, sc, opt);
  ASSERT_FALSE(exact.hits.empty());

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const SimdPolicy policy : {SimdPolicy::Auto, SimdPolicy::Scalar}) {
      ScanOptions sopt = opt;
      sopt.filter = FilterMode::Seeded;
      sopt.threads = threads;
      sopt.simd_policy = policy;
      const ScanResult seeded = scan_database_cpu(query, store, sc, sopt);
      expect_same_hits(seeded, exact,
                       "protein threads " + std::to_string(threads) + " policy " +
                           std::to_string(static_cast<int>(policy)));
      expect_filter_accounting(seeded, records.size(), "protein");
    }
  }
}

TEST(FilterParity, FilterThresholdDecouplesFromMinScore) {
  // min_score stays low but the recall contract is only promised above
  // --filter-threshold: every exact hit at or above the threshold must
  // survive identically, and the seeded hit list is a subset of exact.
  const SeededDb db(912);
  const db::Store store = build_open(db.records, "parity_thresh.swdb");
  ScanOptions opt;
  opt.top_k = db.records.size();
  opt.min_score = 10;
  const ScanResult exact = scan_database_cpu(db.query, store, align::Scoring{}, opt);

  ScanOptions sopt = opt;
  sopt.filter = FilterMode::Seeded;
  sopt.filter_threshold = 45;
  const ScanResult seeded = scan_database_cpu(db.query, store, align::Scoring{}, sopt);

  const auto in_seeded = [&](const Hit& h) {
    return std::any_of(seeded.hits.begin(), seeded.hits.end(), [&](const Hit& s) {
      return s.record == h.record && s.result == h.result;
    });
  };
  for (const Hit& h : exact.hits) {
    if (h.result.score >= sopt.filter_threshold) {
      EXPECT_TRUE(in_seeded(h)) << "record " << h.record << " score " << h.result.score;
    }
  }
  for (const Hit& s : seeded.hits) {
    EXPECT_TRUE(std::any_of(exact.hits.begin(), exact.hits.end(), [&](const Hit& e) {
      return e.record == s.record && e.result == s.result;
    })) << "seeded hit not in exact set: record " << s.record;
  }
}

TEST(FilterParity, ServiceChunkedSeededMatchesExact) {
  const SeededDb db(913);
  const db::Store store = build_open(db.records, "parity_svc.swdb");
  ScanOptions opt;
  opt.top_k = 16;
  opt.min_score = 40;
  const ScanResult exact = scan_database_cpu(db.query, store, align::Scoring{}, opt);

  for (const std::size_t chunk : {std::size_t{5}, std::size_t{24}, std::size_t{1000}}) {
    svc::ServiceConfig cfg;
    cfg.cpu_workers = 3;
    cfg.chunk_records = chunk;
    svc::ScanService service(store, cfg);
    ScanOptions sopt = opt;
    sopt.filter = FilterMode::Seeded;
    const svc::ScanResponse resp = service.submit(db.query, sopt).response.get();
    ASSERT_EQ(resp.status, svc::QueryStatus::Done) << resp.error;
    expect_same_hits(resp.result, exact, "chunk " + std::to_string(chunk));
    expect_filter_accounting(resp.result, db.records.size(), "chunk " + std::to_string(chunk));
  }
}

TEST(FilterParity, ScanRecordsSubsetComposesWithFilter) {
  // The service's dispatch unit: a seeded chunk scan equals the exact
  // chunk scan for ids above the threshold (here all hits qualify).
  const SeededDb db(914);
  const db::Store store = build_open(db.records, "parity_chunk.swdb");
  const RecordSource src(store);
  std::vector<std::uint32_t> ids;
  for (std::uint32_t r = 10; r < 50; ++r) ids.push_back(r);

  ScanOptions opt;
  opt.top_k = 40;
  opt.min_score = 40;
  const ScanResult exact = scan_records_cpu(db.query, src, ids, align::Scoring{}, opt);
  ScanOptions sopt = opt;
  sopt.filter = FilterMode::Seeded;
  const ScanResult seeded = scan_records_cpu(db.query, src, ids, align::Scoring{}, sopt);
  expect_same_hits(seeded, exact, "subset");
  expect_filter_accounting(seeded, ids.size(), "subset");
}

TEST(FilterParity, SeededSourceValidation) {
  const SeededDb db(915);
  ScanOptions opt;
  opt.filter = FilterMode::Seeded;
  opt.min_score = 20;

  // In-memory vectors carry no index.
  EXPECT_THROW((void)scan_database_cpu(db.query, db.records, align::Scoring{}, opt),
               std::invalid_argument);

  // Pre-index v1 stores name the rebuild path.
  const db::Store v1 = build_open(db.records, "parity_v1.swdb", /*index=*/false);
  try {
    (void)scan_database_cpu(db.query, v1, align::Scoring{}, opt);
    FAIL() << "seeded scan over a v1 store must throw";
  } catch (const db::StoreError& e) {
    EXPECT_NE(std::string(e.what()).find("rebuild"), std::string::npos) << e.what();
  }

  // The accelerator model scans exhaustively; seeded mode is CPU-only.
  const db::Store indexed = build_open(db.records, "parity_accel.swdb");
  core::SmithWatermanAccelerator acc(core::xc2vp70(), 64, align::Scoring{});
  EXPECT_THROW((void)scan_database(acc, db.query, indexed, opt), std::invalid_argument);
}

TEST(FilterParity, EmptyCandidateSetIsACompleteScan) {
  // A query sharing no k-mer with any record: everything is rejected and
  // the scan returns cleanly with reconciling counters.
  std::vector<seq::Sequence> records;
  for (int r = 0; r < 12; ++r) {
    records.push_back(seq::Sequence::dna(std::string(200, 'A'), "a" + std::to_string(r)));
  }
  const db::Store store = build_open(records, "parity_empty.swdb");
  const seq::Sequence query = seq::Sequence::dna(std::string(80, 'C'), "allc");
  ScanOptions opt;
  opt.filter = FilterMode::Seeded;
  opt.min_score = 20;
  const ScanResult r = scan_database_cpu(query, store, align::Scoring{}, opt);
  EXPECT_TRUE(r.hits.empty());
  EXPECT_EQ(r.filter_rescored, 0u);
  EXPECT_EQ(r.filter_rejected, records.size());
  EXPECT_EQ(r.cell_updates, 0u);
}

}  // namespace
