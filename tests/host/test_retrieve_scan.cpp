// Alignment-retrieval parity suite (ISSUE acceptance): with --align on,
// the ranked hits AND the retrieved transcripts must be bit-identical
// across kernel shapes x SIMD policies x thread counts x engines
// (CPU / accelerator model / board fleet / chunked record scans), every
// replayed transcript must reproduce the kernel score, and --max-hits
// must cap traceback work without perturbing the ranking. The CI
// alignment-parity leg drives these suites by name (AlignParity*), and
// the filter matrix picks up the seeded-vs-exact aligned parity
// (FilterParityAligned*).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "align/cigar.hpp"
#include "align/scoring.hpp"
#include "core/accelerator.hpp"
#include "core/cpu_features.hpp"
#include "core/device.hpp"
#include "core/multiboard.hpp"
#include "db/builder.hpp"
#include "db/store.hpp"
#include "host/batch.hpp"
#include "host/fleet_scan.hpp"
#include "host/record_source.hpp"
#include "host/scan_engine.hpp"
#include "retrieve/topk.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"
#include "svc/scan_service.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;
using namespace swr::host;

std::string temp_path(const std::string& leaf) { return testing::TempDir() + "/" + leaf; }

db::Store build_open(const std::vector<seq::Sequence>& recs, const std::string& leaf,
                     bool index = true) {
  const std::string path = temp_path(leaf);
  db::BuildOptions opt;
  opt.kmer_index = index;
  db::build_store(recs, path, opt);
  return db::Store::open(path);
}

// Random DNA background with homologs planted across a divergence ladder,
// plus the degenerate records every engine must skip identically.
struct SeededDb {
  seq::Sequence query;
  std::vector<seq::Sequence> records;

  explicit SeededDb(std::uint64_t seed, std::size_t n_records = 60) {
    seq::RandomSequenceGenerator gen(seed);
    query = gen.uniform(seq::dna(), 110, "q");
    for (std::size_t r = 0; r < n_records; ++r) {
      seq::Sequence rec = gen.uniform(seq::dna(), 55 + 41 * (r % 8), "rec" + std::to_string(r));
      if (r % 8 == 3) {
        const double rate = 0.02 + 0.03 * static_cast<double>(r % 6);
        rec.append(seq::point_mutate(query, rate, gen.engine()));
      }
      records.push_back(std::move(rec));
    }
    records.push_back(seq::Sequence::dna("", "empty"));
    records.push_back(seq::Sequence::dna("ACGT", "tiny"));
  }
};

void expect_same_hits(const ScanResult& got, const ScanResult& want, const std::string& what) {
  ASSERT_EQ(got.hits.size(), want.hits.size()) << what;
  for (std::size_t k = 0; k < got.hits.size(); ++k) {
    EXPECT_EQ(got.hits[k].record, want.hits[k].record) << what << " hit " << k;
    EXPECT_EQ(got.hits[k].result, want.hits[k].result) << what << " hit " << k;
  }
}

// Bit-identical transcripts, not just equal scores: the CIGAR string, the
// window coordinates and the path choice must all agree.
void expect_same_alignments(const ScanResult& got, const ScanResult& want,
                            const std::string& what) {
  ASSERT_EQ(got.alignments.size(), want.alignments.size()) << what;
  for (std::size_t k = 0; k < got.alignments.size(); ++k) {
    const retrieve::Traceback& g = got.alignments[k];
    const retrieve::Traceback& w = want.alignments[k];
    EXPECT_EQ(g.alignment.score, w.alignment.score) << what << " alignment " << k;
    EXPECT_EQ(g.alignment.begin, w.alignment.begin) << what << " alignment " << k;
    EXPECT_EQ(g.alignment.end, w.alignment.end) << what << " alignment " << k;
    EXPECT_EQ(g.alignment.cigar.to_string(), w.alignment.cigar.to_string())
        << what << " alignment " << k;
    EXPECT_EQ(g.banded, w.banded) << what << " alignment " << k;
    EXPECT_DOUBLE_EQ(g.identity, w.identity) << what << " alignment " << k;
    EXPECT_DOUBLE_EQ(g.query_coverage, w.query_coverage) << what << " alignment " << k;
  }
}

// Independent replay: alignments[k] belongs to hits[k] and its transcript
// reproduces the kernel score from the residues alone.
void expect_replay(const ScanResult& r, const seq::Sequence& query,
                   const std::vector<seq::Sequence>& records, const align::Scoring& sc,
                   const std::string& what) {
  ASSERT_LE(r.alignments.size(), r.hits.size()) << what;
  for (std::size_t k = 0; k < r.alignments.size(); ++k) {
    const retrieve::Traceback& tb = r.alignments[k];
    const Hit& h = r.hits[k];
    EXPECT_EQ(tb.alignment.score, h.result.score) << what << " hit " << k;
    EXPECT_EQ(align::score_of(tb.alignment.cigar, records[h.record], query, tb.alignment.begin, sc),
              h.result.score)
        << what << " hit " << k << " record " << h.record;
  }
}

TEST(AlignParity, BitIdenticalAcrossShapesPoliciesThreads) {
  const SeededDb db(2101);
  const db::Store store = build_open(db.records, "align_parity.swdb");
  const align::Scoring sc;

  ScanOptions opt;
  opt.top_k = 12;
  opt.min_score = 40;
  opt.align = true;
  const ScanResult base = scan_database_cpu(db.query, store, sc, opt);
  ASSERT_GE(base.hits.size(), 5u);
  ASSERT_EQ(base.alignments.size(), base.hits.size());
  expect_replay(base, db.query, db.records, sc, "baseline");

  for (const KernelShape shape : {KernelShape::Auto, KernelShape::Striped, KernelShape::InterSeq}) {
    for (const SimdPolicy policy :
         {SimdPolicy::Auto, SimdPolicy::Scalar, SimdPolicy::Swar8, SimdPolicy::Avx2}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        ScanOptions sopt = opt;
        sopt.kernel = shape;
        sopt.simd_policy = policy;
        sopt.threads = threads;
        const ScanResult got = scan_database_cpu(db.query, store, sc, sopt);
        const std::string what = std::string("shape ") + core::kernel_shape_name(shape) +
                                 " policy " + std::to_string(static_cast<int>(policy)) +
                                 " threads " + std::to_string(threads);
        expect_same_hits(got, base, what);
        expect_same_alignments(got, base, what);
      }
    }
  }
}

TEST(AlignParity, AlignOnDoesNotPerturbTheRanking) {
  const SeededDb db(2102);
  const db::Store store = build_open(db.records, "align_rank.swdb");
  ScanOptions off;
  off.top_k = 10;
  off.min_score = 40;
  ScanOptions on = off;
  on.align = true;

  const ScanResult without = scan_database_cpu(db.query, store, align::Scoring{}, off);
  const ScanResult with = scan_database_cpu(db.query, store, align::Scoring{}, on);
  expect_same_hits(with, without, "align on vs off");
  EXPECT_TRUE(without.alignments.empty());
  EXPECT_EQ(with.alignments.size(), with.hits.size());
}

TEST(AlignParity, AcceleratorAndFleetMatchTheCpuEngine) {
  const SeededDb db(2103, 40);
  const db::Store store = build_open(db.records, "align_accel.swdb");
  const align::Scoring sc;
  ScanOptions opt;
  opt.top_k = 8;
  opt.min_score = 40;
  opt.align = true;
  const ScanResult cpu = scan_database_cpu(db.query, store, sc, opt);
  ASSERT_FALSE(cpu.hits.empty());

  core::SmithWatermanAccelerator acc(core::xc2vp70(), 64, sc);
  const ScanResult accel = scan_database(acc, db.query, store, opt);
  expect_same_hits(accel, cpu, "accelerator");
  expect_same_alignments(accel, cpu, "accelerator");

  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    core::BoardFleet fleet = core::make_board_fleet(core::xc2vp70(), 3, 40, sc);
    ScanOptions fopt = opt;
    fopt.threads = threads;
    const ScanResult fr = scan_database_fleet(fleet, db.query, db.records, fopt);
    expect_same_hits(fr, cpu, "fleet threads " + std::to_string(threads));
    expect_same_alignments(fr, cpu, "fleet threads " + std::to_string(threads));
  }
}

TEST(AlignParity, ChunkedRecordScansComposeToTheSameAlignments) {
  // The service's dispatch discipline, replayed by hand: chunks scan
  // score-only, the union is finalized under the total order, and the
  // retrieval phase runs once on the merged ranking — reproducing the
  // direct scan exactly for every chunk size.
  const SeededDb db(2104);
  const db::Store store = build_open(db.records, "align_chunk.swdb");
  const RecordSource src(store);
  const align::Scoring sc;
  ScanOptions opt;
  opt.top_k = 10;
  opt.min_score = 40;
  opt.align = true;
  const ScanResult base = scan_database_cpu(db.query, store, sc, opt);

  for (const std::size_t chunk : {std::size_t{7}, std::size_t{31}, std::size_t{1000}}) {
    ScanOptions chunk_opt = opt;
    chunk_opt.align = false;  // chunks never retrieve; the merge does
    ScanResult merged;
    for (std::size_t lo = 0; lo < src.size(); lo += chunk) {
      std::vector<std::uint32_t> ids;
      for (std::size_t r = lo; r < std::min(lo + chunk, src.size()); ++r) {
        ids.push_back(static_cast<std::uint32_t>(r));
      }
      ScanResult part = scan_records_cpu(db.query, src, ids, sc, chunk_opt);
      retrieve::topk_union(merged.hits, std::move(part.hits));
    }
    retrieve::topk_finalize(merged.hits, opt.top_k, hit_ranks_before);
    retrieve_alignments(db.query, src, sc, opt, merged);

    const std::string what = "chunk " + std::to_string(chunk);
    expect_same_hits(merged, base, what);
    expect_same_alignments(merged, base, what);
  }
}

TEST(AlignParity, ServiceChunkSizesProduceIdenticalAlignments) {
  const SeededDb db(2105);
  const db::Store store = build_open(db.records, "align_svc.swdb");
  ScanOptions opt;
  opt.top_k = 10;
  opt.min_score = 40;
  opt.align = true;
  const ScanResult base = scan_database_cpu(db.query, store, align::Scoring{}, opt);

  for (const std::size_t chunk : {std::size_t{5}, std::size_t{24}, std::size_t{1000}}) {
    svc::ServiceConfig cfg;
    cfg.cpu_workers = 3;
    cfg.chunk_records = chunk;
    svc::ScanService service(store, cfg);
    const svc::ScanResponse resp = service.submit(db.query, opt).response.get();
    ASSERT_EQ(resp.status, svc::QueryStatus::Done) << resp.error;
    const std::string what = "service chunk " + std::to_string(chunk);
    expect_same_hits(resp.result, base, what);
    expect_same_alignments(resp.result, base, what);
  }
}

TEST(AlignParity, MaxHitsCapsTracebackNotRanking) {
  const SeededDb db(2106);
  const db::Store store = build_open(db.records, "align_cap.swdb");
  const align::Scoring sc;
  ScanOptions opt;
  opt.top_k = 12;
  opt.min_score = 40;
  opt.align = true;
  const ScanResult full = scan_database_cpu(db.query, store, sc, opt);
  ASSERT_GE(full.hits.size(), 4u);

  ScanOptions capped = opt;
  capped.max_hits = 3;
  const ScanResult got = scan_database_cpu(db.query, store, sc, capped);
  expect_same_hits(got, full, "capped");  // ranking is untouched
  ASSERT_EQ(got.alignments.size(), 3u);
  // The capped alignments are exactly the head of the uncapped list.
  ScanResult head = full;
  head.alignments.resize(3);
  expect_same_alignments(got, head, "capped head");
  expect_replay(got, db.query, db.records, sc, "capped");
}

TEST(AlignParity, VectorAndStoreSourcesAgree) {
  const SeededDb db(2107, 30);
  const db::Store store = build_open(db.records, "align_src.swdb");
  ScanOptions opt;
  opt.top_k = 8;
  opt.min_score = 40;
  opt.align = true;
  const ScanResult vec = scan_database_cpu(db.query, db.records, align::Scoring{}, opt);
  const ScanResult mapped = scan_database_cpu(db.query, store, align::Scoring{}, opt);
  expect_same_hits(mapped, vec, "store vs vector");
  expect_same_alignments(mapped, vec, "store vs vector");
}

TEST(FilterParityAligned, SeededTopKAlignsTheSameSet) {
  // Satellite: under --filter seeded, --max-hits counts post-rescore hits
  // — the traceback set is the head of the final merged ranking, so a
  // seeded scan aligns exactly what the exact scan aligns.
  const SeededDb db(2108);
  const db::Store store = build_open(db.records, "align_seeded.swdb");
  const align::Scoring sc;
  ScanOptions opt;
  opt.top_k = 12;
  opt.min_score = 40;
  opt.align = true;
  const ScanResult exact = scan_database_cpu(db.query, store, sc, opt);
  ASSERT_GE(exact.hits.size(), 4u);

  for (const std::size_t max_hits : {std::size_t{0}, std::size_t{3}}) {
    ScanOptions sopt = opt;
    sopt.filter = FilterMode::Seeded;
    sopt.max_hits = max_hits;
    const ScanResult seeded = scan_database_cpu(db.query, store, sc, sopt);
    const std::string what = "seeded max_hits " + std::to_string(max_hits);
    expect_same_hits(seeded, exact, what);
    const std::size_t expect_aligned =
        max_hits == 0 ? exact.hits.size() : std::min(max_hits, exact.hits.size());
    ASSERT_EQ(seeded.alignments.size(), expect_aligned) << what;
    ScanResult head = exact;
    head.alignments.resize(expect_aligned);
    expect_same_alignments(seeded, head, what);
    expect_replay(seeded, db.query, db.records, sc, what);
  }
}

TEST(FilterParityAligned, SeededAlignmentsSurviveShapeAndThreadSweeps) {
  const SeededDb db(2109);
  const db::Store store = build_open(db.records, "align_seeded_sweep.swdb");
  const align::Scoring sc;
  ScanOptions opt;
  opt.top_k = 10;
  opt.min_score = 40;
  opt.align = true;
  opt.max_hits = 4;
  opt.filter = FilterMode::Seeded;
  const ScanResult base = scan_database_cpu(db.query, store, sc, opt);
  ASSERT_EQ(base.alignments.size(), 4u);

  for (const KernelShape shape : {KernelShape::Striped, KernelShape::InterSeq}) {
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      ScanOptions sopt = opt;
      sopt.kernel = shape;
      sopt.threads = threads;
      const ScanResult got = scan_database_cpu(db.query, store, sc, sopt);
      const std::string what = std::string("seeded shape ") + core::kernel_shape_name(shape) +
                               " threads " + std::to_string(threads);
      expect_same_hits(got, base, what);
      expect_same_alignments(got, base, what);
    }
  }
}

}  // namespace
