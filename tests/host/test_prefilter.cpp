// filter_candidates: the two-stage funnel's guards, subset restriction,
// and accounting — the unit layer under the recall parity suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "db/builder.hpp"
#include "db/store.hpp"
#include "host/prefilter.hpp"
#include "seq/mutate.hpp"
#include "seq/random.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;

std::string temp_path(const std::string& leaf) { return testing::TempDir() + "/" + leaf; }

// 30 unrelated records plus mutated copies of `query` at the given ids.
std::vector<seq::Sequence> planted_db(const seq::Sequence& query,
                                      const std::vector<std::size_t>& planted_at) {
  seq::RandomSequenceGenerator gen(321);
  std::vector<seq::Sequence> recs;
  for (std::size_t r = 0; r < 30; ++r) {
    recs.push_back(gen.uniform(seq::dna(), 150 + 17 * (r % 5), "bg" + std::to_string(r)));
  }
  for (const std::size_t at : planted_at) {
    seq::Sequence hom = seq::point_mutate(query, 0.05, gen.engine());
    hom.set_name("planted" + std::to_string(at));
    recs[at] = std::move(hom);
  }
  return recs;
}

db::Store build_open(const std::vector<seq::Sequence>& recs, const std::string& leaf,
                     bool index = true) {
  const std::string path = temp_path(leaf);
  db::BuildOptions opt;
  opt.kmer_index = index;
  db::build_store(recs, path, opt);
  return db::Store::open(path);
}

TEST(Prefilter, KeepsPlantedHomologsDropsBackground) {
  const seq::Sequence query = test::random_dna(120, 777);
  const std::vector<std::size_t> planted{3, 17, 28};
  const db::Store store = build_open(planted_db(query, planted), "pf_basic.swdb");

  host::FilterOptions fo;
  fo.threshold = 60;
  host::FilterStats st;
  const auto keep = host::filter_candidates(store, query, align::Scoring{}, fo, {}, &st);

  for (const std::size_t at : planted) {
    EXPECT_TRUE(std::binary_search(keep.begin(), keep.end(), static_cast<std::uint32_t>(at)))
        << "planted record " << at << " must survive";
  }
  EXPECT_LT(keep.size(), store.size());  // background actually gets dropped
  EXPECT_EQ(st.domain, store.size());
  EXPECT_EQ(st.rescored, keep.size());
  EXPECT_EQ(st.rejected + st.rescored, st.domain);
  EXPECT_GE(st.candidates, keep.size() - st.recall_guard);
  EXPECT_GT(st.postings, 0u);
  EXPECT_GT(st.diagonals, 0u);
  EXPECT_TRUE(std::is_sorted(keep.begin(), keep.end()));
  EXPECT_EQ(std::adjacent_find(keep.begin(), keep.end()), keep.end());
}

TEST(Prefilter, RecordShorterThanKIsGuarded) {
  const seq::Sequence query = test::random_dna(100, 11);
  auto recs = planted_db(query, {5});
  recs.push_back(seq::Sequence::dna("ACGT", "shorty"));  // < any auto k
  recs.push_back(seq::Sequence::dna("", "empty"));
  const db::Store store = build_open(recs, "pf_guard.swdb");

  host::FilterOptions fo;
  fo.threshold = 50;
  host::FilterStats st;
  const auto keep = host::filter_candidates(store, query, align::Scoring{}, fo, {}, &st);
  const auto shorty = static_cast<std::uint32_t>(recs.size() - 2);
  const auto empty = static_cast<std::uint32_t>(recs.size() - 1);
  EXPECT_TRUE(std::binary_search(keep.begin(), keep.end(), shorty));
  EXPECT_FALSE(std::binary_search(keep.begin(), keep.end(), empty));
  EXPECT_GE(st.recall_guard, 1u);
}

TEST(Prefilter, ShortQueryAdmitsEveryNonEmptyRecord) {
  auto recs = planted_db(test::random_dna(100, 12), {});
  recs.push_back(seq::Sequence::dna("", "empty"));
  const db::Store store = build_open(recs, "pf_shortq.swdb");

  const seq::Sequence query = seq::Sequence::dna("ACG");  // < k
  host::FilterOptions fo;
  fo.threshold = 3;
  host::FilterStats st;
  const auto keep = host::filter_candidates(store, query, align::Scoring{}, fo, {}, &st);
  EXPECT_EQ(keep.size(), recs.size() - 1);  // all but the empty record
  EXPECT_EQ(st.recall_guard, keep.size());
}

TEST(Prefilter, SubsetRestrictsDomain) {
  const seq::Sequence query = test::random_dna(120, 13);
  const db::Store store = build_open(planted_db(query, {7}), "pf_subset.swdb");

  host::FilterOptions fo;
  fo.threshold = 60;
  const std::vector<std::uint32_t> subset{2, 7, 19};
  host::FilterStats st;
  const auto keep = host::filter_candidates(store, query, align::Scoring{}, fo, subset, &st);
  EXPECT_EQ(st.domain, subset.size());
  for (const std::uint32_t r : keep) {
    EXPECT_TRUE(std::binary_search(subset.begin(), subset.end(), r));
  }
  EXPECT_TRUE(std::binary_search(keep.begin(), keep.end(), 7u));
}

TEST(Prefilter, SubsetExcludingHomologDropsIt) {
  const seq::Sequence query = test::random_dna(120, 14);
  const db::Store store = build_open(planted_db(query, {7}), "pf_subset2.swdb");
  host::FilterOptions fo;
  fo.threshold = 60;
  const std::vector<std::uint32_t> subset{0, 1, 2};
  const auto keep = host::filter_candidates(store, query, align::Scoring{}, fo, subset);
  EXPECT_FALSE(std::binary_search(keep.begin(), keep.end(), 7u));
}

TEST(Prefilter, ValidatesThresholdAndStore) {
  const seq::Sequence query = test::random_dna(50, 15);
  const db::Store indexed = build_open(planted_db(query, {}), "pf_val.swdb");
  host::FilterOptions bad;
  bad.threshold = 0;
  EXPECT_THROW((void)host::filter_candidates(indexed, query, align::Scoring{}, bad),
               std::invalid_argument);

  const db::Store v1 = build_open(planted_db(query, {}), "pf_v1.swdb", /*index=*/false);
  host::FilterOptions fo;
  fo.threshold = 20;
  EXPECT_THROW((void)host::filter_candidates(v1, query, align::Scoring{}, fo), db::StoreError);
}

TEST(Prefilter, ExplicitPrescreenThresholdTightensFunnel) {
  const seq::Sequence query = test::random_dna(120, 16);
  const db::Store store = build_open(planted_db(query, {4}), "pf_bar.swdb");
  host::FilterOptions loose;
  loose.threshold = 60;
  loose.prescreen_threshold = 1;  // everything with a seed survives
  host::FilterStats ls;
  const auto wide = host::filter_candidates(store, query, align::Scoring{}, loose, {}, &ls);
  host::FilterOptions tight = loose;
  tight.prescreen_threshold = 60;  // demand the full ungapped run
  host::FilterStats ts;
  const auto narrow = host::filter_candidates(store, query, align::Scoring{}, tight, {}, &ts);
  EXPECT_LE(narrow.size(), wide.size());
  EXPECT_TRUE(std::binary_search(narrow.begin(), narrow.end(), 4u));
}

}  // namespace
