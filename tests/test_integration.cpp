// Full-system integration: multi-component paths exercised end to end,
// the way the examples and the CLI drive them, with oracle verification at
// every joint.
#include <gtest/gtest.h>

#include <sstream>

#include "align/evalue.hpp"
#include "align/local_linear.hpp"
#include "align/near_best.hpp"
#include "align/sw_full.hpp"
#include "core/multiboard.hpp"
#include "core/tracer.hpp"
#include "host/batch.hpp"
#include "host/pipeline.hpp"
#include "par/zalign.hpp"
#include "seq/fasta.hpp"
#include "seq/workload.hpp"
#include "test_util.hpp"

namespace {

using namespace swr;

const align::Scoring kSc = align::Scoring::paper_default();

// FASTA round-trip -> accelerator scan -> pipeline retrieval -> statistics:
// the complete database-search story on one fixture.
TEST(Integration, FastaScanRetrieveAndScore) {
  // Build a 12-record database with two planted homologs, through FASTA.
  seq::RandomSequenceGenerator gen(777);
  const seq::Sequence query = gen.uniform(seq::dna(), 60, "q");
  std::vector<seq::Sequence> records;
  for (int k = 0; k < 12; ++k) {
    seq::Sequence rec = gen.uniform(seq::dna(), 500, "rec" + std::to_string(k));
    if (k == 2 || k == 9) {
      rec.append(seq::point_mutate(query, k == 2 ? 0.03 : 0.12, gen.engine()));
      rec.set_name("rec" + std::to_string(k) + "_hit");
    }
    records.push_back(std::move(rec));
  }
  std::stringstream fasta;
  seq::write_fasta(fasta, records);
  const auto loaded = seq::read_fasta(fasta, seq::dna());
  ASSERT_EQ(loaded.size(), records.size());

  // Scan on the accelerator.
  core::SmithWatermanAccelerator acc(core::xc2vp70(), 60, kSc);
  host::ScanOptions opt;
  opt.top_k = 2;
  opt.min_score = 20;
  const host::ScanResult scan = host::scan_database(acc, query, loaded, opt);
  ASSERT_EQ(scan.hits.size(), 2u);
  EXPECT_EQ(scan.hits[0].record, 2u);
  EXPECT_EQ(scan.hits[1].record, 9u);

  // Retrieve the best alignment; verify transcript against the full-matrix
  // oracle of that record.
  const host::PipelineResult pr =
      host::retrieve_hit(acc, host::PciConfig{}, query, loaded, scan.hits[0]);
  const align::LocalAlignment oracle = align::sw_align(loaded[2], query, kSc);
  EXPECT_EQ(pr.alignment.score, oracle.score);
  EXPECT_EQ(align::score_of(pr.alignment.cigar, loaded[2], query, pr.alignment.begin, kSc),
            pr.alignment.score);

  // Statistics: the strong hit must be overwhelmingly significant.
  const align::KarlinParams kp = align::solve_karlin_uniform(kSc, 4);
  std::uint64_t total = 0;
  for (const auto& rec : loaded) total += rec.size();
  EXPECT_LT(align::e_value(scan.hits[0].result.score, query.size(), total, kp), 1e-10);
}

// Accelerator + multiboard + zalign + near-best all agree on one workload.
TEST(Integration, EveryEngineOneWorkload) {
  seq::PlantedWorkloadSpec spec;
  spec.query_len = 48;
  spec.database_len = 4000;
  spec.plant_offset = 1500;
  spec.seed = 31;
  const seq::PlantedWorkload wl = seq::make_planted_workload(spec);
  const align::LocalScoreResult oracle = align::sw_best(align::sw_matrix(wl.database, wl.query, kSc));

  core::SmithWatermanAccelerator acc(core::xc2vp70(), 48, kSc);
  EXPECT_EQ(acc.run(wl.query, wl.database).best, oracle);

  core::BoardFleet fleet = core::make_board_fleet(core::xc2vp70(), 3, 48, kSc);
  EXPECT_EQ(core::multiboard_run(fleet, wl.query, wl.database).best, oracle);

  par::ZAlignOptions zopt;
  zopt.wavefront.threads = 2;
  const par::ZAlignResult z = par::zalign(wl.database, wl.query, kSc, zopt);
  EXPECT_EQ(z.alignment.score, oracle.score);

  align::NearBestOptions nopt;
  nopt.max_alignments = 1;
  nopt.min_score = 10;
  const auto nb = align::near_best_alignments(wl.database, wl.query, kSc, nopt);
  ASSERT_EQ(nb.size(), 1u);
  EXPECT_EQ(nb[0].score, oracle.score);
  EXPECT_EQ(nb[0].end, oracle.end);
}

// Query packing + the host pipeline: pack a batch, then retrieve the best
// query's alignment through the standard pipeline — coordinates carry over.
TEST(Integration, PackedBatchThenRetrieval) {
  seq::RandomSequenceGenerator gen(55);
  const seq::Sequence db = gen.uniform(seq::dna(), 2000, "db");
  std::vector<seq::Sequence> queries;
  for (int k = 0; k < 3; ++k) queries.push_back(gen.uniform(seq::dna(), 20, "q" + std::to_string(k)));
  // Make query 1 a planted winner.
  queries[1] = db.subsequence(900, 20);
  queries[1].set_name("q1");

  core::SmithWatermanAccelerator acc(core::xc2vp70(), 70, kSc);
  const auto batch = acc.controller().run_batch(queries, db);
  std::size_t best_q = 0;
  for (std::size_t k = 1; k < batch.size(); ++k) {
    if (batch[k].score > batch[best_q].score) best_q = k;
  }
  EXPECT_EQ(best_q, 1u);
  EXPECT_EQ(batch[1].score, 20);
  EXPECT_EQ(batch[1].end.i, 920u);

  host::HostPipeline pipe(acc, host::PciConfig{});
  const host::PipelineResult pr = pipe.align(queries[best_q], db);
  EXPECT_EQ(pr.alignment.score, batch[best_q].score);
  EXPECT_EQ(pr.alignment.end, batch[best_q].end);
}

// Tracing a pipeline run end to end produces a well-formed VCD.
TEST(Integration, TracedPipelineRun) {
  core::SmithWatermanAccelerator acc(core::xc2vp70(), 8, kSc);
  std::ostringstream vcd;
  core::ArrayTracer tracer(vcd);
  tracer.attach(acc.controller());
  host::HostPipeline pipe(acc, host::PciConfig{});
  const seq::Sequence q = swr::test::random_dna(8, 61);
  const seq::Sequence db = swr::test::random_dna(60, 62);
  const host::PipelineResult pr = pipe.align(q, db);
  EXPECT_EQ(pr.alignment.score, align::local_align_linear(db, q, kSc).score);
  // Both accelerator passes were traced.
  EXPECT_GT(tracer.samples(),
            pr.forward_stats.total_cycles);  // forward + at least part of reverse
  EXPECT_NE(vcd.str().find("$enddefinitions $end"), std::string::npos);
}

}  // namespace
